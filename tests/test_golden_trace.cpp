// Golden-trace regression suite: pin the end-to-end decision behaviour
// of the live paths against committed snapshots, so an innocent-looking
// refactor that shifts a verdict, a gate, or a scorecard count fails CI
// with a diff instead of sailing through.
//
// Two scenarios are pinned:
//   * the synchronous RealtimeMonitor under a deterministic fault plan
//     (drops, freezes, noise bursts, blackouts + a seeded sim);
//   * the multi-stream serving reference (three streams: daytime, rain,
//     and one with a mid-run daytime→rain model switch).
//
// Snapshot format (tests/golden/*.txt): a `meta` line of integer
// scorecard counters, then one `d` line per decision. Integer fields
// (frame ordinals, truths, verdict classes, warn flags, gate sources)
// compare exactly. prob_danger is stored at 4 decimals and compares with
// a 2e-3 tolerance: -ffp-contract/-march differences between the
// committed build and CI legitimately perturb the last float ulps, and
// the tolerance is far below anything that could flip a verdict (those
// are pinned exactly via predicted_class/warn).
//
// Regenerating after an *intentional* behaviour change:
//   ./build/tests/safecross_golden_tests --update-golden
// then commit the rewritten files under tests/golden/ with a note in the
// PR about why the behaviour moved.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "models/slowfast.h"
#include "serving/stream_server.h"

namespace safecross {

// Set by main() when --update-golden is on the command line.
bool g_update_golden = false;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name;
}

struct TraceLine {
  int stream = 0;
  std::size_t seq = 0;
  std::size_t frame = 0;
  int truth = 0;
  int pred = 0;
  int warn = 0;
  int source = 0;
  double prob = 0.0;
  // Model lineage (serving-path switching): which weather's model the
  // decision wanted and the stream's switch epoch at capture. -1 = not
  // recorded — the legacy snapshots predate lineage and stay byte-valid.
  int weather = -1;
  int epoch = -1;
};

struct GoldenTrace {
  std::vector<std::pair<std::string, long long>> meta;  // ordered integer counters
  std::vector<TraceLine> lines;
};

void write_golden(const std::string& path, const GoldenTrace& trace) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "# SafeCross golden trace. Integer fields exact; prob tolerance 2e-3.\n";
  out << "# Regenerate: safecross_golden_tests --update-golden (then commit).\n";
  out << "meta";
  for (const auto& [key, value] : trace.meta) out << ' ' << key << '=' << value;
  out << '\n';
  char buf[160];
  for (const TraceLine& l : trace.lines) {
    if (l.weather >= 0) {
      std::snprintf(buf, sizeof(buf), "d %d %zu %zu %d %d %d %d %.4f %d %d\n", l.stream,
                    l.seq, l.frame, l.truth, l.pred, l.warn, l.source, l.prob, l.weather,
                    l.epoch);
    } else {
      std::snprintf(buf, sizeof(buf), "d %d %zu %zu %d %d %d %d %.4f\n", l.stream, l.seq,
                    l.frame, l.truth, l.pred, l.warn, l.source, l.prob);
    }
    out << buf;
  }
}

GoldenTrace read_golden(const std::string& path) {
  GoldenTrace trace;
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing golden snapshot " << path
                  << " — run safecross_golden_tests --update-golden and commit it";
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "meta") {
      std::string kv;
      while (ss >> kv) {
        const auto eq = kv.find('=');
        trace.meta.emplace_back(kv.substr(0, eq), std::stoll(kv.substr(eq + 1)));
      }
    } else if (tag == "d") {
      TraceLine l;
      ss >> l.stream >> l.seq >> l.frame >> l.truth >> l.pred >> l.warn >> l.source >> l.prob;
      // Optional trailing lineage columns (switch-storm snapshots only).
      if (!(ss >> l.weather >> l.epoch)) {
        l.weather = -1;
        l.epoch = -1;
      }
      trace.lines.push_back(l);
    }
  }
  return trace;
}

/// Compare a freshly computed trace against the committed snapshot — or
/// rewrite the snapshot when running under --update-golden.
void check_against_golden(const std::string& name, const GoldenTrace& got) {
  const std::string path = golden_path(name);
  if (g_update_golden) {
    write_golden(path, got);
    SUCCEED() << "updated " << path;
    return;
  }
  const GoldenTrace want = read_golden(path);
  if (::testing::Test::HasFailure()) return;  // missing file already reported
  ASSERT_EQ(want.meta.size(), got.meta.size());
  for (std::size_t i = 0; i < want.meta.size(); ++i) {
    EXPECT_EQ(want.meta[i].first, got.meta[i].first);
    EXPECT_EQ(want.meta[i].second, got.meta[i].second)
        << "scorecard counter '" << want.meta[i].first << "' drifted";
  }
  ASSERT_EQ(want.lines.size(), got.lines.size()) << "decision count drifted";
  for (std::size_t i = 0; i < want.lines.size(); ++i) {
    SCOPED_TRACE("decision " + std::to_string(i));
    EXPECT_EQ(want.lines[i].stream, got.lines[i].stream);
    EXPECT_EQ(want.lines[i].seq, got.lines[i].seq);
    EXPECT_EQ(want.lines[i].frame, got.lines[i].frame);
    EXPECT_EQ(want.lines[i].truth, got.lines[i].truth);
    EXPECT_EQ(want.lines[i].pred, got.lines[i].pred) << "a verdict flipped";
    EXPECT_EQ(want.lines[i].warn, got.lines[i].warn);
    EXPECT_EQ(want.lines[i].source, got.lines[i].source) << "a gate reason changed";
    EXPECT_NEAR(want.lines[i].prob, got.lines[i].prob, 2e-3);
    EXPECT_EQ(want.lines[i].weather, got.lines[i].weather) << "model lineage drifted";
    EXPECT_EQ(want.lines[i].epoch, got.lines[i].epoch) << "switch-epoch lineage drifted";
  }
}

core::SafeCrossConfig tiny_config() {
  core::SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

std::unique_ptr<core::SafeCross> engine_with(const std::vector<dataset::Weather>& weathers) {
  auto sc = std::make_unique<core::SafeCross>(tiny_config());
  for (dataset::Weather w : weathers) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
  return sc;
}

// The three legacy snapshots were cut when the DecisionSource enum held 6
// entries. They keep comparing exactly those 6: FailSafeMiscalibrated was
// appended later and can never fire without a recalibration loop, so
// freezing the count keeps the committed traces byte-valid while the new
// drift scenario pins all current sources.
constexpr int kLegacyDecisionSources = 6;

// The drift-recover trace was committed when the enum ended at
// FailSafeMiscalibrated (7 sources). FleetDegraded was appended for the
// fleet admission layer and can never fire in a single-server scenario,
// so freezing at 7 keeps that trace byte-valid too.
constexpr int kPreFleetDecisionSources = 7;

void append_scorecard_meta(GoldenTrace& trace, const core::StreamScorecard& s,
                           int sources = runtime::kDecisionSourceCount) {
  trace.meta.emplace_back("decisions", static_cast<long long>(s.decisions()));
  trace.meta.emplace_back("warnings", static_cast<long long>(s.warnings()));
  trace.meta.emplace_back("correct", static_cast<long long>(s.correct()));
  trace.meta.emplace_back("missed", static_cast<long long>(s.missed_threats()));
  trace.meta.emplace_back("false_warn", static_cast<long long>(s.false_warnings()));
  trace.meta.emplace_back("fail_safe", static_cast<long long>(s.fail_safe_decisions()));
  trace.meta.emplace_back("opportunities",
                          static_cast<long long>(s.decision_opportunities()));
  for (int i = 0; i < sources; ++i) {
    trace.meta.emplace_back(
        "src" + std::to_string(i),
        static_cast<long long>(s.fail_safe_by_source(static_cast<runtime::DecisionSource>(i))));
  }
}

TEST(GoldenTrace, MonitorUnderFaultsMatchesSnapshot) {
  auto sc = engine_with({dataset::Weather::Daytime});
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 424242);
  const sim::CameraModel cam(sim.intersection().geometry());

  runtime::FaultPlan plan;
  plan.drop_prob = 0.02;
  plan.freeze_prob = 0.02;
  plan.noise_prob = 0.01;
  plan.blackout_prob = 0.002;
  plan.blackout_frames = 20;
  runtime::FaultInjector injector(plan, 424243);

  core::MonitorConfig cfg;
  core::RealtimeMonitor monitor(*sc, sim, cam, cfg, 424244, &injector);

  GoldenTrace got;
  constexpr std::size_t kFrames = 30 * 240;
  for (std::size_t frame = 1; frame <= kFrames; ++frame) {
    const auto tick = monitor.step();
    if (!tick.decision_made) continue;
    TraceLine l;
    l.stream = 0;
    l.seq = got.lines.size();
    l.frame = frame;
    l.truth = tick.danger_truth ? 1 : 0;
    l.pred = tick.decision.predicted_class;
    l.warn = tick.decision.warn ? 1 : 0;
    l.source = static_cast<int>(tick.decision.source);
    l.prob = tick.decision.prob_danger;
    got.lines.push_back(l);
  }
  append_scorecard_meta(got, monitor.scorecard(), kLegacyDecisionSources);
  ASSERT_GT(got.lines.size(), 0u) << "the scenario produced no decisions to pin";
  EXPECT_GT(monitor.fail_safe_decisions(), 0u)
      << "the fault plan should force some conservative gates";
  EXPECT_GT(monitor.model_decisions(), 0u)
      << "the snapshot must pin real classifier verdicts";
  check_against_golden("monitor_daytime_faults.txt", got);
}

TEST(GoldenTrace, MultiStreamServingMatchesSnapshot) {
  auto sc = engine_with({dataset::Weather::Daytime, dataset::Weather::Rain});
  serving::StreamServerConfig cfg;
  cfg.frames = 30 * 150;
  cfg.record_traces = true;

  serving::StreamConfig day;
  day.name = "day";
  day.weather = dataset::Weather::Daytime;
  day.sim_seed = 515151;
  day.collector_seed = 515152;
  cfg.streams.push_back(day);

  serving::StreamConfig rain = day;
  rain.name = "rain";
  rain.weather = dataset::Weather::Rain;
  rain.sim_seed = 525252;
  rain.collector_seed = 525253;
  cfg.streams.push_back(rain);

  serving::StreamConfig switching = day;
  switching.name = "switching";
  switching.sim_seed = 535353;
  switching.collector_seed = 535354;
  switching.faults.drop_prob = 0.02;
  switching.faults.freeze_prob = 0.01;
  switching.fault_seed = 535355;
  switching.model_schedule.push_back({cfg.frames / 2, dataset::Weather::Rain, 120.0});
  cfg.streams.push_back(switching);

  serving::StreamServer server(*sc, cfg);
  // The sequential reference is the pinned path: the parity suite ties
  // the batched server to it bit-for-bit, so one snapshot covers both.
  server.run_sequential();

  GoldenTrace got;
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    const auto& trace = server.stream(i).trace();
    for (std::size_t s = 0; s < trace.size(); ++s) {
      TraceLine l;
      l.stream = static_cast<int>(i);
      l.seq = s;
      l.frame = trace[s].frame;
      l.truth = trace[s].danger_truth ? 1 : 0;
      l.pred = trace[s].predicted_class;
      l.warn = trace[s].warn ? 1 : 0;
      l.source = static_cast<int>(trace[s].source);
      l.prob = trace[s].prob_danger;
      got.lines.push_back(l);
    }
    append_scorecard_meta(got, server.stream(i).scorecard(), kLegacyDecisionSources);
  }
  ASSERT_GT(got.lines.size(), 0u) << "the scenario produced no decisions to pin";
  std::size_t model_decisions = 0;
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    model_decisions += server.stream(i).scorecard().model_decisions();
  }
  EXPECT_GT(model_decisions, 0u) << "the snapshot must pin real classifier verdicts";
  check_against_golden("multistream_mixed.txt", got);
}

// The durability layer end to end, pinned: a durable serving run is
// killed mid-journal-append (torn tail on disk), a fresh server recovers
// from the damaged directory and finishes, and the concatenated decision
// stream plus the structured recovery report must match this snapshot.
// The kill point is frame-indexed through the deterministic append
// stream, so the scenario replays bit-identically on every machine.
TEST(GoldenTrace, ServerKillRecoverMatchesSnapshot) {
  namespace fs = std::filesystem;
  auto sc = engine_with({dataset::Weather::Daytime, dataset::Weather::Rain});

  const fs::path dir =
      fs::temp_directory_path() / ("safecross_golden_kill_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  serving::StreamServerConfig cfg;
  cfg.frames = 30 * 60;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;
  serving::StreamConfig day;
  day.name = "day";
  day.weather = dataset::Weather::Daytime;
  day.sim_seed = 87000;
  day.collector_seed = 87001;
  day.fault_seed = 87002;
  cfg.streams.push_back(day);
  serving::StreamConfig rain;
  rain.name = "rain";
  rain.weather = dataset::Weather::Rain;
  rain.sim_seed = 87010;
  rain.collector_seed = 87011;
  rain.fault_seed = 87012;
  cfg.streams.push_back(rain);
  cfg.durability.dir = dir;
  cfg.durability.snapshot_every_decisions = 8;

  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::MidJournalAppend, 9);
  cfg.durability.crash = &injector;
  bool crashed = false;
  {
    serving::StreamServer doomed(*sc, cfg);
    try {
      doomed.run_sequential();
    } catch (const runtime::CrashInjected&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << "the scripted kill never fired";
  injector.disarm();

  serving::StreamServer server(*sc, cfg);
  const serving::RecoveryReport report = server.recover();
  server.run_sequential();

  GoldenTrace got;
  got.meta.emplace_back("recovered_from_snapshot", report.recovered_from_snapshot ? 1 : 0);
  got.meta.emplace_back("snapshot_generation",
                        static_cast<long long>(report.snapshot_generation));
  got.meta.emplace_back("journal_records", static_cast<long long>(report.journal_records));
  got.meta.emplace_back("journal_pending", static_cast<long long>(report.journal_pending));
  got.meta.emplace_back("journal_torn_tail", report.journal_torn_tail ? 1 : 0);
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    const auto& trace = server.stream(i).trace();
    for (std::size_t s = 0; s < trace.size(); ++s) {
      TraceLine l;
      l.stream = static_cast<int>(i);
      l.seq = s;
      l.frame = trace[s].frame;
      l.truth = trace[s].danger_truth ? 1 : 0;
      l.pred = trace[s].predicted_class;
      l.warn = trace[s].warn ? 1 : 0;
      l.source = static_cast<int>(trace[s].source);
      l.prob = trace[s].prob_danger;
      got.lines.push_back(l);
    }
    append_scorecard_meta(got, server.stream(i).scorecard(), kLegacyDecisionSources);
  }
  fs::remove_all(dir);
  ASSERT_GT(got.lines.size(), 0u) << "the scenario produced no decisions to pin";
  EXPECT_GT(report.journal_records, 0u) << "the kill fired before anything was journaled";
  check_against_golden("server_kill_recover.txt", got);
}

// The self-healing loop end to end, pinned: a durable single-stream run
// under camera drift latches Miscalibrated (conservative warns flow with
// DecisionSource::FailSafeMiscalibrated), recalibrates on cadence, is
// killed mid-journal-append during the drift window, recovers from the
// damaged directory — replaying the journaled calibration lineage — and
// finishes. Unlike the legacy snapshots this one pins ALL current
// decision sources plus the recalibration counters.
TEST(GoldenTrace, DriftRecoverMatchesSnapshot) {
  namespace fs = std::filesystem;
  auto sc = engine_with({dataset::Weather::Daytime});

  const fs::path dir =
      fs::temp_directory_path() / ("safecross_golden_drift_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  serving::StreamServerConfig cfg;
  cfg.frames = 30 * 120;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;
  serving::StreamConfig day;
  day.name = "drift-day";
  day.weather = dataset::Weather::Daytime;
  day.sim_seed = 88000;
  day.collector_seed = 88001;
  day.fault_seed = 88002;
  day.faults.geometry.drift_px_per_frame = 0.04;  // 2.4 px per 60-frame check
  day.faults.geometry.drift_stop_frame = 1800;
  day.recalib.enabled = true;
  day.recalib.check_every_frames = 60;
  // Long modeled solve: most of the drift window rides with the
  // Miscalibrated latch on, so opportunities pin conservative warns.
  day.recalib.solve_latency_frames = 50;
  cfg.streams.push_back(day);
  cfg.durability.dir = dir;
  cfg.durability.snapshot_every_decisions = 4;

  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::MidJournalAppend, 5);
  cfg.durability.crash = &injector;
  bool crashed = false;
  {
    serving::StreamServer doomed(*sc, cfg);
    try {
      doomed.run_sequential();
    } catch (const runtime::CrashInjected&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << "the scripted kill never fired";
  injector.disarm();

  serving::StreamServer server(*sc, cfg);
  const serving::RecoveryReport report = server.recover();
  server.run_sequential();

  const runtime::RecalibrationLoop* loop = server.stream(0).recalibration();
  ASSERT_NE(loop, nullptr);

  GoldenTrace got;
  got.meta.emplace_back("recovered_from_snapshot", report.recovered_from_snapshot ? 1 : 0);
  got.meta.emplace_back("journal_records", static_cast<long long>(report.journal_records));
  got.meta.emplace_back("journal_pending", static_cast<long long>(report.journal_pending));
  got.meta.emplace_back(
      "journal_pending_recalibrations",
      static_cast<long long>(report.journal_pending_recalibrations));
  got.meta.emplace_back("episodes",
                        static_cast<long long>(loop->miscalibration_episodes()));
  got.meta.emplace_back("recalibrations", static_cast<long long>(loop->recalibrations()));
  got.meta.emplace_back("estimates_rejected",
                        static_cast<long long>(loop->estimates_rejected()));
  got.meta.emplace_back("checks_run", static_cast<long long>(loop->checks_run()));
  const auto& trace = server.stream(0).trace();
  for (std::size_t s = 0; s < trace.size(); ++s) {
    TraceLine l;
    l.stream = 0;
    l.seq = s;
    l.frame = trace[s].frame;
    l.truth = trace[s].danger_truth ? 1 : 0;
    l.pred = trace[s].predicted_class;
    l.warn = trace[s].warn ? 1 : 0;
    l.source = static_cast<int>(trace[s].source);
    l.prob = trace[s].prob_danger;
    got.lines.push_back(l);
  }
  append_scorecard_meta(got, server.stream(0).scorecard(), kPreFleetDecisionSources);
  fs::remove_all(dir);
  ASSERT_GT(got.lines.size(), 0u) << "the scenario produced no decisions to pin";
  EXPECT_GT(loop->recalibrations(), 0u) << "drift never forced a recalibration";
  EXPECT_GT(server.stream(0).scorecard().fail_safe_by_source(
                runtime::DecisionSource::FailSafeMiscalibrated),
            0u)
      << "the snapshot must pin a FailSafeMiscalibrated conservative warn";
  EXPECT_GT(server.stream(0).scorecard().model_decisions(), 0u)
      << "the snapshot must pin recovered model verdicts";
  check_against_golden("drift_recover.txt", got);
}

// The serving-path switching layer end to end, pinned with full model
// lineage: a durable BATCHED run under SwitchMode::Pipelined rides a
// three-weather switch storm, is killed right after a SwitchBegin record
// becomes durable (a dangling mid-switch Begin on disk), recovers
// against the damaged directory — closing the Begin with a
// reason=closed-by-recovery Abort — and finishes, still batched and
// pipelined. Every decision line carries (weather, epoch) lineage, so a
// refactor that serves one window under the wrong model or lets a batch
// straddle a switch epoch diffs here even when the verdict happens to
// survive. Timing-dependent counters (journal progress at the kill,
// snapshot generation, switch commit tallies) are deliberately NOT
// pinned: thread scheduling moves them without moving any verdict.
TEST(GoldenTrace, SwitchStormRecoverMatchesSnapshot) {
  namespace fs = std::filesystem;
  auto sc = engine_with({dataset::Weather::Daytime, dataset::Weather::Rain,
                         dataset::Weather::Snow});

  const fs::path dir =
      fs::temp_directory_path() / ("safecross_golden_storm_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  serving::StreamServerConfig cfg;
  cfg.frames = 3600;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;
  cfg.queue_capacity = 2;
  cfg.switch_mode = serving::SwitchMode::Pipelined;
  cfg.model_cache.capacity_models = 2;  // three weathers force evictions
  cfg.model_cache.bytes_scale = 1.0 / 4096.0;
  cfg.model_cache.executor.bandwidth_gbps = 64.0;
  cfg.model_cache.executor.compute_scale = 0.001;
  const dataset::Weather cycle[2][3] = {
      {dataset::Weather::Rain, dataset::Weather::Snow, dataset::Weather::Daytime},
      {dataset::Weather::Snow, dataset::Weather::Daytime, dataset::Weather::Rain}};
  for (std::uint64_t i = 0; i < 2; ++i) {
    serving::StreamConfig s;
    s.name = i == 0 ? "storm-day" : "storm-rain";
    s.weather = i == 0 ? dataset::Weather::Daytime : dataset::Weather::Rain;
    s.sim_seed = 88000 + 10 * i;
    s.collector_seed = 88000 + 10 * i + 1;
    s.fault_seed = 88000 + 10 * i + 2;
    for (std::size_t k = 0; 200 + 150 * k < cfg.frames; ++k) {
      s.model_schedule.push_back({200 + 150 * k, cycle[i][k % 3], 0.0});
    }
    cfg.streams.push_back(s);
  }
  cfg.durability.dir = dir;
  cfg.durability.snapshot_every_decisions = 8;

  runtime::CrashInjector injector;
  injector.arm(runtime::CrashPoint::AfterSwitchBegin, 2);
  cfg.durability.crash = &injector;
  bool crashed = false;
  {
    serving::StreamServer doomed(*sc, cfg);
    try {
      doomed.run();
    } catch (const runtime::CrashInjected&) {
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << "the scripted mid-switch kill never fired";
  injector.disarm();

  serving::StreamServer server(*sc, cfg);
  const serving::RecoveryReport report = server.recover();
  server.run();

  EXPECT_GE(report.switches_aborted_on_recovery, 1u)
      << "the mid-switch kill must leave a dangling Begin for recovery to close";
  EXPECT_GE(server.switches_committed(), 1u) << "the resumed storm must commit switches";

  GoldenTrace got;
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    const auto& trace = server.stream(i).trace();
    for (std::size_t s = 0; s < trace.size(); ++s) {
      TraceLine l;
      l.stream = static_cast<int>(i);
      l.seq = s;
      l.frame = trace[s].frame;
      l.truth = trace[s].danger_truth ? 1 : 0;
      l.pred = trace[s].predicted_class;
      l.warn = trace[s].warn ? 1 : 0;
      l.source = static_cast<int>(trace[s].source);
      l.prob = trace[s].prob_danger;
      l.weather = static_cast<int>(trace[s].model_weather);
      l.epoch = static_cast<int>(trace[s].epoch);
      got.lines.push_back(l);
    }
    append_scorecard_meta(got, server.stream(i).scorecard());
  }
  fs::remove_all(dir);
  ASSERT_GT(got.lines.size(), 0u) << "the scenario produced no decisions to pin";
  std::size_t epochs_pinned = 0;
  for (const TraceLine& l : got.lines) epochs_pinned += l.epoch > 0 ? 1 : 0;
  EXPECT_GT(epochs_pinned, 0u) << "the snapshot must pin post-switch lineage";
  check_against_golden("switch_storm_recover.txt", got);
}

}  // namespace
}  // namespace safecross

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      safecross::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
