// Partition-tolerant control plane: the chaos acceptance suite for the
// transport-driven fleet (ISSUE 10).
//
// Every test drives a full fleet through a seeded NetFaultPlan — lossy,
// duplicating, delaying, reordering links; one-way and full partitions —
// and holds the tentpole oracle: every stream's MERGED decision sequence
// is bit-identical to the same-config run on a perfect network, and the
// post-run epoch audit proves no decision was journaled under a stale
// ownership epoch. On top:
//   * a full partition that heals within the suspicion window costs ZERO
//     failovers and zero false deaths (the phi-accrual detector rides it
//     out), while the hard-threshold detector false-declares the same
//     silence — reconciliation, not failover, is what saves it;
//   * the gray drill: a shard slowed 10×+ mid-wave hands its streams to
//     an idle peer through a cooperative live drain — zero windows shed,
//     no crash-path recovery, parity intact — even when the fabric
//     duplicates and reorders the hand-off transfers themselves.
//
// Scratch dirs live under chaos_scratch/ and are kept on failure so CI
// uploads the damaged fleet state for post-mortem.

#include "fleet/controller.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace safecross::fleet {
namespace {

namespace fs = std::filesystem;

using dataset::Weather;
using runtime::NetFaultPlan;
using runtime::NetPartition;
using serving::StreamConfig;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "chaos_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    if (!::testing::Test::HasFailure()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

ShardSpec tiny_spec() {
  ShardSpec spec;
  spec.engine.model.slow_channels = 4;
  spec.engine.model.fast_channels = 2;
  spec.weathers = {Weather::Daytime, Weather::Rain};
  return spec;
}

FleetConfig fleet_config(std::size_t k, std::size_t shards, std::uint64_t base,
                         std::size_t frames = 1800) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.shard = tiny_spec();
  cfg.serving.frames = frames;
  cfg.serving.queue_capacity = 2;
  cfg.serving.snapshot_every_decisions = 8;
  cfg.serving.heartbeat_interval_ms = 1.0;
  cfg.watch_interval_ms = 2.0;
  // Tight rpc so retries and console-cable fallbacks resolve quickly
  // under heavy loss — the discipline, not the wall time, is under test.
  cfg.rpc.timeout_ms = 2.0;
  cfg.rpc.max_timeout_ms = 16.0;
  cfg.rpc.max_attempts = 5;
  for (std::size_t i = 0; i < k; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i % 2 == 0 ? Weather::Daytime : Weather::Rain;
    s.sim_seed = base + 10 * i;
    s.collector_seed = base + 10 * i + 1;
    s.fault_seed = base + 10 * i + 2;
    s.decision_stride = i % 3 == 0 ? 4 : 8;
    s.priority = static_cast<core::StreamPriority>(i % 3);
    cfg.streams.push_back(s);
  }
  return cfg;
}

/// The perfect-network, uninterrupted same-config run. Placement-shaping
/// knobs (shards, reserves, streams) stay; every fault and every
/// wall-clock-reactive knob is stripped.
FleetReport reference_report(FleetConfig cfg) {
  cfg.fault = {};
  cfg.net_fault = {};
  cfg.durability_root.clear();
  cfg.shard_decide_delay_ms.clear();
  cfg.drain_latency_watermark_ms = 0.0;
  cfg.dynamic_admission = {};
  cfg.detector = DetectorKind::HardThreshold;
  FleetController reference(cfg);
  reference.run();
  return reference.report();
}

void expect_fleet_parity(const FleetReport& got, const FleetReport& want) {
  ASSERT_EQ(got.streams.size(), want.streams.size());
  for (std::size_t i = 0; i < got.streams.size(); ++i) {
    const StreamResult& g = got.streams[i];
    const StreamResult& w = want.streams[i];
    SCOPED_TRACE("stream " + g.name);
    ASSERT_EQ(g.name, w.name);
    EXPECT_EQ(g.frames_run, w.frames_run);
    EXPECT_EQ(g.windows_produced, w.windows_produced);
    ASSERT_EQ(g.trace.size(), w.trace.size()) << "a decision was lost or duplicated";
    for (std::size_t s = 0; s < g.trace.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(g.trace[s].frame, w.trace[s].frame);
      EXPECT_EQ(g.trace[s].danger_truth, w.trace[s].danger_truth);
      EXPECT_EQ(g.trace[s].predicted_class, w.trace[s].predicted_class);
      EXPECT_EQ(g.trace[s].prob_danger, w.trace[s].prob_danger)
          << "merged verdicts must be bit-identical";
      EXPECT_EQ(g.trace[s].warn, w.trace[s].warn);
      EXPECT_EQ(g.trace[s].source, w.trace[s].source);
    }
    EXPECT_EQ(g.decisions, w.decisions);
    EXPECT_EQ(g.warnings, w.warnings);
    EXPECT_EQ(g.correct, w.correct);
    EXPECT_EQ(g.model_decisions, w.model_decisions);
    EXPECT_EQ(g.fail_safe_decisions, w.fail_safe_decisions);
    EXPECT_EQ(g.opportunities, w.opportunities);
  }
}

void expect_epoch_audit_clean(const FleetController& fleet) {
  const EpochAuditReport audit = fleet.epoch_audit();
  EXPECT_TRUE(audit.ok()) << "epoch fencing violated: " << audit.violations.front();
  EXPECT_GT(audit.journals_checked, 0u) << "the audit walked nothing";
  EXPECT_GT(audit.decisions_checked, 0u);
}

void expect_kill_invariants(const FleetController& fleet, std::size_t expected_kills) {
  const FleetReport& report = fleet.report();
  EXPECT_EQ(fleet.kills_fired(), expected_kills) << "an armed kill never fired";
  ASSERT_EQ(report.failovers.size(), expected_kills);
  EXPECT_EQ(report.damage.recoveries, expected_kills);
  EXPECT_EQ(report.uncaught_exceptions, 0u);
  EXPECT_TRUE(report.reconciled());
  EXPECT_EQ(report.windows_shed_total, 0u);
}

/// The wave-0 launched slot of the shard whose reference run produced the
/// most decisions — a kill aimed anywhere else may sit on a journal that
/// never reaches the armed ordinal (Rain streams can decide almost never).
std::size_t busiest_slot(const FleetConfig& cfg, const FleetReport& want) {
  Placer placer(cfg.placement);
  const auto assignment =
      placer.place_all(cfg.streams, cfg.shards - cfg.reserve_shards);
  std::vector<std::size_t> decisions(cfg.shards, 0);
  std::vector<bool> hosts_streams(cfg.shards, false);
  for (std::size_t i = 0; i < cfg.streams.size(); ++i) {
    decisions[assignment[i]] += want.streams[i].decisions;
    hosts_streams[assignment[i]] = true;
  }
  std::size_t winner = 0;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    if (decisions[s] > decisions[winner]) winner = s;
  }
  std::size_t slot = 0;  // launched slots count shards with streams, in id order
  for (std::size_t s = 0; s < winner; ++s) {
    if (hosts_streams[s]) ++slot;
  }
  return slot;
}

/// One seeded fault plan over a killed fleet: failover hand-offs, retried
/// commands and stale-filtered beats all ride the faulty fabric, and the
/// merged sequences must still match the perfect-network reference.
void net_fault_kill_sweep(std::uint64_t base, NetFaultPlan plan, const char* tag) {
  FleetConfig cfg = fleet_config(4, 2, base);
  const FleetReport want = reference_report(cfg);
  ASSERT_GE(want.decisions_total, 24u) << "weak scenario for seed " << base;

  ScratchDir scratch(std::string("net_") + tag);
  cfg.durability_root = scratch.path;
  cfg.net_fault = plan;
  cfg.fault.enabled = true;
  FleetController fleet(cfg);
  fleet.fault().set_plan({ShardKill{.wave = 0,
                                    .victim = busiest_slot(cfg, want),
                                    .point = runtime::CrashPoint::MidJournalAppend,
                                    .nth = 5}});
  fleet.run();
  expect_kill_invariants(fleet, 1);
  expect_fleet_parity(fleet.report(), want);
  expect_epoch_audit_clean(fleet);
  const runtime::LinkStats& t = fleet.report().transport;
  EXPECT_GT(t.sent, 0u);
  EXPECT_GT(t.dropped + t.duplicated + t.delayed + t.reordered, 0u)
      << "the fault plan never bit: the sweep proved nothing";
}

// Plans 1–3 of the acceptance sweep: loss, duplication+delay, reordering.
TEST(PartitionChaos, LossyFabricFailoverStaysBitIdentical) {
  NetFaultPlan plan;
  plan.seed = 0xA11CE;
  plan.drop_prob = 0.15;
  net_fault_kill_sweep(81000, plan, "lossy");
}

TEST(PartitionChaos, DuplicatingDelayingFabricStaysBitIdentical) {
  NetFaultPlan plan;
  plan.seed = 0xB0B;
  plan.dup_prob = 0.3;
  plan.delay_prob = 0.3;
  plan.delay_min_ms = 1.0;
  plan.delay_max_ms = 5.0;
  net_fault_kill_sweep(84000, plan, "dup_delay");
}

TEST(PartitionChaos, ReorderingFabricStaysBitIdentical) {
  NetFaultPlan plan;
  plan.seed = 0xC4FE;
  plan.reorder_prob = 0.35;
  plan.drop_prob = 0.1;
  net_fault_kill_sweep(87000, plan, "reorder");
}

// Plan 4: a full partition (every link, both directions) that opens
// mid-run and heals. Under the suspicion detector the silence accrues
// against a generous bootstrap scale, the partition heals inside the
// window, beats resume — zero failovers, zero false deaths, parity.
TEST(PartitionChaos, FullPartitionHealsWithinSuspicionWindowZeroFailovers) {
  FleetConfig cfg = fleet_config(4, 2, 91000, /*frames=*/5400);
  const FleetReport want = reference_report(cfg);
  ASSERT_GE(want.decisions_total, 24u);

  ScratchDir scratch("net_partition_heal");
  cfg.durability_root = scratch.path;
  cfg.detector = DetectorKind::Suspicion;
  cfg.suspicion.bootstrap_gap_ms = 1000.0;  // the suspicion window: ~4s of grace
  cfg.suspicion.threshold = 4.0;
  cfg.suspicion.confirm_ticks = 2;
  cfg.net_fault.partitions.push_back(
      NetPartition{.from_ms = 60.0, .until_ms = 160.0});
  FleetController fleet(cfg);
  fleet.run();

  const FleetReport& report = fleet.report();
  EXPECT_GT(report.transport.partitioned, 0u)
      << "the partition window never overlapped the run";
  EXPECT_TRUE(report.failovers.empty())
      << "a healed partition must not cost a failover";
  EXPECT_EQ(report.false_deaths, 0u)
      << "suspicion must ride out silence the partition explains";
  EXPECT_EQ(report.damage.recoveries, 0u);
  EXPECT_EQ(report.windows_shed_total, 0u);
  EXPECT_TRUE(report.reconciled());
  expect_fleet_parity(report, want);
  expect_epoch_audit_clean(fleet);
}

// Plan 5: the identical partition under the hard-threshold detector.
// 100ms of silence is far past its missed-frame escalation, so it
// false-declares the partitioned (but alive) shards — and the post-wave
// reconciliation, not luck, is what keeps the false deaths from becoming
// split-brain failovers. Parity still holds.
TEST(PartitionChaos, HardThresholdFalseDeclaresTheSamePartitionReconciledNotFailedOver) {
  FleetConfig cfg = fleet_config(4, 2, 91000, /*frames=*/5400);
  const FleetReport want = reference_report(cfg);

  ScratchDir scratch("net_partition_hard");
  cfg.durability_root = scratch.path;
  cfg.detector = DetectorKind::HardThreshold;
  cfg.net_fault.partitions.push_back(
      NetPartition{.from_ms = 60.0, .until_ms = 160.0});
  FleetController fleet(cfg);
  fleet.run();

  const FleetReport& report = fleet.report();
  EXPECT_GT(report.transport.partitioned, 0u);
  EXPECT_GE(report.false_deaths, 1u)
      << "the hard threshold should have false-declared during the partition "
         "(this is the failure mode the suspicion detector exists to fix)";
  EXPECT_TRUE(report.failovers.empty())
      << "reconciliation must catch a false death before it fails over";
  EXPECT_EQ(report.damage.recoveries, 0u);
  EXPECT_TRUE(report.reconciled());
  expect_fleet_parity(report, want);
  expect_epoch_audit_clean(fleet);
}

/// The gray drill scaffolding: K streams over two placeable shards plus
/// one idle reserve; the busiest placed shard gets a per-batch inference
/// delay that dwarfs healthy latency (slow-but-alive, never dead).
struct GrayDrill {
  FleetConfig cfg;
  std::size_t slow_shard = 0;

  explicit GrayDrill(std::uint64_t base) : cfg(fleet_config(4, 3, base)) {
    cfg.reserve_shards = 1;  // shard 2 idles as the drain target
    Placer placer(cfg.placement);
    const auto assignment = placer.place_all(cfg.streams, cfg.shards - 1);
    std::vector<std::size_t> count(cfg.shards, 0);
    for (std::size_t s : assignment) ++count[s];
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      if (count[s] > count[slow_shard]) slow_shard = s;
    }
    EXPECT_GT(count[slow_shard], 0u) << "placement left every shard empty?";
    cfg.shard_decide_delay_ms.assign(cfg.shards, 0.0);
    cfg.shard_decide_delay_ms[slow_shard] = 150.0;  // >>10× a healthy batch
    cfg.drain_latency_watermark_ms = 200.0;
    cfg.drain_after_breaches = 3;
  }
};

void expect_gray_drill_outcome(const FleetController& fleet, const FleetReport& want,
                               std::size_t slow_shard) {
  const FleetReport& report = fleet.report();
  ASSERT_GE(report.drains.size(), 1u) << "the slow shard was never drained";
  const DrainEvent& ev = report.drains.front();
  EXPECT_EQ(ev.from_shard, slow_shard);
  EXPECT_NE(ev.to_shard, slow_shard);
  EXPECT_GT(ev.streams_moved, 0u);
  EXPECT_GE(ev.request_ms, 0.0);
  EXPECT_TRUE(report.failovers.empty()) << "a live drain is not a failover";
  EXPECT_EQ(report.damage.recoveries, 0u) << "no crash-path recovery ran";
  EXPECT_EQ(report.false_deaths, 0u) << "slow is not dead";
  EXPECT_EQ(report.uncaught_exceptions, 0u);
  EXPECT_EQ(report.windows_shed_total, 0u) << "zero windows shed across the drain";
  EXPECT_TRUE(report.reconciled());
  // Every stream that left the slow shard rode exactly one hand-off and
  // now serves under a freshly minted epoch — at-most-once adoption.
  std::size_t moved_seen = 0;
  for (const StreamResult& s : report.streams) {
    if (s.first_shard != slow_shard) continue;
    EXPECT_EQ(s.moves, 1u) << s.name << " must move exactly once";
    EXPECT_NE(s.final_shard, slow_shard);
    EXPECT_EQ(fleet.epochs().at(s.name), 2u) << "drain must mint a fresh epoch";
    ++moved_seen;
  }
  EXPECT_EQ(moved_seen, ev.streams_moved);
  expect_fleet_parity(report, want);
  expect_epoch_audit_clean(fleet);
}

// The gray drill on a perfect network: the shard turns slow mid-wave,
// the watermark breach streak triggers a cooperative drain, the reserve
// adopts the hand-offs live — and the merged sequences are bit-identical
// to the run where nothing was ever slow.
TEST(PartitionChaos, GrayShardDrainsLiveToReserveZeroShed) {
  GrayDrill drill(94000);
  const FleetReport want = reference_report(drill.cfg);
  ASSERT_GE(want.decisions_total, 24u);

  ScratchDir scratch("gray_drain");
  drill.cfg.durability_root = scratch.path;
  FleetController fleet(drill.cfg);
  fleet.run();
  expect_gray_drill_outcome(fleet, want, drill.slow_shard);
}

// The same drill over a fabric that duplicates, delays and reorders —
// the DrainRequest and the hand-off-carrying DrainComplete transfers
// themselves are ghosted and shuffled. req_id dedupe plus epoch fencing
// must make adoption exactly-once: same parity, same clean audit.
TEST(PartitionChaos, DuplicatedAndReorderedDrainTransfersAdoptAtMostOnce) {
  GrayDrill drill(97000);
  const FleetReport want = reference_report(drill.cfg);
  ASSERT_GE(want.decisions_total, 24u);

  ScratchDir scratch("gray_drain_dup_reorder");
  drill.cfg.durability_root = scratch.path;
  drill.cfg.net_fault.seed = 0xD8A1;
  drill.cfg.net_fault.dup_prob = 0.5;
  drill.cfg.net_fault.reorder_prob = 0.4;
  drill.cfg.net_fault.delay_prob = 0.3;
  drill.cfg.net_fault.delay_min_ms = 1.0;
  drill.cfg.net_fault.delay_max_ms = 4.0;
  FleetController fleet(drill.cfg);
  fleet.run();
  expect_gray_drill_outcome(fleet, want, drill.slow_shard);
  EXPECT_GT(fleet.report().transport.duplicated, 0u) << "the fabric never duplicated";
}

// Dynamic admission end-to-end (wall-clock reactive, so no parity claim):
// a slow shard's latency watermark breaches the degrade mark for the
// configured streak and the controller flips a live degrade on one of
// its non-Critical streams — windows still decided, nothing shed.
TEST(PartitionChaos, DynamicAdmissionDegradesLiveUnderSustainedBreach) {
  // The lossy sweep's scenario (decision-rich by construction), packed
  // onto one shard so every model batch eats the injected 60 ms delay.
  // fleet_config makes cam2 the lone BestEffort stream — Daytime, so it
  // keeps deciding after the degrade and the held degrade is observable.
  FleetConfig cfg = fleet_config(4, 1, 81000);
  cfg.shard_decide_delay_ms = {60.0};
  cfg.dynamic_admission.enabled = true;
  cfg.dynamic_admission.degrade_watermark_ms = 100.0;
  cfg.dynamic_admission.undegrade_watermark_ms = 50.0;
  cfg.dynamic_admission.breach_streak = 3;
  cfg.dynamic_admission.max_degraded = 1;

  ScratchDir scratch("dyn_admission_live");
  cfg.durability_root = scratch.path;
  FleetController fleet(cfg);
  fleet.run();

  const FleetReport& report = fleet.report();
  EXPECT_GE(report.live_degrades, 1u) << "the sustained breach never degraded anything";
  EXPECT_GT(report.degraded_decisions_total, 0u)
      << "a held degrade must answer decisions conservatively";
  EXPECT_EQ(report.windows_shed_total, 0u) << "degrade-before-drop, even live";
  EXPECT_TRUE(report.reconciled());
  EXPECT_TRUE(report.failovers.empty());
}

}  // namespace
}  // namespace safecross::fleet
