#include "common/stats.h"

#include <gtest/gtest.h>

namespace safecross {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(ConfusionMatrix, Top1Accuracy) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.top1_accuracy(), 0.75);
}

TEST(ConfusionMatrix, MeanClassAccuracyWeighsClassesEqually) {
  ConfusionMatrix cm(2);
  // Class 0: 9/10 right. Class 1: 1/2 right.
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.top1_accuracy(), 10.0 / 12.0);
  EXPECT_DOUBLE_EQ(cm.mean_class_accuracy(), (0.9 + 0.5) / 2.0);
}

TEST(ConfusionMatrix, SkipsEmptyClassesInMeanClassAcc) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.mean_class_accuracy(), 1.0);
}

TEST(ConfusionMatrix, PrecisionAndRecall) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);  // tn (treating class 1 as positive)
  cm.add(1, 0);  // fn
  cm.add(1, 1);  // tp
  cm.add(0, 1);  // fp
  cm.add(1, 1);  // tp
  EXPECT_DOUBLE_EQ(cm.recall(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, 5), std::out_of_range);
}

TEST(ConfusionMatrix, ZeroClassesRejected) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

}  // namespace
}  // namespace safecross
