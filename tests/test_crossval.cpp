#include "fewshot/crossval.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "models/slowfast.h"

namespace safecross::fewshot {
namespace {

const std::vector<VideoSegment>& pool_segments() {
  static const std::vector<VideoSegment> segs = [] {
    dataset::BuildRequest req;
    req.target_segments = 34;  // the paper's rain pool size
    req.max_sim_hours = 2.0;
    req.seed = 404;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

std::vector<const VideoSegment*> ptrs() {
  std::vector<const VideoSegment*> out;
  for (const auto& s : pool_segments()) out.push_back(&s);
  return out;
}

ModelFactory tiny_factory() {
  return [] {
    models::SlowFastConfig cfg;
    cfg.slow_channels = 4;
    cfg.fast_channels = 2;
    return std::make_unique<models::SlowFast>(cfg);
  };
}

TEST(CrossVal, EverySegmentEvaluatedExactlyOnce) {
  TrainConfig cfg;
  cfg.epochs = 1;
  const CrossValResult r = k_fold_cross_validate(tiny_factory(), ptrs(), 5, cfg, 1);
  EXPECT_EQ(r.folds, 5u);
  EXPECT_EQ(r.total_evaluated, pool_segments().size());
  EXPECT_GE(r.mean_top1, 0.0);
  EXPECT_LE(r.mean_top1, 1.0);
  EXPECT_GE(r.stddev_top1, 0.0);
}

TEST(CrossVal, RejectsDegenerateInputs) {
  TrainConfig cfg;
  const auto pool = ptrs();
  EXPECT_THROW(k_fold_cross_validate(tiny_factory(), pool, 1, cfg, 1), std::invalid_argument);
  const std::vector<const VideoSegment*> two(pool.begin(), pool.begin() + 2);
  EXPECT_THROW(k_fold_cross_validate(tiny_factory(), two, 5, cfg, 1), std::invalid_argument);
}

TEST(CrossVal, TrainedFoldsBeatChance) {
  // At 34 segments a frozen random init can luck into the majority class,
  // so the robust claim is "clearly above coin flip", not a pairwise win.
  TrainConfig trained_cfg;
  trained_cfg.epochs = 6;
  const CrossValResult trained = k_fold_cross_validate(tiny_factory(), ptrs(), 4, trained_cfg, 7);
  EXPECT_GT(trained.mean_top1, 0.55);
  EXPECT_LT(trained.stddev_top1, 0.5);
}

TEST(CrossVal, DeterministicForSeed) {
  TrainConfig cfg;
  cfg.epochs = 2;
  const CrossValResult a = k_fold_cross_validate(tiny_factory(), ptrs(), 3, cfg, 11);
  const CrossValResult b = k_fold_cross_validate(tiny_factory(), ptrs(), 3, cfg, 11);
  EXPECT_DOUBLE_EQ(a.mean_top1, b.mean_top1);
  EXPECT_DOUBLE_EQ(a.stddev_top1, b.stddev_top1);
}

}  // namespace
}  // namespace safecross::fewshot
