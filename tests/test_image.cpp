#include "vision/image.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.fill(0.25f);
  EXPECT_FLOAT_EQ(img.at(3, 2), 0.25f);
}

TEST(Image, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
  EXPECT_THROW(Image(5, -1), std::invalid_argument);
}

TEST(Image, AtClampedReturnsOutsideValue) {
  Image img(2, 2, 1.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(-1, 0, 0.7f), 0.7f);
  EXPECT_FLOAT_EQ(img.at_clamped(0, 5, 0.7f), 0.7f);
  EXPECT_FLOAT_EQ(img.at_clamped(1, 1, 0.7f), 1.0f);
}

TEST(Image, BilinearSamplingInterpolates) {
  Image img(2, 2);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  img.at(0, 1) = 0.0f;
  img.at(1, 1) = 1.0f;
  EXPECT_NEAR(img.sample_bilinear(0.5f, 0.5f), 0.5f, 1e-6);
  EXPECT_NEAR(img.sample_bilinear(0.25f, 0.0f), 0.25f, 1e-6);
  // Clamps beyond the border.
  EXPECT_NEAR(img.sample_bilinear(-5.0f, 0.0f), 0.0f, 1e-6);
}

TEST(Image, AbsdiffAndThreshold) {
  Image a(2, 1), b(2, 1);
  a.at(0, 0) = 0.9f;
  b.at(0, 0) = 0.2f;
  a.at(1, 0) = 0.5f;
  b.at(1, 0) = 0.45f;
  const Image d = Image::absdiff(a, b);
  EXPECT_NEAR(d.at(0, 0), 0.7f, 1e-6);
  const Image m = d.threshold(0.1f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);
}

TEST(Image, AbsdiffRejectsMismatch) {
  EXPECT_THROW(Image::absdiff(Image(2, 2), Image(3, 2)), std::invalid_argument);
}

TEST(Image, CountAboveAndMean) {
  Image img(2, 2, 0.0f);
  img.at(0, 0) = 1.0f;
  img.at(1, 1) = 1.0f;
  EXPECT_EQ(img.count_above(0.5f), 2u);
  EXPECT_FLOAT_EQ(img.mean(), 0.5f);
}

TEST(Image, ResizeNearestPreservesCorners) {
  Image img(4, 4, 0.0f);
  img.at(0, 0) = 1.0f;
  const Image small = img.resized_nearest(2, 2);
  EXPECT_FLOAT_EQ(small.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(small.at(1, 1), 0.0f);
}

TEST(Image, ResizeAreaAverages) {
  Image img(2, 2);
  img.at(0, 0) = 1.0f;
  img.at(1, 0) = 0.0f;
  img.at(0, 1) = 1.0f;
  img.at(1, 1) = 0.0f;
  const Image one = img.resized_area(1, 1);
  EXPECT_NEAR(one.at(0, 0), 0.5f, 1e-6);
}

TEST(Image, BoxBlurSmoothsImpulse) {
  Image img(5, 5, 0.0f);
  img.at(2, 2) = 9.0f;
  const Image blurred = img.box_blur3();
  EXPECT_NEAR(blurred.at(2, 2), 1.0f, 1e-5);
  EXPECT_NEAR(blurred.at(1, 1), 1.0f, 1e-5);
  EXPECT_NEAR(blurred.at(0, 0), 0.0f, 1e-5);
}

TEST(Image, AsciiRenderHasExpectedRows) {
  Image img(64, 32, 0.5f);
  const std::string art = img.to_ascii(32);
  // 32 cols -> 32 * (32/64) / 2 = 8 rows of 33 chars (incl. newline).
  int rows = 0;
  for (const char c : art) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 8);
}

}  // namespace
}  // namespace safecross::vision
