#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace safecross {
namespace {

bool aligned64(const void* p) { return reinterpret_cast<std::uintptr_t>(p) % 64 == 0; }

TEST(ScratchArena, AllocationsAreAligned) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  EXPECT_TRUE(aligned64(arena.floats(1)));
  EXPECT_TRUE(aligned64(arena.floats(7)));
  EXPECT_TRUE(aligned64(arena.raw(3)));
  EXPECT_TRUE(aligned64(arena.raw(65)));
}

TEST(ScratchArena, AllocationsDoNotOverlap) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  float* a = arena.floats(100);
  float* b = arena.floats(100);
  for (int i = 0; i < 100; ++i) a[i] = 1.0f;
  for (int i = 0; i < 100; ++i) b[i] = 2.0f;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a[i], 1.0f);
}

TEST(ScratchArena, ScopeRewindReusesMemoryWithoutGrowth) {
  ScratchArena arena;
  {
    ScratchArena::Scope scope(arena);
    arena.floats(10000);
  }
  const std::size_t cap = arena.capacity();
  EXPECT_GT(cap, 0u);
  for (int round = 0; round < 50; ++round) {
    ScratchArena::Scope scope(arena);
    float* p = arena.floats(10000);
    p[0] = static_cast<float>(round);
  }
  // Steady state: rewinding reclaims everything, capacity is flat.
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ScratchArena, NestedScopesRewindLifo) {
  ScratchArena arena;
  ScratchArena::Scope outer(arena);
  float* a = arena.floats(64);
  a[0] = 42.0f;
  {
    ScratchArena::Scope inner(arena);
    float* b = arena.floats(1 << 20);  // forces a new, bigger block
    std::memset(b, 0xFF, (1 << 20) * sizeof(float));
  }
  // Inner allocations are gone, outer's live pointer is untouched.
  EXPECT_EQ(a[0], 42.0f);
  float* c = arena.floats(64);
  EXPECT_NE(c, nullptr);
  EXPECT_EQ(a[0], 42.0f);
}

TEST(ScratchArena, GrowsAcrossBlocksKeepingLivePointersValid) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  std::vector<float*> ptrs;
  // Each allocation larger than the last block forces chaining; earlier
  // pointers must stay valid and hold their values.
  for (int i = 0; i < 8; ++i) {
    float* p = arena.floats(static_cast<std::size_t>(1) << (14 + i));
    p[0] = static_cast<float>(i);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 8; ++i) ASSERT_EQ(ptrs[i][0], static_cast<float>(i));
}

TEST(ScratchArena, LocalIsPerThread) {
  ScratchArena* main_arena = &ScratchArena::local();
  ScratchArena* other_arena = nullptr;
  std::thread t([&] { other_arena = &ScratchArena::local(); });
  t.join();
  EXPECT_EQ(main_arena, &ScratchArena::local());
  EXPECT_NE(main_arena, other_arena);
}

TEST(ScratchArena, ZeroByteRequestIsSafe) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  (void)arena.raw(0);
  float* p = arena.floats(4);
  p[0] = 1.0f;
  EXPECT_EQ(p[0], 1.0f);
}

}  // namespace
}  // namespace safecross
