#include "switching/profile.h"

#include <gtest/gtest.h>

#include "nn/linear.h"

namespace safecross::switching {
namespace {

TEST(Profile, ResNet152ParameterCountIsRealistic) {
  const ModelProfile p = resnet152_profile();
  const double mparams = static_cast<double>(p.total_bytes()) / 4e6;
  EXPECT_NEAR(mparams, 60.2, 2.5);  // published: 60.2M
  EXPECT_GT(p.layers.size(), 150u);
}

TEST(Profile, InceptionV3ParameterCountIsRealistic) {
  const ModelProfile p = inception_v3_profile();
  const double mparams = static_cast<double>(p.total_bytes()) / 4e6;
  EXPECT_NEAR(mparams, 23.9, 2.5);  // published: 23.9M
}

TEST(Profile, SlowFastParameterCountIsRealistic) {
  const ModelProfile p = slowfast_r50_profile();
  const double mparams = static_cast<double>(p.total_bytes()) / 4e6;
  EXPECT_NEAR(mparams, 34.5, 3.0);  // published: ~34.5M
}

TEST(Profile, TotalsAreSumsOfLayers) {
  const ModelProfile p = inception_v3_profile();
  std::size_t bytes = 0;
  double compute = 0.0, cold = 0.0;
  for (const auto& l : p.layers) {
    bytes += l.param_bytes;
    compute += l.compute_ms;
    cold += l.cold_extra_ms;
  }
  EXPECT_EQ(p.total_bytes(), bytes);
  EXPECT_DOUBLE_EQ(p.total_compute_ms(), compute);
  EXPECT_DOUBLE_EQ(p.total_cold_extra_ms(), cold);
}

TEST(Profile, SlowFastColdStartDominates) {
  // The 3-D conv workload's defining cost signature.
  const ModelProfile sf = slowfast_r50_profile();
  const ModelProfile rn = resnet152_profile();
  EXPECT_GT(sf.total_cold_extra_ms(), rn.total_cold_extra_ms());
  EXPECT_GT(sf.framework_load_ms, rn.framework_load_ms);
}

TEST(Profile, EveryLayerHasPositiveComputeAndName) {
  for (const ModelProfile& p :
       {slowfast_r50_profile(), resnet152_profile(), inception_v3_profile()}) {
    for (const auto& l : p.layers) {
      EXPECT_GT(l.compute_ms, 0.0) << p.name << "/" << l.name;
      EXPECT_FALSE(l.name.empty());
    }
  }
}

TEST(Profile, FromParamsMatchesTensorSizes) {
  nn::Linear layer(10, 4);
  const ModelProfile p = profile_from_params("toy", layer.params());
  ASSERT_EQ(p.layers.size(), 2u);
  EXPECT_EQ(p.layers[0].param_bytes, 40u * 4u);
  EXPECT_EQ(p.layers[1].param_bytes, 4u * 4u);
  EXPECT_EQ(p.total_bytes(), 44u * 4u);
}

}  // namespace
}  // namespace safecross::switching
