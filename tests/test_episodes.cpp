#include "fewshot/episodes.h"

#include <set>

#include <gtest/gtest.h>

namespace safecross::fewshot {
namespace {

std::vector<VideoSegment> make_pool(int danger, int safe) {
  std::vector<VideoSegment> pool;
  for (int i = 0; i < danger; ++i) {
    VideoSegment s;
    s.turned = false;
    pool.push_back(s);
  }
  for (int i = 0; i < safe; ++i) {
    VideoSegment s;
    s.turned = true;
    pool.push_back(s);
  }
  return pool;
}

Task make_task(const std::vector<VideoSegment>& pool, const std::string& name) {
  Task t;
  t.name = name;
  for (const auto& s : pool) t.pool.push_back(&s);
  return t;
}

TEST(Episodes, ByClassPartitionsPool) {
  const auto pool = make_pool(3, 5);
  const Task task = make_task(pool, "t");
  const auto classes = by_class(task.pool, 2);
  EXPECT_EQ(classes[0].size(), 3u);
  EXPECT_EQ(classes[1].size(), 5u);
}

TEST(Episodes, SampleEpisodeHasRequestedSizes) {
  const auto pool = make_pool(20, 20);
  const Task task = make_task(pool, "t");
  EpisodeConfig cfg;
  cfg.k_shot = 4;
  cfg.query_per_class = 3;
  safecross::Rng rng(1);
  const Episode ep = sample_episode(task, cfg, rng);
  EXPECT_EQ(ep.support.size(), 8u);
  EXPECT_EQ(ep.query.size(), 6u);
}

TEST(Episodes, SupportIsClassBalanced) {
  const auto pool = make_pool(20, 20);
  const Task task = make_task(pool, "t");
  EpisodeConfig cfg;
  cfg.k_shot = 5;
  safecross::Rng rng(2);
  const Episode ep = sample_episode(task, cfg, rng);
  int danger = 0;
  for (const auto* s : ep.support) danger += s->binary_label() == 0 ? 1 : 0;
  EXPECT_EQ(danger, 5);
}

TEST(Episodes, WithoutReplacementAvoidsDuplicatesWhenPoolIsLarge) {
  const auto pool = make_pool(30, 30);
  const Task task = make_task(pool, "t");
  EpisodeConfig cfg;
  cfg.k_shot = 5;
  cfg.query_per_class = 5;
  safecross::Rng rng(3);
  const Episode ep = sample_episode(task, cfg, rng);
  std::set<const VideoSegment*> seen(ep.support.begin(), ep.support.end());
  for (const auto* q : ep.query) {
    EXPECT_EQ(seen.count(q), 0u) << "query leaked into support";
  }
}

TEST(Episodes, TinyPoolFallsBackToReplacement) {
  // The paper's rain pool: so few samples that episodes must reuse them.
  const auto pool = make_pool(2, 2);
  const Task task = make_task(pool, "rain");
  EpisodeConfig cfg;
  cfg.k_shot = 5;
  cfg.query_per_class = 5;
  safecross::Rng rng(4);
  const Episode ep = sample_episode(task, cfg, rng);
  EXPECT_EQ(ep.support.size(), 10u);
  EXPECT_EQ(ep.query.size(), 10u);
}

TEST(Episodes, MissingClassThrows) {
  const auto pool = make_pool(4, 0);
  const Task task = make_task(pool, "one-sided");
  EpisodeConfig cfg;
  safecross::Rng rng(5);
  EXPECT_THROW(sample_episode(task, cfg, rng), std::runtime_error);
}

TEST(Episodes, ByClassRejectsOutOfRangeLabels) {
  const auto pool = make_pool(1, 1);
  const Task task = make_task(pool, "t");
  EXPECT_THROW(by_class(task.pool, 1), std::out_of_range);
}

}  // namespace
}  // namespace safecross::fewshot
