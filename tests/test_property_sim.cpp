// Property-based tests of the traffic simulator and dataset pipeline:
// invariants that must hold for every weather condition and seed.

#include <tuple>

#include <gtest/gtest.h>

#include "dataset/collector.h"
#include "sim/camera.h"
#include "sim/traffic.h"

namespace safecross::sim {
namespace {

using Param = std::tuple<Weather, std::uint64_t>;

class SimInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(SimInvariants, VehiclesStayOnTheirRoutes) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator sim(weather_params(weather), seed);
  for (int i = 0; i < 30 * 180; ++i) {
    sim.step();
    for (const Vehicle& v : sim.vehicles()) {
      EXPECT_GE(v.s, 0.0);
      EXPECT_LE(v.rear_s(), sim.intersection().route(v.route).length() + 1e-9);
      EXPECT_GE(v.speed, 0.0);
      EXPECT_LE(v.speed, v.free_speed * 1.05 + 1e-9);
    }
  }
}

TEST_P(SimInvariants, KeyframesEqualCompletedTurns) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator sim(weather_params(weather), seed);
  std::uint64_t keyframes = 0;
  for (int i = 0; i < 30 * 600; ++i) {
    sim.step();
    keyframes += sim.turn_keyframes().size();
  }
  EXPECT_EQ(keyframes, sim.completed_turns());
}

TEST_P(SimInvariants, DeterministicReplay) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator a(weather_params(weather), seed);
  TrafficSimulator b(weather_params(weather), seed);
  for (int i = 0; i < 30 * 120; ++i) {
    a.step();
    b.step();
  }
  ASSERT_EQ(a.vehicles().size(), b.vehicles().size());
  for (std::size_t i = 0; i < a.vehicles().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vehicles()[i].s, b.vehicles()[i].s);
    EXPECT_DOUBLE_EQ(a.vehicles()[i].speed, b.vehicles()[i].speed);
  }
}

TEST_P(SimInvariants, NoFollowerOvertakesItsLeader) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator sim(weather_params(weather), seed);
  for (int i = 0; i < 30 * 300; ++i) {
    sim.step();
    for (int r = 0; r < kNumRoutes; ++r) {
      std::vector<const Vehicle*> lane;
      for (const Vehicle& v : sim.vehicles()) {
        if (v.route == static_cast<RouteId>(r)) lane.push_back(&v);
      }
      std::sort(lane.begin(), lane.end(),
                [](const Vehicle* x, const Vehicle* y) { return x->id < y->id; });
      // Spawn order == position order on a no-overtaking route.
      for (std::size_t k = 1; k < lane.size(); ++k) {
        EXPECT_GE(lane[k - 1]->s, lane[k]->s - 1e-6)
            << route_name(static_cast<RouteId>(r)) << " at t=" << sim.time();
      }
    }
  }
}

TEST_P(SimInvariants, BlockerIsAlwaysOnOppositeLeftRoute) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator sim(weather_params(weather), seed);
  for (int i = 0; i < 30 * 300; ++i) {
    sim.step();
    const Vehicle* b = sim.blocker();
    if (b != nullptr) {
      EXPECT_EQ(b->route, RouteId::WestboundLeftWait);
    }
    if (sim.blind_area_present()) {
      ASSERT_NE(b, nullptr);
      EXPECT_TRUE(is_view_blocking(b->type));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeatherSeeds, SimInvariants,
    ::testing::Combine(::testing::Values(Weather::Daytime, Weather::Rain, Weather::Snow,
                                         Weather::Night, Weather::Fog),
                       ::testing::Values(101u, 202u)));

// ---------- Dataset pipeline invariants per weather ----------

class CollectorInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(CollectorInvariants, SegmentsAreWellFormed) {
  const auto [weather, seed] = GetParam();
  TrafficSimulator sim(weather_params(weather), seed);
  const CameraModel cam(sim.intersection().geometry());
  dataset::CollectorConfig cfg;
  dataset::SegmentCollector collector(sim, cam, cfg, seed ^ 0x99);
  while (collector.segments().size() < 12 && sim.time() < 3600.0) collector.step();
  ASSERT_GE(collector.segments().size(), 1u);
  for (const auto& seg : collector.segments()) {
    EXPECT_EQ(seg.frames.size(), static_cast<std::size_t>(cfg.frames_per_segment));
    EXPECT_EQ(seg.weather, weather);
    EXPECT_EQ(seg.binary_label(), seg.turned ? 1 : 0);
    // Frames are binary occupancy grids of the configured size.
    for (const auto& f : seg.frames) {
      EXPECT_EQ(f.width(), cfg.grid_w);
      EXPECT_EQ(f.height(), cfg.grid_h);
      for (std::size_t i = 0; i < f.size(); ++i) {
        EXPECT_TRUE(f.data()[i] == 0.0f || f.data()[i] == 1.0f);
      }
    }
    // Timestamps are ordered as collected.
    EXPECT_GT(seg.sim_time, 0.0);
  }
}

TEST_P(CollectorInvariants, DeterministicSegments) {
  const auto [weather, seed] = GetParam();
  auto run = [&, weather = weather, seed = seed] {
    TrafficSimulator sim(weather_params(weather), seed);
    const CameraModel cam(sim.intersection().geometry());
    dataset::SegmentCollector collector(sim, cam, {}, seed ^ 0x99);
    while (collector.segments().size() < 8 && sim.time() < 3600.0) collector.step();
    return collector.take_segments();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].binary_label(), b[i].binary_label());
    EXPECT_EQ(a[i].blind_area, b[i].blind_area);
    EXPECT_DOUBLE_EQ(a[i].sim_time, b[i].sim_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeatherSeeds, CollectorInvariants,
    ::testing::Combine(::testing::Values(Weather::Daytime, Weather::Rain, Weather::Snow,
                                         Weather::Night, Weather::Fog),
                       ::testing::Values(303u)));

}  // namespace
}  // namespace safecross::sim
