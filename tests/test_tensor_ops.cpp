#include "models/tensor_ops.h"

#include <gtest/gtest.h>

namespace safecross::models {
namespace {

TEST(TensorOps, ConcatChannels5D) {
  Tensor a({1, 2, 2, 1, 1}, 1.0f);
  Tensor b({1, 3, 2, 1, 1}, 2.0f);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int>{1, 5, 2, 1, 1}));
  EXPECT_FLOAT_EQ(c[0], 1.0f);   // a's channels first
  EXPECT_FLOAT_EQ(c[4], 2.0f);   // then b's
}

TEST(TensorOps, ConcatChannels2D) {
  Tensor a({2, 3}, 1.0f);
  Tensor b({2, 2}, 5.0f);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int>{2, 5}));
  EXPECT_FLOAT_EQ(c.at({0, 2}), 1.0f);
  EXPECT_FLOAT_EQ(c.at({0, 3}), 5.0f);
  EXPECT_FLOAT_EQ(c.at({1, 4}), 5.0f);
}

TEST(TensorOps, ConcatRejectsMismatchedSpatialDims) {
  EXPECT_THROW(concat_channels(Tensor({1, 2, 4}), Tensor({1, 2, 5})), std::invalid_argument);
}

TEST(TensorOps, SplitInvertsConcat) {
  Tensor a({2, 2, 3});
  Tensor b({2, 4, 3});
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(i);
  for (std::size_t i = 0; i < b.numel(); ++i) b[i] = 100.0f + static_cast<float>(i);
  const Tensor c = concat_channels(a, b);
  const auto [a2, b2] = split_channels(c, 2);
  ASSERT_EQ(a2.shape(), a.shape());
  ASSERT_EQ(b2.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a2[i], a[i]);
  for (std::size_t i = 0; i < b.numel(); ++i) EXPECT_FLOAT_EQ(b2[i], b[i]);
}

TEST(TensorOps, SplitRejectsBadBoundary) {
  Tensor t({1, 4, 2});
  EXPECT_THROW(split_channels(t, 0), std::invalid_argument);
  EXPECT_THROW(split_channels(t, 4), std::invalid_argument);
}

TEST(TensorOps, SubsampleTimePicksStridedFrames) {
  Tensor x({1, 1, 8, 1, 2});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i / 2);  // frame index
  const Tensor s = subsample_time(x, 4);
  EXPECT_EQ(s.shape(), (std::vector<int>{1, 1, 2, 1, 2}));
  EXPECT_FLOAT_EQ(s[0], 0.0f);
  EXPECT_FLOAT_EQ(s[2], 4.0f);
}

TEST(TensorOps, SubsampleWithOffset) {
  Tensor x({1, 1, 8, 1, 1});
  for (int i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor s = subsample_time(x, 4, 1);
  EXPECT_FLOAT_EQ(s[0], 1.0f);
  EXPECT_FLOAT_EQ(s[1], 5.0f);
}

TEST(TensorOps, SubsampleBackwardScattersToPickedFrames) {
  const std::vector<int> full{1, 1, 8, 1, 1};
  Tensor grad({1, 1, 2, 1, 1});
  grad[0] = 3.0f;
  grad[1] = 7.0f;
  const Tensor g = subsample_time_backward(grad, full, 4);
  EXPECT_FLOAT_EQ(g[0], 3.0f);
  EXPECT_FLOAT_EQ(g[4], 7.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[5], 0.0f);
}

TEST(TensorOps, SelectFramesValidatesIndices) {
  Tensor x({1, 1, 4, 1, 1});
  EXPECT_THROW(select_frames(x, {0, 9}), std::out_of_range);
}

TEST(TensorOps, ClipToTensorPacksFrames) {
  std::vector<vision::Image> frames(3, vision::Image(4, 2, 0.0f));
  frames[1].at(2, 1) = 1.0f;
  const Tensor t = clip_to_tensor(frames);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 1, 3, 2, 4}));
  EXPECT_FLOAT_EQ(t.at({0, 0, 1, 1, 2}), 1.0f);
}

TEST(TensorOps, ClipsToBatchValidatesConsistency) {
  std::vector<vision::Image> a(3, vision::Image(4, 2));
  std::vector<vision::Image> short_clip(2, vision::Image(4, 2));
  std::vector<vision::Image> wrong_size(3, vision::Image(5, 2));
  EXPECT_THROW(clips_to_batch({&a, &short_clip}), std::invalid_argument);
  EXPECT_THROW(clips_to_batch({&a, &wrong_size}), std::invalid_argument);
  const Tensor batch = clips_to_batch({&a, &a});
  EXPECT_EQ(batch.dim(0), 2);
}

}  // namespace
}  // namespace safecross::models
