#include "common/half.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace safecross {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  // Everything exactly representable in binary16 must survive unchanged.
  for (const float v : {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, 0.25f, 1.5f, -3.75f, 2048.0f, 65504.0f}) {
    EXPECT_EQ(fp16_round(v), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000u);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000u);
  EXPECT_TRUE(std::signbit(fp16_round(-0.0f)));
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00u);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xC000u);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFFu);  // largest finite half
  EXPECT_EQ(half_bits_to_float(0x3C00u), 1.0f);
  EXPECT_EQ(half_bits_to_float(0x7BFFu), 65504.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10);
  // ties go to the even mantissa, i.e. down to 1.0.
  EXPECT_EQ(fp16_round(1.0f + 0x1p-11f), 1.0f);
  // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  EXPECT_EQ(fp16_round(1.0f + 3 * 0x1p-11f), 1.0f + 0x1p-9f);
  // Just above the tie rounds up.
  EXPECT_EQ(fp16_round(1.0f + 0x1.1p-11f), 1.0f + 0x1p-10f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(fp16_round(65520.0f)));  // first value rounding to inf
  EXPECT_TRUE(std::isinf(fp16_round(1e30f)));
  EXPECT_TRUE(std::isinf(fp16_round(-1e30f)));
  EXPECT_LT(fp16_round(-1e30f), 0.0f);
  EXPECT_EQ(fp16_round(65504.0f), 65504.0f);  // largest finite survives
}

TEST(Half, InfAndNaNPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp16_round(inf), inf);
  EXPECT_EQ(fp16_round(-inf), -inf);
  EXPECT_TRUE(std::isnan(fp16_round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Half, SubnormalsRoundTrip) {
  // Smallest positive half subnormal is 2^-24.
  EXPECT_EQ(fp16_round(0x1p-24f), 0x1p-24f);
  EXPECT_EQ(fp16_round(0x1p-15f), 0x1p-15f);  // subnormal range, exact
  // Below half the smallest subnormal flushes to zero.
  EXPECT_EQ(fp16_round(0x1p-26f), 0.0f);
  EXPECT_EQ(fp16_round(-0x1p-26f), -0.0f);
}

TEST(Half, RelativeErrorBounded) {
  // Round-to-nearest guarantees relative error <= 2^-11 in the normal
  // range; subnormals (|v| < 2^-14) degrade to absolute error <= 2^-25.
  for (int i = 0; i < 4000; ++i) {
    const float v = -2.0f + static_cast<float>(i) * 0.001f;
    if (v == 0.0f) continue;
    const float bound = std::max(std::abs(v) * 0x1p-11f, 0x1p-25f);
    EXPECT_LE(std::abs(fp16_round(v) - v), bound) << v;
  }
}

TEST(Half, AllHalfBitPatternsRoundTripExactly) {
  // Every finite half value converts to float and back to the same bits
  // (float superset of half => conversion is exact and re-rounds to
  // itself). NaNs only need to stay NaN.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const std::uint16_t h = static_cast<std::uint16_t>(bits);
    const float f = half_bits_to_float(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(fp16_round(f)));
      continue;
    }
    EXPECT_EQ(float_to_half_bits(f), h) << "bits=0x" << std::hex << bits;
  }
}

}  // namespace
}  // namespace safecross
