#include "runtime/health_monitor.h"

#include <gtest/gtest.h>

namespace safecross::runtime {
namespace {

TEST(HealthMonitor, StartsNominal) {
  HealthMonitor hm;
  EXPECT_EQ(hm.state(), HealthState::Nominal);
  EXPECT_FALSE(hm.switch_in_flight());
  EXPECT_FALSE(hm.switch_failure_latched());
}

TEST(HealthMonitor, MissingFramesEscalateThroughDegradedToFailSafe) {
  HealthConfig cfg;
  cfg.degraded_after_missing = 2;
  cfg.failsafe_after_missing = 8;
  HealthMonitor hm(cfg);
  hm.frame_missing();
  EXPECT_EQ(hm.state(), HealthState::Nominal);  // one missing frame is noise
  hm.frame_missing();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  for (int i = 0; i < 5; ++i) hm.frame_missing();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  hm.frame_missing();  // 8th consecutive
  EXPECT_EQ(hm.state(), HealthState::FailSafe);
}

TEST(HealthMonitor, RecoversOneLevelPerHealthyStreak) {
  HealthConfig cfg;
  cfg.recover_after_healthy = 10;
  HealthMonitor hm(cfg);
  for (int i = 0; i < 8; ++i) hm.frame_missing();
  ASSERT_EQ(hm.state(), HealthState::FailSafe);
  for (int i = 0; i < 9; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::FailSafe);  // streak not sustained yet
  hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded);  // one level at a time
  for (int i = 0; i < 10; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, AFaultResetsTheHealthyStreak) {
  HealthConfig cfg;
  cfg.degraded_after_missing = 1;
  cfg.recover_after_healthy = 10;
  HealthMonitor hm(cfg);
  hm.frame_missing();
  ASSERT_EQ(hm.state(), HealthState::Degraded);
  for (int i = 0; i < 9; ++i) hm.frame_ok();
  hm.frame_degraded();  // a frozen frame spoils the streak
  for (int i = 0; i < 9; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded);  // still not recovered
  hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, DegradedFramesNeverEscalateToFailSafeAlone) {
  HealthMonitor hm;
  for (int i = 0; i < 1000; ++i) hm.frame_degraded();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
}

TEST(HealthMonitor, SwitchLatencyTranslatesIntoInFlightFrames) {
  HealthConfig cfg;
  cfg.frame_interval_ms = 1000.0 / 30.0;  // 33.33 ms
  HealthMonitor hm(cfg);
  hm.switch_started(100.0);  // ceil(100 / 33.3) = 3 frames
  EXPECT_TRUE(hm.switch_in_flight());
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  hm.frame_ok();
  hm.frame_ok();
  EXPECT_TRUE(hm.switch_in_flight());
  hm.frame_ok();
  EXPECT_FALSE(hm.switch_in_flight());
}

TEST(HealthMonitor, InstantSwitchDoesNotDegrade) {
  HealthMonitor hm;
  hm.switch_started(0.0);
  EXPECT_FALSE(hm.switch_in_flight());
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, SwitchFailureLatchesFailSafeUntilRecovered) {
  HealthConfig cfg;
  cfg.recover_after_healthy = 5;
  HealthMonitor hm(cfg);
  hm.switch_failed();
  EXPECT_EQ(hm.state(), HealthState::FailSafe);
  EXPECT_TRUE(hm.switch_failure_latched());
  for (int i = 0; i < 100; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::FailSafe) << "latched failure pins FailSafe";
  hm.switch_recovered();
  EXPECT_FALSE(hm.switch_failure_latched());
  for (int i = 0; i < 5; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  for (int i = 0; i < 5; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, DeadlineDisabledByDefault) {
  HealthMonitor hm;
  EXPECT_FALSE(hm.deadline_blown(1e9));
}

TEST(HealthMonitor, DeadlineEnforcedWhenConfigured) {
  HealthConfig cfg;
  cfg.decision_deadline_ms = 50.0;
  HealthMonitor hm(cfg);
  EXPECT_FALSE(hm.deadline_blown(49.0));
  EXPECT_FALSE(hm.deadline_blown(50.0));
  EXPECT_TRUE(hm.deadline_blown(50.1));
}

TEST(HealthMonitor, WindowStaleness) {
  HealthConfig cfg;
  cfg.min_fresh_fraction = 0.75;
  HealthMonitor hm(cfg);
  EXPECT_FALSE(hm.window_stale(32, 32));
  EXPECT_FALSE(hm.window_stale(24, 32));  // exactly at the floor
  EXPECT_TRUE(hm.window_stale(23, 32));
  EXPECT_TRUE(hm.window_stale(0, 0));  // empty window is stale by definition
}

TEST(HealthMonitor, CountsFramesPerState) {
  HealthConfig cfg;
  cfg.degraded_after_missing = 1;
  HealthMonitor hm(cfg);
  hm.frame_ok();
  hm.frame_ok();
  hm.frame_missing();
  hm.frame_missing();
  EXPECT_EQ(hm.frames_in(HealthState::Nominal), 2u);
  EXPECT_EQ(hm.frames_in(HealthState::Degraded), 2u);
  EXPECT_GT(hm.transitions(), 0u);
}

TEST(HealthMonitor, DeEscalationTriggersExactlyAtTheStreakBoundary) {
  HealthConfig cfg;
  cfg.degraded_after_missing = 1;
  cfg.recover_after_healthy = 7;
  HealthMonitor hm(cfg);
  hm.frame_missing();
  ASSERT_EQ(hm.state(), HealthState::Degraded);
  // recover_after_healthy - 1 healthy frames: one short of the boundary.
  for (int i = 0; i < 6; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  hm.frame_ok();  // the 7th — exactly at the boundary
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, DeEscalationResetsTheStreakBetweenLevels) {
  HealthConfig cfg;
  cfg.failsafe_after_missing = 1;
  cfg.recover_after_healthy = 4;
  HealthMonitor hm(cfg);
  hm.frame_missing();
  ASSERT_EQ(hm.state(), HealthState::FailSafe);
  // The streak that bought FailSafe→Degraded must not also count toward
  // Degraded→Nominal: each level costs a full fresh streak.
  for (int i = 0; i < 4; ++i) hm.frame_ok();
  ASSERT_EQ(hm.state(), HealthState::Degraded);
  for (int i = 0; i < 3; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded) << "streak must restart after stepping down";
  hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, ExternalLatchPinsFailSafeUntilCleared) {
  HealthConfig cfg;
  cfg.recover_after_healthy = 5;
  HealthMonitor hm(cfg);
  EXPECT_FALSE(hm.fail_safe_latched());
  hm.latch_fail_safe();  // a supervisor gave up on a stage
  EXPECT_TRUE(hm.fail_safe_latched());
  EXPECT_EQ(hm.state(), HealthState::Nominal) << "escalation waits for the frame clock";
  hm.frame_ok();  // first frame event after the latch
  EXPECT_EQ(hm.state(), HealthState::FailSafe);
  for (int i = 0; i < 100; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::FailSafe) << "no healthy streak clears the latch";
  hm.clear_fail_safe_latch();
  EXPECT_FALSE(hm.fail_safe_latched());
  for (int i = 0; i < 5; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Degraded);
  for (int i = 0; i < 5; ++i) hm.frame_ok();
  EXPECT_EQ(hm.state(), HealthState::Nominal);
}

TEST(HealthMonitor, DecisionSourceNamesAndFailSafePredicate) {
  EXPECT_STREQ(decision_source_name(DecisionSource::Model), "model");
  EXPECT_FALSE(is_fail_safe(DecisionSource::Model));
  EXPECT_TRUE(is_fail_safe(DecisionSource::FailSafeIncompleteWindow));
  EXPECT_TRUE(is_fail_safe(DecisionSource::FailSafeStaleWindow));
  EXPECT_TRUE(is_fail_safe(DecisionSource::FailSafeSwitchInFlight));
  EXPECT_TRUE(is_fail_safe(DecisionSource::FailSafeDeadline));
  EXPECT_TRUE(is_fail_safe(DecisionSource::FailSafeStageDown));
  EXPECT_STREQ(decision_source_name(DecisionSource::FailSafeStageDown), "failsafe-stage-down");
  EXPECT_STREQ(health_state_name(HealthState::FailSafe), "fail-safe");
}

}  // namespace
}  // namespace safecross::runtime
