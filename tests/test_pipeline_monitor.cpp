// RealtimeMonitor in pipelined mode: the supervised staged pipeline must
// (a) reproduce the synchronous scorecard when nothing goes wrong, (b)
// survive injected stage crashes by restarting with backoff, (c) latch
// FailSafe — with conservative warnings still flowing — when a stage
// exhausts its retry budget, and (d) shed load instead of stalling when
// the decide stage is overloaded.

#include "core/monitor.h"

#include <array>
#include <memory>

#include <gtest/gtest.h>

#include "models/slowfast.h"

namespace safecross::core {
namespace {

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

std::unique_ptr<SafeCross> framework_with_daytime_model() {
  auto sc = std::make_unique<SafeCross>(tiny_config());
  sc->set_model(dataset::Weather::Daytime,
                std::make_unique<models::SlowFast>(tiny_config().model));
  return sc;
}

struct Scorecard {
  std::size_t decisions, warnings, correct, missed, false_warn, fail_safe, opportunities;
};

Scorecard run_monitor(SafeCross& sc, const MonitorConfig& cfg, std::size_t frames) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 91);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(sc, sim, cam, cfg, 92);
  monitor.run(frames);
  return {monitor.decisions(),      monitor.warnings(),       monitor.correct(),
          monitor.missed_threats(), monitor.false_warnings(), monitor.fail_safe_decisions(),
          monitor.decision_opportunities()};
}

// Fast restart policy so crash tests spend no real wall-clock on backoff.
runtime::BackoffPolicy fast_backoff(int max_restarts = 5) {
  runtime::BackoffPolicy policy;
  policy.initial_ms = 0.5;
  policy.max_ms = 5.0;
  policy.max_restarts = max_restarts;
  return policy;
}

TEST(PipelineMonitor, MatchesSyncScorecardWithoutFaults) {
  constexpr std::size_t kFrames = 30 * 240;
  auto sc = framework_with_daytime_model();

  MonitorConfig sync_cfg;
  const Scorecard sync = run_monitor(*sc, sync_cfg, kFrames);
  ASSERT_GT(sync.decisions, 0u) << "the run produced no decisions to compare";

  MonitorConfig pipe_cfg;
  pipe_cfg.pipelined = true;

  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 91);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(*sc, sim, cam, pipe_cfg, 92);
  monitor.run(kFrames);

  // Same stream, no faults, no shedding: the staged decomposition must not
  // change what the service decided or how it scored.
  EXPECT_EQ(monitor.frames_shed(), 0u);
  EXPECT_EQ(monitor.decisions_shed(), 0u);
  EXPECT_EQ(monitor.stage_restarts(), 0u);
  EXPECT_EQ(monitor.decisions(), sync.decisions);
  EXPECT_EQ(monitor.warnings(), sync.warnings);
  EXPECT_EQ(monitor.correct(), sync.correct);
  EXPECT_EQ(monitor.missed_threats(), sync.missed);
  EXPECT_EQ(monitor.false_warnings(), sync.false_warn);
  EXPECT_EQ(monitor.fail_safe_decisions(), sync.fail_safe);
  EXPECT_EQ(monitor.decision_opportunities(), sync.opportunities);
  // Pipelined latency spans capture→verdict, so it is measurable.
  EXPECT_GE(monitor.decision_latency_p99(), monitor.decision_latency_p50());
  EXPECT_GT(monitor.decision_latency_p50(), 0.0);
}

TEST(PipelineMonitor, MatchesSyncUnderDriftAndRecalibration) {
  // The recalibration loop runs on the collect stage in pipelined mode;
  // it is frame-clocked, so the staged decomposition must replay the
  // exact same calibration lineage — and the exact same decisions — as
  // the synchronous reference.
  constexpr std::size_t kFrames = 30 * 120;
  auto sc = framework_with_daytime_model();
  runtime::FaultPlan plan;
  plan.geometry.drift_px_per_frame = 0.03;  // 1.8 px per 60-frame check
  plan.geometry.drift_stop_frame = 600;

  struct Outcome {
    std::size_t decisions, warnings, correct, missed, false_warn, fail_safe;
    std::size_t miscal_warns, episodes, recalibrations, checks;
    std::array<double, 9> applied;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [&](bool pipelined) {
    sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 91);
    const sim::CameraModel cam(sim.intersection().geometry());
    runtime::FaultInjector injector(plan, 95);
    MonitorConfig cfg;
    cfg.pipelined = pipelined;
    cfg.recalib.enabled = true;
    cfg.recalib.check_every_frames = 60;
    RealtimeMonitor monitor(*sc, sim, cam, cfg, 92, &injector);
    monitor.run(kFrames);
    const runtime::RecalibrationLoop* loop = monitor.recalibration();
    return Outcome{monitor.decisions(),
                   monitor.warnings(),
                   monitor.correct(),
                   monitor.missed_threats(),
                   monitor.false_warnings(),
                   monitor.fail_safe_decisions(),
                   monitor.fail_safe_by_source(runtime::DecisionSource::FailSafeMiscalibrated),
                   loop->miscalibration_episodes(),
                   loop->recalibrations(),
                   loop->checks_run(),
                   loop->applied_view().matrix()};
  };

  const Outcome sync = run(false);
  EXPECT_GT(sync.recalibrations, 0u) << "drift never triggered a recalibration";
  const Outcome pipelined = run(true);
  EXPECT_TRUE(sync == pipelined) << "pipelined drift run diverged from sync reference";
}

TEST(PipelineMonitor, StageCrashRestartsAndServiceRecovers) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 93);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.pipelined = true;
  cfg.pipeline.backoff = fast_backoff();
  // Two deterministic crashes in the collect stage, early in the run.
  auto& collect = cfg.pipeline.faults[static_cast<int>(runtime::StageId::Collect)];
  collect.crash_items = {100, 200};

  RealtimeMonitor monitor(*sc, sim, cam, cfg, 94);
  monitor.run(30 * 120);  // must not terminate the process

  EXPECT_EQ(monitor.stage_crashes_injected(), 2u);
  EXPECT_EQ(monitor.stage_restarts(), 2u) << "each crash costs exactly one restart";
  EXPECT_EQ(monitor.stages_gave_up(), 0u);
  EXPECT_FALSE(monitor.health().fail_safe_latched());
  EXPECT_GT(monitor.decisions(), 0u);
  EXPECT_GT(monitor.model_decisions(), 0u) << "the service recovered to model verdicts";
  // Both crashes are long past; the healthy streak walked the watchdog
  // back down to Nominal.
  EXPECT_EQ(monitor.health().state(), runtime::HealthState::Nominal);
}

TEST(PipelineMonitor, RetryBudgetExhaustionLatchesFailSafeAndWarnsContinue) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 95);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.pipelined = true;
  cfg.pipeline.backoff = fast_backoff(/*max_restarts=*/3);
  // Four crashes against a budget of three: the collect stage gives up
  // immediately and its degraded fallback carries the rest of the run.
  auto& collect = cfg.pipeline.faults[static_cast<int>(runtime::StageId::Collect)];
  collect.crash_items = {1, 2, 3, 4};

  RealtimeMonitor monitor(*sc, sim, cam, cfg, 96);
  monitor.run(30 * 120);  // must not terminate the process

  EXPECT_EQ(monitor.stages_gave_up(), 1u);
  EXPECT_EQ(monitor.stage_restarts(), 3u);
  EXPECT_TRUE(monitor.health().fail_safe_latched());
  EXPECT_EQ(monitor.health().state(), runtime::HealthState::FailSafe);
  // The warning service kept answering — conservatively, never the model.
  EXPECT_GT(monitor.decisions(), 0u);
  EXPECT_EQ(monitor.model_decisions(), 0u);
  EXPECT_EQ(monitor.fail_safe_decisions(), monitor.decisions());
  EXPECT_GT(monitor.fail_safe_by_source(runtime::DecisionSource::FailSafeStageDown), 0u);
}

TEST(PipelineMonitor, OverloadedDecideStageShedsInsteadOfStalling) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 97);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.pipelined = true;
  // Decide grinds (50 ms per decision) while collect produces decisions
  // far faster; a tiny queue and an aggressive push timeout force the
  // load-shedding path rather than an unbounded stall.
  cfg.pipeline.decision_queue_capacity = 2;
  cfg.pipeline.push_timeout_ms = 1.0;
  auto& decide = cfg.pipeline.faults[static_cast<int>(runtime::StageId::Decide)];
  decide.delay_ms = 50.0;

  RealtimeMonitor monitor(*sc, sim, cam, cfg, 98);
  monitor.run(30 * 120);

  EXPECT_GT(monitor.decisions_shed(), 0u) << "overload must shed, not queue unboundedly";
  EXPECT_GT(monitor.decisions(), 0u) << "shedding must not starve the service entirely";
  EXPECT_EQ(monitor.stage_restarts(), 0u);
}

TEST(PipelineMonitor, PipelinedPolicyOffStillScoresDecisions) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 99);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.pipelined = true;
  cfg.fail_safe_policy = false;  // fail-silent baseline, staged execution

  RealtimeMonitor monitor(*sc, sim, cam, cfg, 100);
  monitor.run(30 * 120);

  EXPECT_GT(monitor.decisions(), 0u);
  EXPECT_EQ(monitor.fail_safe_decisions(), 0u) << "no gates in fail-silent mode";
  EXPECT_EQ(monitor.decisions(),
            monitor.correct() + monitor.missed_threats() + monitor.false_warnings());
}

}  // namespace
}  // namespace safecross::core
