// RealtimeMonitor under injected faults: the fail-safe policy must never
// feed a gapped window to the classifier as if it were contiguous, must
// tally fail-safe decisions separately in the online scorecard, and —
// with the injector disabled — must be bit-identical to the policy-free
// (pre-robustness) behaviour.
//
// The framework under test uses untrained (but deterministically
// initialized) models: the robustness machinery is about *when* the model
// is consulted, not about what it has learned.

#include "core/monitor.h"

#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "models/slowfast.h"

namespace safecross::core {
namespace {

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

std::unique_ptr<SafeCross> framework_with_daytime_model() {
  auto sc = std::make_unique<SafeCross>(tiny_config());
  sc->set_model(dataset::Weather::Daytime,
                std::make_unique<models::SlowFast>(tiny_config().model));
  return sc;
}

using DecisionTrace = std::vector<std::tuple<int, int, float, bool>>;

DecisionTrace run_monitor(SafeCross& sc, bool fail_safe_policy, int frames,
                          std::uint64_t sim_seed, std::uint64_t collector_seed) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), sim_seed);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.fail_safe_policy = fail_safe_policy;
  RealtimeMonitor monitor(sc, sim, cam, cfg, collector_seed);
  DecisionTrace trace;
  for (int i = 0; i < frames; ++i) {
    const auto tick = monitor.step();
    if (tick.decision_made) {
      trace.emplace_back(i, tick.decision.predicted_class, tick.decision.prob_danger,
                         tick.decision.warn);
    }
  }
  return trace;
}

TEST(RuntimeMonitor, FailSafePolicyIsBitIdenticalWithoutFaults) {
  auto sc = framework_with_daytime_model();
  const auto with_policy = run_monitor(*sc, /*fail_safe_policy=*/true, 30 * 240, 71, 72);
  const auto without_policy = run_monitor(*sc, /*fail_safe_policy=*/false, 30 * 240, 71, 72);
  ASSERT_FALSE(with_policy.empty()) << "the run produced no decisions to compare";
  EXPECT_EQ(with_policy, without_policy);
}

TEST(RuntimeMonitor, GappedWindowNeverReachesModel) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 73);
  const sim::CameraModel cam(sim.intersection().geometry());
  runtime::FaultPlan plan;
  plan.drop_prob = 0.30;  // heavy frame loss: most windows carry a gap
  runtime::FaultInjector injector(plan, 74);
  MonitorConfig cfg;  // fail-safe policy on by default
  RealtimeMonitor monitor(*sc, sim, cam, cfg, 75, &injector);
  std::size_t model_decisions = 0, fail_safe = 0;
  for (int i = 0; i < 30 * 120; ++i) {
    const auto tick = monitor.step();
    if (!tick.decision_made) continue;
    if (tick.decision.source == runtime::DecisionSource::Model) {
      ++model_decisions;
      // The invariant under test: a model verdict implies the window the
      // classifier saw was full, gap-free and sufficiently fresh.
      EXPECT_TRUE(monitor.collector().window_contiguous());
      EXPECT_GE(monitor.collector().window().size(), 32u);
    } else {
      ++fail_safe;
      EXPECT_TRUE(tick.decision.warn) << "fail-safe decisions always warn";
      EXPECT_EQ(tick.decision.predicted_class, 0);
    }
  }
  EXPECT_GT(injector.frames_dropped(), 0u);
  EXPECT_GT(fail_safe, 0u) << "30% drops must force some fail-safe decisions";
  EXPECT_EQ(monitor.fail_safe_decisions(), fail_safe);
  EXPECT_EQ(monitor.model_decisions(), model_decisions);
}

TEST(RuntimeMonitor, ScorecardSeparatesFailSafeFromModelDecisions) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 76);
  const sim::CameraModel cam(sim.intersection().geometry());
  runtime::FaultPlan plan;
  plan.drop_prob = 0.10;
  plan.freeze_prob = 0.10;
  plan.noise_prob = 0.05;
  plan.blackout_prob = 0.002;
  runtime::FaultInjector injector(plan, 77);
  RealtimeMonitor monitor(*sc, sim, cam, MonitorConfig{}, 78, &injector);
  for (int i = 0; i < 30 * 180; ++i) monitor.step();

  EXPECT_EQ(monitor.decisions(), monitor.model_decisions() + monitor.fail_safe_decisions());
  EXPECT_EQ(monitor.decisions(),
            monitor.correct() + monitor.missed_threats() + monitor.false_warnings());
  EXPECT_LE(monitor.decisions(), monitor.decision_opportunities());
  // Per-source counts add up to the totals.
  std::size_t by_source_sum = 0;
  for (int s = 0; s < runtime::kDecisionSourceCount; ++s) {
    by_source_sum += monitor.fail_safe_by_source(static_cast<runtime::DecisionSource>(s));
  }
  EXPECT_EQ(by_source_sum, monitor.decisions());
  EXPECT_EQ(monitor.fail_safe_by_source(runtime::DecisionSource::Model),
            monitor.model_decisions());
}

TEST(RuntimeMonitor, SwitchFailureRunsFailSafeWithoutThrowing) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 79);
  const sim::CameraModel cam(sim.intersection().geometry());
  runtime::FaultPlan plan;
  plan.switch_failure_prob = 1.0;  // every swap attempt dies
  runtime::FaultInjector injector(plan, 80);
  MonitorConfig cfg;
  RealtimeMonitor monitor(*sc, sim, cam, cfg, 81, &injector);  // must not throw
  EXPECT_EQ(monitor.health().state(), runtime::HealthState::FailSafe);
  std::size_t decisions = 0;
  for (int i = 0; i < 30 * 240; ++i) {
    const auto tick = monitor.step();
    if (tick.decision_made) {
      ++decisions;
      EXPECT_TRUE(runtime::is_fail_safe(tick.decision.source));
      EXPECT_EQ(tick.decision.source, runtime::DecisionSource::FailSafeSwitchInFlight);
      EXPECT_TRUE(tick.decision.warn);
    }
  }
  EXPECT_GT(decisions, 0u);
  EXPECT_EQ(monitor.model_decisions(), 0u);
  EXPECT_GT(injector.switch_failures(), 0u);
}

TEST(RuntimeMonitor, BlackoutForcesConservativeDecisions) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 82);
  const sim::CameraModel cam(sim.intersection().geometry());
  runtime::FaultPlan plan;
  plan.blackout_prob = 0.01;
  plan.blackout_frames = 60;  // two-second camera blindness
  runtime::FaultInjector injector(plan, 83);
  RealtimeMonitor monitor(*sc, sim, cam, MonitorConfig{}, 84, &injector);
  for (int i = 0; i < 30 * 120; ++i) {
    const auto tick = monitor.step();
    if (tick.decision_made && tick.frame_fault == runtime::FrameFault::Blackout) {
      // Deciding *during* a blackout must never trust the model: the
      // window is mostly zeros regardless of what is on the road.
      EXPECT_TRUE(runtime::is_fail_safe(tick.decision.source))
          << "frame " << i << " decided from a blacked-out window";
    }
  }
  EXPECT_GT(injector.blackout_frames_total(), 0u);
}

TEST(RuntimeMonitor, CameraDriftSelfHealsThroughRecalibration) {
  auto sc = framework_with_daytime_model();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 88);
  const sim::CameraModel cam(sim.intersection().geometry());
  runtime::FaultPlan plan;
  plan.geometry.drift_px_per_frame = 0.04;  // ~1.2 px per 30-frame check
  plan.geometry.drift_stop_frame = 600;     // then the camera holds still
  runtime::FaultInjector injector(plan, 89);
  MonitorConfig cfg;
  cfg.recalib.enabled = true;
  RealtimeMonitor monitor(*sc, sim, cam, cfg, 90, &injector);
  std::size_t miscal_warns = 0, model_after_recovery = 0;
  for (int i = 0; i < 30 * 240; ++i) {
    const auto tick = monitor.step();
    if (!tick.decision_made) continue;
    if (tick.decision.source == runtime::DecisionSource::FailSafeMiscalibrated) {
      ++miscal_warns;
      EXPECT_TRUE(tick.decision.warn) << "miscalibrated decisions must warn";
      EXPECT_EQ(tick.decision.predicted_class, 0);
    } else if (i > 1500 && tick.decision.source == runtime::DecisionSource::Model) {
      ++model_after_recovery;
    }
  }
  const runtime::RecalibrationLoop* loop = monitor.recalibration();
  ASSERT_NE(loop, nullptr);
  EXPECT_GT(loop->miscalibration_episodes(), 0u) << "drift never latched";
  EXPECT_GT(loop->recalibrations(), 0u) << "no solve ever landed";
  EXPECT_GT(miscal_warns, 0u) << "latch never gated a decision";
  EXPECT_GT(model_after_recovery, 0u) << "model never trusted again post-drift";
  EXPECT_EQ(loop->state(), runtime::CalibrationState::Calibrated);
  // The healed calibration tracks the injected perturbation to within the
  // drift threshold — the loop measured, chased and caught the camera.
  EXPECT_LT(runtime::view_drift_px(loop->applied_view(), injector.view_perturbation(),
                                   cam.config().width, cam.config().height),
            cfg.recalib.drift_threshold_px);
}

TEST(RuntimeMonitor, RecalibrationIdleWithoutDriftIsBitIdentical) {
  // With the loop enabled but the camera steady, drift checks run and must
  // all come back below threshold: no latch, no swap, and the decision
  // stream is bit-identical to a monitor without the loop.
  auto sc = framework_with_daytime_model();
  const auto baseline = run_monitor(*sc, /*fail_safe_policy=*/true, 30 * 120, 91, 92);

  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 91);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.recalib.enabled = true;
  RealtimeMonitor monitor(*sc, sim, cam, cfg, 92);
  DecisionTrace trace;
  for (int i = 0; i < 30 * 120; ++i) {
    const auto tick = monitor.step();
    if (tick.decision_made) {
      trace.emplace_back(i, tick.decision.predicted_class, tick.decision.prob_danger,
                         tick.decision.warn);
    }
  }
  const runtime::RecalibrationLoop* loop = monitor.recalibration();
  ASSERT_NE(loop, nullptr);
  EXPECT_GT(loop->checks_run(), 0u);
  EXPECT_EQ(loop->miscalibration_episodes(), 0u);
  EXPECT_EQ(loop->recalibrations(), 0u);
  EXPECT_EQ(trace, baseline);
}

TEST(RuntimeMonitor, UninstallsSwitchHookOnDestruction) {
  auto sc = framework_with_daytime_model();
  runtime::FaultPlan plan;
  plan.switch_failure_prob = 1.0;
  runtime::FaultInjector injector(plan, 85);
  {
    sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 86);
    const sim::CameraModel cam(sim.intersection().geometry());
    RealtimeMonitor monitor(*sc, sim, cam, MonitorConfig{}, 87, &injector);
  }
  // The dangling-hook hazard: after the monitor (and later the injector)
  // die, the framework's switcher must not call back into them.
  const auto status = sc->switcher().try_switch_to("daytime");
  EXPECT_TRUE(status.ok);
}

}  // namespace
}  // namespace safecross::core
