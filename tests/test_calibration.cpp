// CalibrationEstimator + the Hartley-hardened Homography::fit_report.
//
// The estimator's contract: given a textured reference view and a live
// frame rendered through an unknown ideal->perturbed view homography, it
// recovers that homography to sub-pixel corner accuracy — including when
// a fraction of the live frame moved inconsistently (vehicles), which
// RANSAC must reject as outliers.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vision/calibration.h"
#include "vision/homography.h"

namespace safecross::vision {
namespace {

// Mean displacement (px) between two view homographies over the corners
// of a w x h frame — the same metric the recalibration loop thresholds.
double corner_error(const Homography& a, const Homography& b, int w, int h) {
  const Point2 corners[4] = {{0, 0}, {double(w - 1), 0}, {0, double(h - 1)},
                             {double(w - 1), double(h - 1)}};
  double sum = 0.0;
  for (const Point2& c : corners) {
    const Point2 pa = a.apply(c);
    const Point2 pb = b.apply(c);
    sum += std::hypot(pa.x - pb.x, pa.y - pb.y);
  }
  return sum / 4.0;
}

// A corner-rich reference: a grid of random-intensity cells, blurred so
// sub-pixel warps interpolate smoothly (the LK tracker needs gradients,
// not aliasing).
Image textured_reference(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  Image img(w, h);
  const int cell = 12;
  std::vector<float> shades((w / cell + 2) * (h / cell + 2));
  for (float& s : shades) s = 0.15f + 0.7f * static_cast<float>(rng.uniform());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y) = shades[(y / cell) * (w / cell + 2) + (x / cell)];
    }
  }
  return img.box_blur3();
}

Homography small_view(double dx, double dy, double rot, double cx, double cy) {
  const double c = std::cos(rot), s = std::sin(rot);
  return Homography({c, -s, cx + dx - c * cx + s * cy, s, c, cy + dy - s * cx - c * cy,
                     0.0, 0.0, 1.0});
}

TEST(FitReport, RecoversExactHomographyFromCleanPairs) {
  const Homography truth({1.02, 0.01, 3.0, -0.015, 0.99, -2.0, 1e-4, -5e-5, 1.0});
  std::vector<Point2> src, dst;
  for (int y = 0; y <= 4; ++y) {
    for (int x = 0; x <= 4; ++x) {
      Point2 p{x * 50.0, y * 30.0};
      src.push_back(p);
      dst.push_back(truth.apply(p));
    }
  }
  const FitReport report = Homography::fit_report(src, dst);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_LT(report.residual_rms, 1e-8);
  EXPECT_TRUE(std::isfinite(report.condition));
  EXPECT_LT(corner_error(report.homography(), truth, 256, 144), 1e-6);
}

TEST(FitReport, HartleyNormalizationSurvivesFarOffsetCoordinates) {
  // Raw DLT normal equations on coordinates offset by ~1e5 are numerically
  // hopeless (condition ~1e20); the normalized solve must still nail it.
  const Homography truth = small_view(1.5, -0.75, 0.004, 1e5 + 128.0, 1e5 + 72.0);
  std::vector<Point2> src, dst;
  for (int y = 0; y <= 3; ++y) {
    for (int x = 0; x <= 3; ++x) {
      Point2 p{1e5 + x * 40.0, 1e5 + y * 25.0};
      src.push_back(p);
      dst.push_back(truth.apply(p));
    }
  }
  const FitReport report = Homography::fit_report(src, dst);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_LT(report.residual_rms, 1e-5);
}

TEST(FitReport, CollinearPointsReportDegenerateInsteadOfGarbage) {
  std::vector<Point2> src, dst;
  for (int i = 0; i < 8; ++i) {
    src.push_back({i * 10.0, i * 5.0});  // all on one line
    dst.push_back({i * 10.0 + 2.0, i * 5.0 - 1.0});
  }
  const FitReport report = Homography::fit_report(src, dst);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

TEST(FitReport, LegacyFitThrowsOnTooFewPairs) {
  std::vector<Point2> three = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_THROW(Homography::fit(three, three), std::invalid_argument);
}

TEST(CalibrationEstimator, RecoversKnownPerturbation) {
  const int w = 256, h = 144;
  const Image ref = textured_reference(w, h, 7001);
  const Homography truth = small_view(2.2, -1.4, 0.006, (w - 1) / 2.0, (h - 1) / 2.0);
  const Image current = truth.warp(ref, w, h);

  const CalibrationEstimator estimator(ref);
  const CalibrationEstimate est = estimator.estimate(current);
  ASSERT_TRUE(est.ok) << est.error;
  EXPECT_LT(corner_error(est.view, truth, w, h), 0.25);
  EXPECT_GE(est.inliers, estimator.config().min_inliers);
  EXPECT_LE(est.residual_rms, estimator.config().max_residual_rms_px);
}

TEST(CalibrationEstimator, IdentityViewEstimatesNoDrift) {
  const int w = 256, h = 144;
  const Image ref = textured_reference(w, h, 7002);
  const CalibrationEstimator estimator(ref);
  const CalibrationEstimate est = estimator.estimate(ref);
  ASSERT_TRUE(est.ok) << est.error;
  EXPECT_LT(corner_error(est.view, Homography(), w, h), 0.1);
}

TEST(CalibrationEstimator, SeedGuessExtendsTrackingRange) {
  // 9 px of accumulated drift defeats a 7 px LK window from scratch, but
  // the loop always seeds with the last applied estimate; from a guess
  // 1 px away the estimator converges. This is the incremental-tracking
  // property the drift-check cadence relies on.
  const int w = 256, h = 144;
  const Image ref = textured_reference(w, h, 7003);
  const double cx = (w - 1) / 2.0, cy = (h - 1) / 2.0;
  const Homography truth = small_view(9.0, -3.0, 0.0, cx, cy);
  const Image current = truth.warp(ref, w, h);

  const CalibrationEstimator estimator(ref);
  const Homography guess = small_view(8.2, -2.6, 0.0, cx, cy);
  const CalibrationEstimate est = estimator.estimate(current, guess);
  ASSERT_TRUE(est.ok) << est.error;
  EXPECT_LT(corner_error(est.view, truth, w, h), 0.25);
}

TEST(CalibrationEstimator, RansacRejectsForegroundMotion) {
  // Paint moving "vehicles" into the live frame: blocks whose apparent
  // motion disagrees with the global view change. The inlier fit must
  // ignore them and still recover the true perturbation.
  const int w = 256, h = 144;
  const Image ref = textured_reference(w, h, 7004);
  const Homography truth = small_view(1.6, 1.1, -0.004, (w - 1) / 2.0, (h - 1) / 2.0);
  Image current = truth.warp(ref, w, h);
  for (int block = 0; block < 4; ++block) {
    const int bx = 30 + block * 55, by = 40 + (block % 2) * 50;
    for (int y = by; y < by + 16; ++y) {
      for (int x = bx; x < bx + 24; ++x) {
        current.at(x, y) = (x / 4 + y / 4) % 2 == 0 ? 0.9f : 0.05f;
      }
    }
  }
  const CalibrationEstimator estimator(ref);
  const CalibrationEstimate est = estimator.estimate(current);
  ASSERT_TRUE(est.ok) << est.error;
  EXPECT_LT(corner_error(est.view, truth, w, h), 0.35);
}

TEST(CalibrationEstimator, FlatFrameFailsClosed) {
  const int w = 256, h = 144;
  const Image flat(w, h, 0.5f);
  const CalibrationEstimator estimator(flat);
  const CalibrationEstimate est = estimator.estimate(flat);
  EXPECT_FALSE(est.ok);
  EXPECT_FALSE(est.error.empty());
}

TEST(CalibrationEstimator, DeterministicAcrossCalls) {
  const int w = 256, h = 144;
  const Image ref = textured_reference(w, h, 7005);
  const Homography truth = small_view(1.0, 0.8, 0.003, (w - 1) / 2.0, (h - 1) / 2.0);
  const Image current = truth.warp(ref, w, h);
  const CalibrationEstimator estimator(ref);
  const CalibrationEstimate a = estimator.estimate(current);
  const CalibrationEstimate b = estimator.estimate(current);
  ASSERT_TRUE(a.ok && b.ok);
  // The per-call RANSAC rng reseeds from config: bit-identical results.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(a.view.matrix()[i], b.view.matrix()[i]) << "matrix element " << i;
  }
  EXPECT_EQ(a.inliers, b.inliers);
  EXPECT_EQ(a.residual_rms, b.residual_rms);
}

}  // namespace
}  // namespace safecross::vision
