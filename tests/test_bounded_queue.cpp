// BoundedQueue: the hand-off primitive between pipeline stages. The
// contract under test: FIFO order, backpressure with timeout, oldest-first
// load shedding with exact shed accounting, and close() as poisoning —
// producers fail fast, consumers drain and then stop.

#include "runtime/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace safecross::runtime {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kNoWait{0};
constexpr milliseconds kShortWait{5};
constexpr milliseconds kLongWait{2000};  // generous: only hit on test failure

TEST(BoundedQueue, DeliversInFifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i, kNoWait));
  for (int i = 0; i < 4; ++i) {
    const auto item = q.pop(kNoWait);
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q.pop(kNoWait).has_value());
  EXPECT_EQ(q.pushed(), 4u);
  EXPECT_EQ(q.popped(), 4u);
  EXPECT_EQ(q.shed(), 0u);
}

TEST(BoundedQueue, PushTimesOutWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1, kNoWait));
  EXPECT_TRUE(q.push(2, kNoWait));
  EXPECT_FALSE(q.push(3, kShortWait));  // no consumer: must time out
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pushed(), 2u);
}

TEST(BoundedQueue, PushRefLeavesItemIntactOnTimeout) {
  BoundedQueue<std::vector<int>> q(1);
  std::vector<int> first{1, 2, 3};
  EXPECT_TRUE(q.push_ref(first, kNoWait));
  std::vector<int> second{4, 5, 6};
  EXPECT_FALSE(q.push_ref(second, kNoWait));
  // The failed push must not have consumed the caller's item: it can
  // still be shed (or retried) without rebuilding it.
  EXPECT_EQ(second.size(), 3u);
  EXPECT_EQ(q.push_drop_oldest(std::move(second)), 1u);
  const auto item = q.pop(kNoWait);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ((*item)[0], 4);
}

TEST(BoundedQueue, BlockedPushCompletesWhenSpaceFrees) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1, kNoWait));
  std::thread consumer([&] {
    std::this_thread::sleep_for(kShortWait);
    EXPECT_EQ(q.pop(kLongWait).value_or(-1), 1);
  });
  // Backpressure: this push blocks until the consumer frees the slot.
  EXPECT_TRUE(q.push(2, kLongWait));
  consumer.join();
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 2);
}

TEST(BoundedQueue, DropOldestEvictsHeadAndCountsShed) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.push_drop_oldest(1), 0u);
  EXPECT_EQ(q.push_drop_oldest(2), 0u);
  EXPECT_EQ(q.push_drop_oldest(3), 1u);  // evicts 1
  EXPECT_EQ(q.push_drop_oldest(4), 1u);  // evicts 2
  EXPECT_EQ(q.shed(), 2u);
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 3);  // newest data survived
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 4);
}

TEST(BoundedQueue, TryPushSucceedsWhileSpaceAndDelivers) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 1);
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 2);
}

TEST(BoundedQueue, TryPushRefusesWhenFullWithoutShedding) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "full queue must refuse, never block";
  // The refusal is the caller's signal, not data loss: nothing was
  // evicted, nothing counted as shed, the queue is untouched.
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 1);
  EXPECT_TRUE(q.try_push(3)) << "space freed, the retry must land";
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 2);
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 3);
}

TEST(BoundedQueue, TryPushWakesABlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(kShortWait);
    EXPECT_TRUE(q.try_push(42));
  });
  // The consumer blocks first; try_push's notify must wake it well
  // before the long timeout.
  EXPECT_EQ(q.pop(kLongWait).value_or(-1), 42);
  producer.join();
}

TEST(BoundedQueue, CloseWakesProducersAndConsumersDrain) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(7, kNoWait));
  std::thread closer([&] {
    std::this_thread::sleep_for(kShortWait);
    q.close();
  });
  // Full queue + no consumer: only close() can release this producer.
  EXPECT_FALSE(q.push(8, kLongWait));
  closer.join();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.drained()) << "one item is still queued";
  EXPECT_EQ(q.pop(kNoWait).value_or(-1), 7);  // consumers drain after close
  EXPECT_TRUE(q.drained());
  EXPECT_FALSE(q.pop(kNoWait).has_value());
}

TEST(BoundedQueue, PushAfterCloseFailsAndCountsAsShed) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1, kNoWait));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.push_drop_oldest(3), 1u) << "refused-while-closed counts as shed";
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PopWakesOnCloseInsteadOfFullTimeout) {
  BoundedQueue<int> q(1);
  std::thread closer([&] {
    std::this_thread::sleep_for(kShortWait);
    q.close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop(kLongWait).has_value());
  const auto waited = std::chrono::steady_clock::now() - start;
  closer.join();
  EXPECT_LT(waited, kLongWait) << "close() must wake a blocked consumer";
}

TEST(BoundedQueue, HighWaterTracksPeakDepth) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i, kNoWait));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.pop(kNoWait).has_value());
  EXPECT_TRUE(q.push(9, kNoWait));
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Pure backpressure (no shedding): every item must arrive.
        while (!q.push(p * kPerProducer + i, kShortWait)) {
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const auto item = q.pop(kShortWait);
        if (item.has_value()) {
          sum.fetch_add(*item);
          consumed.fetch_add(1);
        } else if (q.drained()) {
          return;
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
  EXPECT_EQ(q.pushed(), static_cast<std::size_t>(total));
  EXPECT_EQ(q.popped(), static_cast<std::size_t>(total));
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_LE(q.high_water(), q.capacity());
}

}  // namespace
}  // namespace safecross::runtime
