#include "nn/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/init.h"
#include "nn/linear.h"

namespace safecross::nn {
namespace {

TEST(Serialize, RoundTripPreservesValues) {
  Linear a(4, 3), b(4, 3);
  Rng rng(70);
  init_params(a.params(), rng);
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  for (std::size_t p = 0; p < a.params().size(); ++p) {
    for (std::size_t i = 0; i < a.params()[p]->value.numel(); ++i) {
      EXPECT_FLOAT_EQ(b.params()[p]->value[i], a.params()[p]->value[i]);
    }
  }
}

TEST(Serialize, SerializedSizeMatchesStream) {
  Linear a(6, 2);
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_EQ(ss.str().size(), serialized_size(a.params()));
}

TEST(Serialize, RejectsBadMagic) {
  Linear a(2, 2);
  std::stringstream ss;
  ss.write("nope", 4);
  EXPECT_THROW(load_params(ss, a.params()), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  Linear a(4, 3), wrong(3, 4);
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_THROW(load_params(ss, wrong.params()), std::runtime_error);
}

TEST(Serialize, RejectsCountMismatch) {
  Linear a(4, 3);
  Linear no_bias(4, 3, /*bias=*/false);
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_THROW(load_params(ss, no_bias.params()), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Linear a(4, 3), b(4, 3);
  std::stringstream ss;
  save_params(ss, a.params());
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_params(truncated, b.params()), std::runtime_error);
}

TEST(Serialize, GradientsUntouchedByRoundTrip) {
  Linear a(2, 2), b(2, 2);
  b.params()[0]->grad.fill(9.0f);
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  EXPECT_FLOAT_EQ(b.params()[0]->grad[0], 9.0f);
}

}  // namespace
}  // namespace safecross::nn
