#include "sim/traffic.h"

#include <gtest/gtest.h>

namespace safecross::sim {
namespace {

TrafficSimulator make_sim(Weather w = Weather::Daytime, std::uint64_t seed = 7) {
  return TrafficSimulator(weather_params(w), seed);
}

void run_seconds(TrafficSimulator& sim, double seconds) {
  const int steps = static_cast<int>(seconds / sim.config().dt);
  for (int i = 0; i < steps; ++i) sim.step();
}

TEST(Traffic, TimeAdvancesByDt) {
  TrafficSimulator sim = make_sim();
  sim.step();
  EXPECT_NEAR(sim.time(), 1.0 / 30.0, 1e-9);
}

TEST(Traffic, VehiclesSpawnAndFlow) {
  TrafficSimulator sim = make_sim();
  run_seconds(sim, 60);
  EXPECT_FALSE(sim.vehicles().empty());
}

TEST(Traffic, VehiclesAreRemovedAfterLeaving) {
  TrafficSimulator sim = make_sim();
  run_seconds(sim, 600);
  // If removal failed, 10 minutes of arrivals (~100+) would accumulate.
  EXPECT_LT(sim.vehicles().size(), 60u);
}

TEST(Traffic, LeftTurnsComplete) {
  TrafficSimulator sim = make_sim();
  run_seconds(sim, 600);
  EXPECT_GT(sim.completed_turns(), 5u);
}

TEST(Traffic, DeterministicForSameSeed) {
  TrafficSimulator a = make_sim(Weather::Daytime, 99);
  TrafficSimulator b = make_sim(Weather::Daytime, 99);
  run_seconds(a, 120);
  run_seconds(b, 120);
  ASSERT_EQ(a.vehicles().size(), b.vehicles().size());
  EXPECT_EQ(a.completed_turns(), b.completed_turns());
  for (std::size_t i = 0; i < a.vehicles().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vehicles()[i].s, b.vehicles()[i].s);
  }
}

TEST(Traffic, DifferentSeedsDiverge) {
  TrafficSimulator a = make_sim(Weather::Daytime, 1);
  TrafficSimulator b = make_sim(Weather::Daytime, 2);
  run_seconds(a, 300);
  run_seconds(b, 300);
  EXPECT_NE(a.completed_turns(), b.completed_turns());
}

TEST(Traffic, NoVehicleExceedsSpeedCap) {
  TrafficSimulator sim = make_sim();
  for (int i = 0; i < 3000; ++i) {
    sim.step();
    for (const Vehicle& v : sim.vehicles()) {
      EXPECT_LE(v.speed, v.free_speed * 1.05 + 1e-9);
      EXPECT_GE(v.speed, 0.0);
    }
  }
}

TEST(Traffic, NoRearEndOverlapsOnThroughLane) {
  TrafficSimulator sim = make_sim();
  for (int i = 0; i < 6000; ++i) {
    sim.step();
    // Check vehicle ordering on the through route: follower front must
    // stay behind leader rear (small tolerance for the contact case).
    std::vector<const Vehicle*> lane;
    for (const Vehicle& v : sim.vehicles()) {
      if (v.route == RouteId::WestboundThrough) lane.push_back(&v);
    }
    std::sort(lane.begin(), lane.end(),
              [](const Vehicle* a, const Vehicle* b) { return a->s > b->s; });
    for (std::size_t k = 1; k < lane.size(); ++k) {
      EXPECT_LE(lane[k]->s, lane[k - 1]->rear_s() + 1.0)
          << "rear-end overlap at t=" << sim.time();
    }
  }
}

TEST(Traffic, SubjectsHoldAtStopLineWhileThreatened) {
  TrafficSimulator sim = make_sim();
  bool saw_holding = false;
  for (int i = 0; i < 30000 && !saw_holding; ++i) {
    sim.step();
    const Vehicle* s = sim.subject();
    if (s != nullptr && s->state == DriverState::HoldingAtStop) {
      saw_holding = true;
      // While holding, the subject is essentially stopped at the line.
      EXPECT_LT(s->speed, 0.1);
      const double stop = sim.intersection().stop_line_s(RouteId::EastboundLeft);
      EXPECT_NEAR(s->s, stop, 1.5);
    }
  }
  EXPECT_TRUE(saw_holding);
}

TEST(Traffic, BlindAreaAppearsEventually) {
  TrafficSimulator sim = make_sim();
  bool saw_blind = false;
  for (int i = 0; i < 40000 && !saw_blind; ++i) {
    sim.step();
    saw_blind = sim.blind_area_present();
  }
  EXPECT_TRUE(saw_blind);
}

TEST(Traffic, DangerTruthConsistentWithThreatGap) {
  TrafficSimulator sim = make_sim();
  run_seconds(sim, 60);
  for (int i = 0; i < 2000; ++i) {
    sim.step();
    const double gap = sim.nearest_threat_gap_s();
    const bool danger = sim.dangerous_to_turn();
    EXPECT_EQ(danger, gap < sim.config().critical_gap_s + sim.weather().gap_margin_s);
  }
}

TEST(Traffic, KeyframeFiresOncePerTurn) {
  TrafficSimulator sim = make_sim();
  std::uint64_t keyframes = 0;
  for (int i = 0; i < 30000; ++i) {
    sim.step();
    keyframes += sim.turn_keyframes().size();
  }
  EXPECT_EQ(keyframes, sim.completed_turns());
}

TEST(Traffic, SnowSlowsTraffic) {
  TrafficSimulator day = make_sim(Weather::Daytime, 5);
  TrafficSimulator snow = make_sim(Weather::Snow, 5);
  run_seconds(day, 120);
  run_seconds(snow, 120);
  double day_max = 0.0, snow_max = 0.0;
  for (const Vehicle& v : day.vehicles()) day_max = std::max(day_max, v.free_speed);
  for (const Vehicle& v : snow.vehicles()) snow_max = std::max(snow_max, v.free_speed);
  if (day_max > 0 && snow_max > 0) {
    EXPECT_LT(snow_max, day_max);
  }
}

TEST(Traffic, ConflictPointOnOncomingLane) {
  TrafficSimulator sim = make_sim();
  const auto& g = sim.intersection().geometry();
  EXPECT_GT(sim.conflict_x(), g.center_x);
  EXPECT_LT(sim.conflict_x(), g.wb_stop_x());
}

}  // namespace
}  // namespace safecross::sim
