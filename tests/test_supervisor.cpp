// Supervisor + backoff machinery: a crashing stage restarts with capped
// exponential backoff; exhausting the retry budget fires the give-up hook
// and runs the degraded fallback; on_exit always runs so downstream
// queues get poisoned whatever path the stage dies on.

#include "runtime/supervisor.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace safecross::runtime {
namespace {

TEST(Backoff, DelayGrowsExponentiallyAndCaps) {
  BackoffPolicy policy;
  policy.initial_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_ms = 45.0;
  policy.jitter_frac = 0.0;  // deterministic
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 1, rng), 10.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 2, rng), 20.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 3, rng), 40.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 4, rng), 45.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 9, rng), 45.0);
}

TEST(Backoff, JitterStaysWithinFraction) {
  BackoffPolicy policy;
  policy.initial_ms = 100.0;
  policy.max_ms = 100.0;
  policy.jitter_frac = 0.2;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double delay = backoff_delay_ms(policy, 1, rng);
    EXPECT_GE(delay, 80.0);
    EXPECT_LE(delay, 120.0);
  }
}

TEST(Backoff, RetrySucceedsAfterTransientFailures) {
  BackoffPolicy policy;
  policy.max_restarts = 5;
  int calls = 0;
  std::vector<double> sleeps;
  const auto result = retry_with_backoff(
      policy, 42, [&] { return ++calls >= 3; },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u) << "one sleep between each pair of attempts";
}

TEST(Backoff, RetryExhaustsBudgetAndReportsAttempts) {
  BackoffPolicy policy;
  policy.max_restarts = 3;
  int calls = 0;
  const auto result = retry_with_backoff(
      policy, 42, [&] { ++calls; return false; }, [](double) {});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 1 + policy.max_restarts);
  EXPECT_EQ(calls, 1 + policy.max_restarts);
}

BackoffPolicy fast_policy(int max_restarts = 5) {
  BackoffPolicy policy;
  policy.initial_ms = 0.1;  // keep test wall-clock negligible
  policy.max_ms = 1.0;
  policy.max_restarts = max_restarts;
  return policy;
}

TEST(Supervisor, CleanStageRunsOnceAndJoins) {
  Supervisor sup(fast_policy());
  std::atomic<int> runs{0};
  std::atomic<bool> exited{false};
  sup.add_stage("clean", [&] { runs.fetch_add(1); }, nullptr,
                [&] { exited.store(true); });
  sup.start();
  sup.join();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_TRUE(exited.load());
  EXPECT_EQ(sup.total_restarts(), 0u);
  EXPECT_EQ(sup.stages_gave_up(), 0u);
}

TEST(Supervisor, CrashingStageRestartsUntilItSucceeds) {
  Supervisor sup(fast_policy());
  std::atomic<int> runs{0};
  sup.add_stage("flaky", [&] {
    if (runs.fetch_add(1) < 3) throw std::runtime_error("transient");
  });
  sup.start();
  sup.join();
  EXPECT_EQ(runs.load(), 4) << "three crashes, then the clean run";
  EXPECT_EQ(sup.restarts(0), 3u);
  EXPECT_FALSE(sup.gave_up(0));
}

TEST(Supervisor, ExhaustedBudgetFiresHookAndFallbackAndOnExit) {
  Supervisor sup(fast_policy(/*max_restarts=*/2));
  std::atomic<int> runs{0};
  std::atomic<bool> fallback_ran{false};
  std::atomic<bool> exited{false};
  std::string gave_up_stage;
  sup.set_give_up_hook([&](const std::string& name) { gave_up_stage = name; });
  sup.add_stage(
      "doomed", [&] { runs.fetch_add(1); throw std::runtime_error("always"); },
      [&] { fallback_ran.store(true); }, [&] { exited.store(true); });
  sup.start();
  sup.join();
  EXPECT_EQ(runs.load(), 3) << "first run + max_restarts retries";
  EXPECT_EQ(sup.restarts(0), 2u);
  EXPECT_TRUE(sup.gave_up(0));
  EXPECT_EQ(sup.stages_gave_up(), 1u);
  EXPECT_EQ(gave_up_stage, "doomed");
  EXPECT_TRUE(fallback_ran.load());
  EXPECT_TRUE(exited.load());
}

TEST(Supervisor, FallbackCrashIsContainedAndOnExitStillRuns) {
  Supervisor sup(fast_policy(/*max_restarts=*/0));
  std::atomic<bool> exited{false};
  sup.add_stage(
      "hopeless", [] { throw std::runtime_error("body"); },
      [] { throw std::runtime_error("fallback too"); }, [&] { exited.store(true); });
  sup.start();
  sup.join();  // must not terminate the process
  EXPECT_TRUE(sup.gave_up(0));
  EXPECT_TRUE(exited.load());
}

TEST(Supervisor, StopInterruptsBackoffSleepQuickly) {
  BackoffPolicy policy;
  policy.initial_ms = 60'000.0;  // would hang the test if the sleep were real
  policy.max_ms = 60'000.0;
  policy.max_restarts = 5;
  Supervisor sup(policy);
  std::atomic<bool> crashed{false};
  sup.add_stage("sleeper", [&] {
    crashed.store(true);
    throw std::runtime_error("crash into a huge backoff");
  });
  sup.start();
  while (!crashed.load()) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  sup.stop_and_join();
  const auto took = std::chrono::steady_clock::now() - start;
  EXPECT_LT(took, std::chrono::seconds(10)) << "stop must cut the backoff sleep short";
}

TEST(Supervisor, RunsStagesConcurrently) {
  // A two-stage ping-pong can only finish if both stages are live at once.
  Supervisor sup(fast_policy());
  std::atomic<int> turn{0};
  sup.add_stage("ping", [&] {
    for (int i = 0; i < 50; ++i) {
      while (turn.load() != 0) std::this_thread::yield();
      turn.store(1);
    }
  });
  sup.add_stage("pong", [&] {
    for (int i = 0; i < 50; ++i) {
      while (turn.load() != 1) std::this_thread::yield();
      turn.store(0);
    }
  });
  sup.start();
  sup.join();
  EXPECT_EQ(sup.total_restarts(), 0u);
}

TEST(Supervisor, ScorecardNamesStages) {
  Supervisor sup(fast_policy());
  sup.add_stage("alpha", [] {});
  sup.add_stage("beta", [] {});
  ASSERT_EQ(sup.stage_count(), 2u);
  EXPECT_EQ(sup.stage_name(0), "alpha");
  EXPECT_EQ(sup.stage_name(1), "beta");
  sup.start();
  sup.join();
}

}  // namespace
}  // namespace safecross::runtime
