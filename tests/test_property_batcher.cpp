// MicroBatcher properties, driven with a fake clock (the batcher is
// deliberately clock-agnostic, so deadline behaviour is testable without
// sleeping):
//   * a batch never mixes weathers and never exceeds max_batch;
//   * conservation — every staged window lands in exactly one batch;
//   * FIFO within a weather group;
//   * no starvation — with the caller polling, every window is fired no
//     later than its deadline plus one poll quantum;
//   * a full group fires immediately, without waiting for the deadline.

#include "serving/micro_batcher.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace safecross::serving {
namespace {

using Clock = MicroBatcher::Clock;

Clock::time_point fake_time(double ms) {
  return Clock::time_point{} + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(ms));
}

ReadyWindow make_window(std::size_t id, Weather weather, std::uint32_t epoch = 0,
                        Clock::time_point captured = Clock::time_point{}) {
  ReadyWindow w;
  w.seq = id;  // unique id for conservation tracking
  w.model_weather = weather;
  w.epoch = epoch;
  w.captured = captured;
  return w;
}

constexpr Weather kWeathers[] = {Weather::Daytime, Weather::Rain, Weather::Snow,
                                 Weather::Night, Weather::Fog};

struct Fired {
  Batch batch;
  double at_ms = 0.0;
};

/// Random arrival schedule, polled at a fixed quantum; returns every
/// batch fired (including the end-of-run flush).
std::vector<Fired> drive(MicroBatcher& batcher, Rng& rng, std::size_t windows,
                         double horizon_ms, double poll_ms,
                         std::map<std::size_t, double>* staged_at = nullptr) {
  std::vector<Fired> fired;
  std::size_t next_id = 0;
  double clock_ms = 0.0;
  while (clock_ms <= horizon_ms || next_id < windows) {
    if (next_id < windows && rng.bernoulli(0.4)) {
      const Weather w = kWeathers[rng.uniform_int(std::uint64_t{5})];
      if (staged_at != nullptr) (*staged_at)[next_id] = clock_ms;
      batcher.stage(make_window(next_id++, w), fake_time(clock_ms));
    }
    while (auto batch = batcher.next_due(fake_time(clock_ms))) {
      fired.push_back({std::move(*batch), clock_ms});
    }
    clock_ms += poll_ms;
  }
  while (auto batch = batcher.flush()) fired.push_back({std::move(*batch), clock_ms});
  return fired;
}

TEST(MicroBatcherProperty, BatchesNeverMixWeathersOrExceedMaxBatch) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 1 + rng.uniform_int(std::uint64_t{8});
    cfg.max_batch_delay_ms = rng.uniform(0.5, 10.0);
    MicroBatcher batcher(cfg);
    const auto fired = drive(batcher, rng, 200, 400.0, 1.0);
    for (const Fired& f : fired) {
      ASSERT_FALSE(f.batch.items.empty());
      ASSERT_LE(f.batch.items.size(), cfg.max_batch) << "seed " << seed;
      for (const ReadyWindow& w : f.batch.items) {
        ASSERT_EQ(w.model_weather, f.batch.weather)
            << "seed " << seed << ": a batch straddled a model switch";
      }
    }
  }
}

TEST(MicroBatcherProperty, EveryStagedWindowFiresExactlyOnce) {
  for (std::uint64_t seed = 21; seed <= 40; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 1 + rng.uniform_int(std::uint64_t{6});
    cfg.max_batch_delay_ms = rng.uniform(0.5, 8.0);
    MicroBatcher batcher(cfg);
    constexpr std::size_t kWindows = 150;
    const auto fired = drive(batcher, rng, kWindows, 300.0, 1.0);
    EXPECT_TRUE(batcher.empty());
    std::set<std::size_t> seen;
    for (const Fired& f : fired) {
      for (const ReadyWindow& w : f.batch.items) {
        EXPECT_TRUE(seen.insert(w.seq).second)
            << "seed " << seed << ": window " << w.seq << " fired twice";
      }
    }
    EXPECT_EQ(seen.size(), kWindows) << "seed " << seed << ": windows lost";
  }
}

TEST(MicroBatcherProperty, FifoWithinEachWeatherGroup) {
  for (std::uint64_t seed = 41; seed <= 50; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 1 + rng.uniform_int(std::uint64_t{5});
    cfg.max_batch_delay_ms = rng.uniform(0.5, 6.0);
    MicroBatcher batcher(cfg);
    const auto fired = drive(batcher, rng, 120, 250.0, 1.0);
    std::map<Weather, std::size_t> last_id;
    for (const Fired& f : fired) {
      for (const ReadyWindow& w : f.batch.items) {
        auto it = last_id.find(w.model_weather);
        if (it != last_id.end()) {
          EXPECT_GT(w.seq, it->second) << "seed " << seed << ": group reordered";
        }
        last_id[w.model_weather] = w.seq;
      }
    }
  }
}

TEST(MicroBatcherProperty, NoWindowWaitsPastDeadlinePlusPollQuantum) {
  for (std::uint64_t seed = 51; seed <= 65; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 4;
    cfg.max_batch_delay_ms = rng.uniform(1.0, 8.0);
    MicroBatcher batcher(cfg);
    constexpr double kPollMs = 1.0;
    std::map<std::size_t, double> staged_at;
    // Finish staging well before the horizon so no window rides out on
    // the flush (the flush models end-of-run, not steady state).
    const auto fired = drive(batcher, rng, 100, 300.0, kPollMs, &staged_at);
    for (const Fired& f : fired) {
      for (const ReadyWindow& w : f.batch.items) {
        const double waited = f.at_ms - staged_at.at(w.seq);
        EXPECT_LE(waited, cfg.max_batch_delay_ms + kPollMs)
            << "seed " << seed << ": window " << w.seq << " starved";
      }
    }
  }
}

TEST(MicroBatcherProperty, FullGroupFiresImmediately) {
  BatcherConfig cfg;
  cfg.max_batch = 3;
  cfg.max_batch_delay_ms = 100.0;  // far away: only fullness can fire
  MicroBatcher batcher(cfg);
  const auto now = fake_time(0.0);
  batcher.stage(make_window(0, Weather::Rain), now);
  batcher.stage(make_window(1, Weather::Rain), now);
  EXPECT_FALSE(batcher.next_due(now).has_value()) << "fired before full and before deadline";
  batcher.stage(make_window(2, Weather::Rain), now);
  auto batch = batcher.next_due(now);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 3u);
  EXPECT_FALSE(batch->fired_by_deadline);
  EXPECT_TRUE(batcher.empty());
}

TEST(MicroBatcherProperty, DeadlineFiresPartialGroup) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_batch_delay_ms = 5.0;
  MicroBatcher batcher(cfg);
  batcher.stage(make_window(0, Weather::Fog), fake_time(0.0));
  batcher.stage(make_window(1, Weather::Fog), fake_time(2.0));
  EXPECT_FALSE(batcher.next_due(fake_time(4.9)).has_value());
  EXPECT_NEAR(batcher.ms_until_deadline(fake_time(4.0)), 1.0, 1e-9);
  auto batch = batcher.next_due(fake_time(5.0));
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->fired_by_deadline);
  EXPECT_EQ(batch->items.size(), 2u) << "the whole waiting group rides the deadline batch";
  EXPECT_NEAR(batch->max_wait_ms, 5.0, 1e-9);
}

// Regression: the deadline anchors at the oldest window's CAPTURE time,
// not its arrival at the batcher. A consumer stalled 50 ms (a blocking
// model load, a snapshot barrier) must not grant every queued window a
// fresh deadline budget on top of the wait it already served — that
// drift compounds across switches.
TEST(MicroBatcherProperty, DeadlineAnchorsAtCaptureTimeNotArrival) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_batch_delay_ms = 5.0;
  MicroBatcher batcher(cfg);
  // Captured at t=1, but the consumer only drains its queue at t=51.
  batcher.stage(make_window(0, Weather::Rain, 0, fake_time(1.0)), fake_time(51.0));
  auto batch = batcher.next_due(fake_time(51.0));
  ASSERT_TRUE(batch.has_value()) << "deadline drifted: budget restarted at arrival";
  EXPECT_TRUE(batch->fired_by_deadline);
  EXPECT_NEAR(batch->max_wait_ms, 50.0, 1e-9)
      << "the wait already served in the queue must count against the budget";

  // A window with no capture stamp (fake-clock harnesses, fail-safe
  // replays) keeps the old arrival anchor.
  batcher.stage(make_window(1, Weather::Rain), fake_time(10.0));
  EXPECT_FALSE(batcher.next_due(fake_time(14.9)).has_value());
  auto fallback = batcher.next_due(fake_time(15.0));
  ASSERT_TRUE(fallback.has_value());
  EXPECT_TRUE(fallback->fired_by_deadline);
}

// A stalled consumer must not let deadline drift accumulate: windows
// captured at a steady cadence but drained in one burst all fire the
// moment the consumer looks, each reporting its true capture→fire wait.
TEST(MicroBatcherProperty, StalledConsumerDoesNotAccumulateDeadlineDrift) {
  for (std::uint64_t seed = 66; seed <= 75; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 64;  // only deadlines fire
    cfg.max_batch_delay_ms = rng.uniform(1.0, 6.0);
    MicroBatcher batcher(cfg);
    const double stall_ms = 40.0 + rng.uniform(0.0, 40.0);
    constexpr std::size_t kWindows = 16;
    for (std::size_t i = 0; i < kWindows; ++i) {
      // Captured 1 ms apart while the consumer was stalled (t=0 is the
      // "unstamped" sentinel, so stamps start at 1).
      batcher.stage(make_window(i, Weather::Snow, 0, fake_time(1.0 + double(i))),
                    fake_time(stall_ms));
    }
    std::size_t seen = 0;
    while (auto batch = batcher.next_due(fake_time(stall_ms))) {
      EXPECT_TRUE(batch->fired_by_deadline);
      EXPECT_GE(batch->max_wait_ms, stall_ms - double(kWindows))
          << "seed " << seed << ": drift hid the wait served before arrival";
      seen += batch->items.size();
    }
    EXPECT_EQ(seen, kWindows) << "seed " << seed << ": all overdue windows fire at once";
  }
}

// Batches never straddle a switch epoch, even A→B→A: same-weather
// windows from different epochs must not co-batch (they may be judged
// under different cache residencies).
TEST(MicroBatcherProperty, BatchesNeverMixSwitchEpochs) {
  for (std::uint64_t seed = 76; seed <= 90; ++seed) {
    Rng rng(seed);
    BatcherConfig cfg;
    cfg.max_batch = 1 + rng.uniform_int(std::uint64_t{6});
    cfg.max_batch_delay_ms = rng.uniform(0.5, 6.0);
    MicroBatcher batcher(cfg);
    std::vector<Batch> fired;
    double clock_ms = 0.0;
    std::uint32_t epoch = 0;
    for (std::size_t id = 0; id < 150; ++id) {
      if (rng.bernoulli(0.15)) ++epoch;  // a switch storm in miniature
      const Weather w = kWeathers[rng.uniform_int(std::uint64_t{3})];
      batcher.stage(make_window(id, w, epoch), fake_time(clock_ms));
      while (auto batch = batcher.next_due(fake_time(clock_ms))) {
        fired.push_back(std::move(*batch));
      }
      clock_ms += rng.uniform(0.0, 2.0);
    }
    while (auto batch = batcher.flush()) fired.push_back(std::move(*batch));
    std::size_t total = 0;
    for (const Batch& b : fired) {
      total += b.items.size();
      for (const ReadyWindow& w : b.items) {
        ASSERT_EQ(w.model_weather, b.weather) << "seed " << seed;
        ASSERT_EQ(w.epoch, b.epoch)
            << "seed " << seed << ": a batch straddled a switch epoch";
      }
    }
    EXPECT_EQ(total, 150u) << "seed " << seed;
  }
}

// The servability gate: next_due holds back groups whose weather the
// predicate rejects (their model is still loading) without starving the
// servable ones; flush ignores the gate (conservation at end-of-run).
TEST(MicroBatcherProperty, UnservableGroupsAreHeldBackNotDropped) {
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_batch_delay_ms = 2.0;
  MicroBatcher batcher(cfg);
  bool rain_resident = false;
  batcher.set_servable([&](Weather w) { return w != Weather::Rain || rain_resident; });

  batcher.stage(make_window(0, Weather::Rain), fake_time(0.0));
  batcher.stage(make_window(1, Weather::Daytime), fake_time(0.0));
  EXPECT_EQ(batcher.staged_for(Weather::Rain), 1u);

  // Far past every deadline: only the servable group fires.
  auto first = batcher.next_due(fake_time(10.0));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->weather, Weather::Daytime);
  EXPECT_FALSE(batcher.next_due(fake_time(10.0)).has_value())
      << "an unservable group fired while its model was still loading";
  EXPECT_FALSE(batcher.empty()) << "held back, not dropped";

  // The load commits: the held group fires with its full served wait.
  rain_resident = true;
  auto second = batcher.next_due(fake_time(12.0));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->weather, Weather::Rain);
  EXPECT_NEAR(second->max_wait_ms, 12.0, 1e-9);
  EXPECT_TRUE(batcher.empty());

  // flush() drains even unservable groups — end-of-run conservation.
  rain_resident = false;
  batcher.stage(make_window(2, Weather::Rain), fake_time(20.0));
  auto flushed = batcher.flush();
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->weather, Weather::Rain);
  EXPECT_TRUE(batcher.empty());
}

}  // namespace
}  // namespace safecross::serving
