// Tiled SGEMM vs a naive reference, across transpose modes, alpha/beta
// combinations, and shapes straddling the tile boundaries (the kernel
// blocks C into up-to-64x256 tiles and walks k in 256-wide slabs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "gradcheck.h"
#include "nn/gemm.h"

namespace safecross::nn {
namespace {

// op(A) is m x k, op(B) is k x n, all matrices row-major and dense
// (lda == columns of the stored matrix).
std::vector<float> reference_gemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
                                  const std::vector<float>& a, const std::vector<float>& b,
                                  float beta, std::vector<float> c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = trans_a == Trans::kNo ? a[i * k + kk] : a[kk * m + i];
        const float bv = trans_b == Trans::kNo ? b[kk * n + j] : b[j * k + kk];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
  return c;
}

std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed) {
  safecross::Rng rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void expect_sgemm_matches(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
                          float beta, std::uint64_t seed) {
  const int a_rows = trans_a == Trans::kNo ? m : k;
  const int a_cols = trans_a == Trans::kNo ? k : m;
  const int b_rows = trans_b == Trans::kNo ? k : n;
  const int b_cols = trans_b == Trans::kNo ? n : k;
  const auto a = random_matrix(a_rows, a_cols, seed);
  const auto b = random_matrix(b_rows, b_cols, seed ^ 0xB00Bu);
  auto c = random_matrix(m, n, seed ^ 0xCAFEu);
  const auto want = reference_gemm(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);

  sgemm(trans_a, trans_b, m, n, k, alpha, a.data(), a_cols, b.data(), b_cols, beta, c.data(), n);

  // k multiplications of values in [-1, 1]; scale the tolerance with k.
  const float tol = 1e-5f * static_cast<float>(std::max(k, 1));
  for (int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c[i], want[i], tol) << "trans_a=" << static_cast<int>(trans_a)
                                    << " trans_b=" << static_cast<int>(trans_b) << " m=" << m
                                    << " n=" << n << " k=" << k << " at " << i;
  }
}

TEST(SGemm, TinyShapes) {
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 1, 1, 1, 1.0f, 0.0f, 1);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 3, 5, 7, 1.0f, 0.0f, 2);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 7, 3, 5, 1.0f, 0.0f, 3);
}

TEST(SGemm, TileBoundaryShapes) {
  // The kernel tiles C in up-to-64-row x 256-column blocks and walks k in
  // 256-wide slabs; probe one-below / exact / one-above each boundary.
  for (const int m : {63, 64, 65}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, m, 19, 11, 1.0f, 0.0f, 10 + m);
  }
  for (const int n : {255, 256, 257}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, 5, n, 9, 1.0f, 0.0f, 20 + n);
  }
  for (const int k : {255, 256, 257}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, 4, 6, k, 1.0f, 0.0f, 30 + k);
  }
}

TEST(SGemm, TransposedA) {
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 3, 5, 7, 1.0f, 0.0f, 40);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 65, 17, 13, 1.0f, 0.0f, 41);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 8, 100, 257, 1.0f, 0.0f, 42);
}

TEST(SGemm, TransposedB) {
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 3, 5, 7, 1.0f, 0.0f, 50);
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 17, 65, 13, 1.0f, 0.0f, 51);
  // k straddling the 16-lane dot-product unroll.
  for (const int k : {15, 16, 17, 31, 33}) {
    expect_sgemm_matches(Trans::kNo, Trans::kTrans, 4, 6, k, 1.0f, 0.0f, 52 + k);
  }
}

TEST(SGemm, TransposedBoth) {
  expect_sgemm_matches(Trans::kTrans, Trans::kTrans, 3, 5, 7, 1.0f, 0.0f, 60);
  expect_sgemm_matches(Trans::kTrans, Trans::kTrans, 65, 9, 17, 1.0f, 0.0f, 61);
}

TEST(SGemm, AlphaBeta) {
  // beta=1 accumulates (the weight-gradient path), alpha scales.
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 6, 7, 8, 1.0f, 1.0f, 70);
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 6, 7, 8, 0.5f, 1.0f, 71);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 6, 7, 8, 2.0f, -1.0f, 72);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 6, 7, 8, 0.0f, 2.0f, 73);
}

TEST(SGemm, DegenerateK) {
  // k == 0: C <- beta * C regardless of transpose flags.
  auto c = random_matrix(4, 5, 80);
  const auto orig = c;
  sgemm(Trans::kNo, Trans::kNo, 4, 5, 0, 1.0f, nullptr, 1, nullptr, 5, 0.5f, c.data(), 5);
  for (int i = 0; i < 20; ++i) EXPECT_FLOAT_EQ(c[i], 0.5f * orig[i]);
}

TEST(SGemm, ConvShapedProblem) {
  // The shape conv3d lowers to on SlowFast-sized inputs (scaled down for
  // test time): c_out x (c_in * kt * ks * ks) times that x (ot * oh * ow).
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 8, 14 * 14 * 4, 4 * 3 * 3 * 3, 1.0f, 0.0f, 90);
}

}  // namespace
}  // namespace safecross::nn
