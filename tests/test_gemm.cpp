// Tiled SGEMM vs a naive reference, across kernels (micro / scalar /
// fp16), transpose modes, alpha/beta combinations, strided leading
// dimensions, and shapes straddling the tile and microkernel boundaries
// (6x16 register block, 96x512 macro-tiles, 256-wide k slabs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "gradcheck.h"
#include "nn/gemm.h"

namespace safecross::nn {
namespace {

// op(A) is m x k, op(B) is k x n, all matrices row-major and dense
// (lda == columns of the stored matrix).
std::vector<float> reference_gemm(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
                                  const std::vector<float>& a, const std::vector<float>& b,
                                  float beta, std::vector<float> c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = trans_a == Trans::kNo ? a[i * k + kk] : a[kk * m + i];
        const float bv = trans_b == Trans::kNo ? b[kk * n + j] : b[j * k + kk];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
  return c;
}

std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed) {
  safecross::Rng rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void expect_sgemm_matches(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
                          float beta, std::uint64_t seed,
                          GemmKernel kernel = GemmKernel::kMicro) {
  const int a_rows = trans_a == Trans::kNo ? m : k;
  const int a_cols = trans_a == Trans::kNo ? k : m;
  const int b_rows = trans_b == Trans::kNo ? k : n;
  const int b_cols = trans_b == Trans::kNo ? n : k;
  const auto a = random_matrix(a_rows, a_cols, seed);
  const auto b = random_matrix(b_rows, b_cols, seed ^ 0xB00Bu);
  auto c = random_matrix(m, n, seed ^ 0xCAFEu);
  const auto want = reference_gemm(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);

  sgemm(trans_a, trans_b, m, n, k, alpha, a.data(), a_cols, b.data(), b_cols, beta, c.data(), n,
        kernel);

  // k multiplications of values in [-1, 1]; scale the tolerance with k.
  // fp16 storage carries ~2^-11 relative error per operand.
  const float per_term = kernel == GemmKernel::kFp16 ? 2e-3f : 1e-5f;
  const float tol = per_term * static_cast<float>(std::max(k, 1));
  for (int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c[i], want[i], tol) << "kernel=" << static_cast<int>(kernel)
                                    << " trans_a=" << static_cast<int>(trans_a)
                                    << " trans_b=" << static_cast<int>(trans_b) << " m=" << m
                                    << " n=" << n << " k=" << k << " at " << i;
  }
}

// As expect_sgemm_matches, but every matrix is embedded in a wider
// buffer: lda/ldb/ldc exceed the logical column counts. The slack
// columns of A and B are NaN (a read from them poisons the result) and
// the slack of C is a sentinel the call must leave untouched.
void expect_sgemm_matches_strided(Trans trans_a, Trans trans_b, int m, int n, int k, float alpha,
                                  float beta, std::uint64_t seed, GemmKernel kernel) {
  const int a_rows = trans_a == Trans::kNo ? m : k;
  const int a_cols = trans_a == Trans::kNo ? k : m;
  const int b_rows = trans_b == Trans::kNo ? k : n;
  const int b_cols = trans_b == Trans::kNo ? n : k;
  const int lda = a_cols + 3, ldb = b_cols + 5, ldc = n + 7;
  const float kNaN = std::numeric_limits<float>::quiet_NaN();
  const float kSentinel = 512.25f;

  const auto a_dense = random_matrix(a_rows, a_cols, seed);
  const auto b_dense = random_matrix(b_rows, b_cols, seed ^ 0xB00Bu);
  const auto c_dense = random_matrix(m, n, seed ^ 0xCAFEu);
  const auto want = reference_gemm(trans_a, trans_b, m, n, k, alpha, a_dense, b_dense, beta,
                                   c_dense);

  auto embed = [](const std::vector<float>& src, int rows, int cols, int ld, float fill) {
    std::vector<float> dst(static_cast<std::size_t>(rows) * ld, fill);
    for (int r = 0; r < rows; ++r) {
      std::copy_n(src.data() + static_cast<std::size_t>(r) * cols, cols,
                  dst.data() + static_cast<std::size_t>(r) * ld);
    }
    return dst;
  };
  const auto a = embed(a_dense, a_rows, a_cols, lda, kNaN);
  const auto b = embed(b_dense, b_rows, b_cols, ldb, kNaN);
  auto c = embed(c_dense, m, n, ldc, kSentinel);

  sgemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(), ldc,
        kernel);

  const float per_term = kernel == GemmKernel::kFp16 ? 2e-3f : 1e-5f;
  const float tol = per_term * static_cast<float>(std::max(k, 1));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_NEAR(c[static_cast<std::size_t>(i) * ldc + j], want[i * n + j], tol)
          << "kernel=" << static_cast<int>(kernel) << " m=" << m << " n=" << n << " k=" << k
          << " at (" << i << ", " << j << ")";
    }
    for (int j = n; j < ldc; ++j) {
      ASSERT_EQ(c[static_cast<std::size_t>(i) * ldc + j], kSentinel)
          << "kernel=" << static_cast<int>(kernel) << " wrote past row " << i;
    }
  }
}

TEST(SGemm, TinyShapes) {
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 1, 1, 1, 1.0f, 0.0f, 1);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 3, 5, 7, 1.0f, 0.0f, 2);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 7, 3, 5, 1.0f, 0.0f, 3);
}

TEST(SGemm, TileBoundaryShapes) {
  // The kernel tiles C in up-to-64-row x 256-column blocks and walks k in
  // 256-wide slabs; probe one-below / exact / one-above each boundary.
  for (const int m : {63, 64, 65}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, m, 19, 11, 1.0f, 0.0f, 10 + m);
  }
  for (const int n : {255, 256, 257}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, 5, n, 9, 1.0f, 0.0f, 20 + n);
  }
  for (const int k : {255, 256, 257}) {
    expect_sgemm_matches(Trans::kNo, Trans::kNo, 4, 6, k, 1.0f, 0.0f, 30 + k);
  }
}

TEST(SGemm, TransposedA) {
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 3, 5, 7, 1.0f, 0.0f, 40);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 65, 17, 13, 1.0f, 0.0f, 41);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 8, 100, 257, 1.0f, 0.0f, 42);
}

TEST(SGemm, TransposedB) {
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 3, 5, 7, 1.0f, 0.0f, 50);
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 17, 65, 13, 1.0f, 0.0f, 51);
  // k straddling the 16-lane dot-product unroll.
  for (const int k : {15, 16, 17, 31, 33}) {
    expect_sgemm_matches(Trans::kNo, Trans::kTrans, 4, 6, k, 1.0f, 0.0f, 52 + k);
  }
}

TEST(SGemm, TransposedBoth) {
  expect_sgemm_matches(Trans::kTrans, Trans::kTrans, 3, 5, 7, 1.0f, 0.0f, 60);
  expect_sgemm_matches(Trans::kTrans, Trans::kTrans, 65, 9, 17, 1.0f, 0.0f, 61);
}

TEST(SGemm, AlphaBeta) {
  // beta=1 accumulates (the weight-gradient path), alpha scales.
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 6, 7, 8, 1.0f, 1.0f, 70);
  expect_sgemm_matches(Trans::kNo, Trans::kTrans, 6, 7, 8, 0.5f, 1.0f, 71);
  expect_sgemm_matches(Trans::kTrans, Trans::kNo, 6, 7, 8, 2.0f, -1.0f, 72);
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 6, 7, 8, 0.0f, 2.0f, 73);
}

TEST(SGemm, DegenerateK) {
  // k == 0: C <- beta * C regardless of transpose flags.
  auto c = random_matrix(4, 5, 80);
  const auto orig = c;
  sgemm(Trans::kNo, Trans::kNo, 4, 5, 0, 1.0f, nullptr, 1, nullptr, 5, 0.5f, c.data(), 5);
  for (int i = 0; i < 20; ++i) EXPECT_FLOAT_EQ(c[i], 0.5f * orig[i]);
}

TEST(SGemm, ConvShapedProblem) {
  // The shape conv3d lowers to on SlowFast-sized inputs (scaled down for
  // test time): c_out x (c_in * kt * ks * ks) times that x (ot * oh * ow).
  expect_sgemm_matches(Trans::kNo, Trans::kNo, 8, 14 * 14 * 4, 4 * 3 * 3 * 3, 1.0f, 0.0f, 90);
}

// ---------------------------------------------------------------------------
// Kernel sweep: every compute path against the reference across edge
// shapes, transpose combos, and alpha/beta values.

const GemmKernel kAllKernels[] = {GemmKernel::kMicro, GemmKernel::kScalar, GemmKernel::kFp16};
const Trans kTransModes[] = {Trans::kNo, Trans::kTrans};

TEST(SGemmKernels, MicrokernelTailShapes) {
  // m around the 6-row register block, n around the 16-lane vector width,
  // k around the 256-wide slab — one below, exact, one above, plus 1.
  std::uint64_t seed = 1000;
  for (const GemmKernel kernel : kAllKernels) {
    for (const int m : {1, 5, 6, 7, 13}) {
      expect_sgemm_matches(Trans::kNo, Trans::kNo, m, 33, 20, 1.0f, 0.0f, ++seed, kernel);
    }
    for (const int n : {1, 15, 16, 17, 47}) {
      expect_sgemm_matches(Trans::kNo, Trans::kNo, 9, n, 20, 1.0f, 0.0f, ++seed, kernel);
    }
    for (const int k : {1, 255, 256, 257}) {
      expect_sgemm_matches(Trans::kNo, Trans::kNo, 7, 18, k, 1.0f, 0.0f, ++seed, kernel);
    }
  }
}

TEST(SGemmKernels, EmptyDimensionsAreNoOps) {
  // m == 0 / n == 0: nothing to compute, C untouched even with beta != 1.
  auto c = random_matrix(4, 5, 1100);
  const auto orig = c;
  for (const GemmKernel kernel : kAllKernels) {
    sgemm(Trans::kNo, Trans::kNo, 0, 5, 3, 1.0f, nullptr, 3, nullptr, 5, 0.5f, c.data(), 5,
          kernel);
    sgemm(Trans::kNo, Trans::kNo, 4, 0, 3, 1.0f, nullptr, 3, nullptr, 1, 0.5f, c.data(), 5,
          kernel);
    for (int i = 0; i < 20; ++i) ASSERT_EQ(c[i], orig[i]);
  }
}

TEST(SGemmKernels, AllTransposeCombosTimesAlphaBeta) {
  // Full cross: {N, T} x {N, T} x alpha, beta in {0, 1, 2.5}, per kernel,
  // on a shape with tails on every axis.
  std::uint64_t seed = 1200;
  for (const GemmKernel kernel : kAllKernels) {
    for (const Trans ta : kTransModes) {
      for (const Trans tb : kTransModes) {
        for (const float alpha : {0.0f, 1.0f, 2.5f}) {
          for (const float beta : {0.0f, 1.0f, 2.5f}) {
            expect_sgemm_matches(ta, tb, 13, 21, 19, alpha, beta, ++seed, kernel);
          }
        }
      }
    }
  }
}

TEST(SGemmKernels, StridedLeadingDimensions) {
  // lda/ldb/ldc wider than the logical matrices: NaN slack in A/B must
  // never be read, sentinel slack in C must never be written.
  std::uint64_t seed = 1300;
  for (const GemmKernel kernel : kAllKernels) {
    for (const Trans ta : kTransModes) {
      for (const Trans tb : kTransModes) {
        expect_sgemm_matches_strided(ta, tb, 13, 37, 29, 1.0f, 0.5f, ++seed, kernel);
      }
    }
    // Skinny-m untransposed-B: the B-direct streaming path with a column
    // tail, where full 16-wide strips read straight from the strided B.
    expect_sgemm_matches_strided(Trans::kNo, Trans::kNo, 4, 53, 300, 1.0f, 0.0f, ++seed, kernel);
  }
}

TEST(SGemmKernels, MicroMatchesScalarClosely) {
  // Micro vs scalar on the same inputs: both accumulate in fp32, so they
  // agree to summation-order rounding (much tighter than the reference
  // tolerance above).
  const int m = 37, n = 65, k = 300;
  const auto a = random_matrix(m, k, 1400);
  const auto b = random_matrix(k, n, 1401);
  auto c_micro = random_matrix(m, n, 1402);
  auto c_scalar = c_micro;
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c_micro.data(), n,
        GemmKernel::kMicro);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c_scalar.data(), n,
        GemmKernel::kScalar);
  for (int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c_micro[i], c_scalar[i], 1e-4f) << "at " << i;
  }
}

TEST(SGemmKernels, Fp16LosesPrecisionButStaysClose) {
  // The fp16 path must actually round (different bits from micro) while
  // staying inside the documented tolerance envelope.
  const int m = 12, n = 33, k = 128;
  const auto a = random_matrix(m, k, 1500);
  const auto b = random_matrix(k, n, 1501);
  std::vector<float> c_micro(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c_fp16(static_cast<std::size_t>(m) * n, 0.0f);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c_micro.data(), n,
        GemmKernel::kMicro);
  sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c_fp16.data(), n,
        GemmKernel::kFp16);
  int differing = 0;
  for (int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c_fp16[i], c_micro[i], 2e-3f * k) << "at " << i;
    if (c_fp16[i] != c_micro[i]) ++differing;
  }
  EXPECT_GT(differing, m * n / 2) << "fp16 path appears to not round its operands";
}

TEST(SGemmKernels, ResolverReadsEnvAndRejectsUnknown) {
  ASSERT_EQ(unsetenv("SAFECROSS_GEMM_KERNEL"), 0);
  EXPECT_EQ(resolve_gemm_kernel(GemmKernel::kAuto), GemmKernel::kMicro);
  ASSERT_EQ(setenv("SAFECROSS_GEMM_KERNEL", "scalar", 1), 0);
  EXPECT_EQ(resolve_gemm_kernel(GemmKernel::kAuto), GemmKernel::kScalar);
  // Explicit requests win over the environment.
  EXPECT_EQ(resolve_gemm_kernel(GemmKernel::kFp16), GemmKernel::kFp16);
  ASSERT_EQ(setenv("SAFECROSS_GEMM_KERNEL", "sclar", 1), 0);
  EXPECT_THROW(resolve_gemm_kernel(GemmKernel::kAuto), std::invalid_argument);
  // The throw must reach callers through sgemm, not get swallowed.
  std::vector<float> mat(4, 1.0f);
  EXPECT_THROW(sgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, mat.data(), 2, mat.data(), 2, 0.0f,
                     mat.data(), 2),
               std::invalid_argument);
  ASSERT_EQ(unsetenv("SAFECROSS_GEMM_KERNEL"), 0);
}

TEST(SGemmKernels, ReentrantUnderParallelFor) {
  // GEMM from inside parallel_for jobs: the pool's helping design must
  // not deadlock, and each nested GEMM (with its own arena scopes and
  // nested parallel_for) must produce the same result as when run alone.
  const int m = 18, n = 40, k = 64;
  const int jobs = 8;
  std::vector<std::vector<float>> a(jobs), b(jobs), want(jobs), got(jobs);
  for (int j = 0; j < jobs; ++j) {
    a[j] = random_matrix(m, k, 1600 + j);
    b[j] = random_matrix(k, n, 1700 + j);
    want[j].assign(static_cast<std::size_t>(m) * n, 0.0f);
    got[j].assign(static_cast<std::size_t>(m) * n, 0.0f);
    sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a[j].data(), k, b[j].data(), n, 0.0f,
          want[j].data(), n, GemmKernel::kMicro);
  }
  ThreadPool::global().parallel_for(static_cast<std::size_t>(jobs), [&](std::size_t j) {
    sgemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a[j].data(), k, b[j].data(), n, 0.0f,
          got[j].data(), n, GemmKernel::kMicro);
  });
  for (int j = 0; j < jobs; ++j) {
    for (int i = 0; i < m * n; ++i) {
      // Bit-identical: k is never split, so summation order is fixed
      // regardless of which thread ran which tile.
      ASSERT_EQ(got[j][i], want[j][i]) << "job " << j << " at " << i;
    }
  }
}

}  // namespace
}  // namespace safecross::nn
