#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace safecross::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4}, 1.5f);
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_FLOAT_EQ(t[0], 1.5f);
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  EXPECT_FLOAT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, AtValidatesIndices) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at({2, 3}), 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a({3}, 1.0f);
  Tensor b({3}, 2.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[2], 4.0f);
  EXPECT_THROW(a.add_scaled(Tensor({4}), 1.0f), std::invalid_argument);
}

TEST(Tensor, SumAndMax) {
  Tensor t({4});
  t[0] = 1;
  t[1] = -2;
  t[2] = 3;
  t[3] = 0.5;
  EXPECT_DOUBLE_EQ(t.sum(), 2.5);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
}

TEST(Tensor, ZerosLikeMatchesShape) {
  Tensor t({2, 5}, 3.0f);
  const Tensor z = Tensor::zeros_like(t);
  EXPECT_EQ(z.shape(), t.shape());
  EXPECT_FLOAT_EQ(z[0], 0.0f);
}

TEST(Tensor, CheckSameShapeThrowsWithContext) {
  try {
    Tensor::check_same_shape(Tensor({2}), Tensor({3}), "ctx");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
}

}  // namespace
}  // namespace safecross::nn
