#include "switching/executor.h"

#include <gtest/gtest.h>

#include "switching/grouping.h"

namespace safecross::switching {
namespace {

ModelProfile executor_profile() {
  // ~24 MB and ~24 ms compute: big enough that overlap is measurable,
  // small enough for fast tests.
  ModelProfile p;
  p.name = "exec-test";
  for (int i = 0; i < 8; ++i) {
    std::string name = "l";
    name += std::to_string(i);
    p.layers.push_back({std::move(name), 3'000'000, 3.0, 0.0});
  }
  return p;
}

TEST(Executor, SequentialWallIsTransferPlusCompute) {
  PipelinedExecutor exec({/*bandwidth_gbps=*/4.0, /*compute_scale=*/1.0});
  const ModelProfile p = executor_profile();
  const ExecutorResult r = exec.run_sequential(p);
  EXPECT_GE(r.wall_ms, r.transfer_ms + r.compute_ms - 2.0);
}

TEST(Executor, PipelinedOverlapsTransferAndCompute) {
  PipelinedExecutor exec({/*bandwidth_gbps=*/4.0, /*compute_scale=*/1.0});
  const ModelProfile p = executor_profile();
  const ExecutorResult seq = exec.run_sequential(p);
  const ExecutorResult pip = exec.run_pipelined(p, per_layer_grouping(p));
  // Real threads, real sleeps: the pipelined wall time must be
  // measurably below sequential (ideal: max of the two busy times,
  // ~0.81x here; no overlap at all would be 1.0x). The 0.92 threshold
  // leaves a few ms of sleep-jitter budget for loaded 1-2 core CI boxes.
  EXPECT_LT(pip.wall_ms, seq.wall_ms * 0.92);
  EXPECT_GE(pip.wall_ms, std::max(pip.transfer_ms, pip.compute_ms) - 2.0);
}

TEST(Executor, PipelinedRespectsGroupOrdering) {
  PipelinedExecutor exec({4.0, 1.0});
  const ModelProfile p = executor_profile();
  // Whole-model grouping degenerates to sequential behaviour.
  const ExecutorResult whole = exec.run_pipelined(p, whole_model_grouping(p));
  EXPECT_GE(whole.wall_ms, whole.transfer_ms + whole.compute_ms - 3.0);
}

TEST(Executor, ThrottleEnforcesBandwidth) {
  PipelinedExecutor slow({/*bandwidth_gbps=*/1.0, 1.0});
  PipelinedExecutor fast({/*bandwidth_gbps=*/16.0, 1.0});
  const ModelProfile p = executor_profile();
  const double t_slow = slow.run_sequential(p).transfer_ms;
  const double t_fast = fast.run_sequential(p).transfer_ms;
  EXPECT_GT(t_slow, t_fast * 2.0);
  // 24 MB at 1 GB/s is ~24 ms.
  EXPECT_GE(t_slow, 20.0);
}

TEST(Executor, ComputeScaleShortensComputePhase) {
  PipelinedExecutor full({8.0, 1.0});
  PipelinedExecutor tenth({8.0, 0.1});
  const ModelProfile p = executor_profile();
  EXPECT_GT(full.run_sequential(p).compute_ms, tenth.run_sequential(p).compute_ms * 3.0);
}

}  // namespace
}  // namespace safecross::switching
