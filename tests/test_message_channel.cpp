// Fault-injectable control-plane transport: the MessageChannel /
// FaultFabric contract the partition-tolerant fleet is built on.
//
// Pinned here: seeded fates are reproducible (same plan → same faults,
// regardless of wall clock or thread interleaving), each fault mode
// (drop, duplicate, delay, reorder, partition windows — full, one-way,
// wave-scoped) does exactly what it says with exact LinkStats
// accounting, a perfect (all-zero) plan delivers exactly once in order,
// and RpcPolicy backs off by doubling up to its cap. Plus the suspicion
// (phi-accrual) failure detector: zero before the first beat, scaled to
// the largest observed gap — a healed partition teaches it — and gated
// by a confirm streak.

#include "runtime/message_channel.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/suspicion.h"

namespace safecross::runtime {
namespace {

using Direction = FaultFabric::Direction;
using Fate = FaultFabric::Fate;

NetFaultPlan mixed_plan(std::uint64_t seed) {
  NetFaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.3;
  plan.delay_prob = 0.2;
  plan.reorder_prob = 0.2;
  return plan;
}

std::vector<Fate> draw(FaultFabric& fabric, std::size_t shard, Direction d, std::size_t n) {
  std::vector<Fate> fates;
  fates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fates.push_back(fabric.fate(shard, d));
  return fates;
}

bool same_fate(const Fate& a, const Fate& b) {
  return a.drop == b.drop && a.partitioned == b.partitioned &&
         a.duplicate == b.duplicate && a.reorder == b.reorder &&
         a.delay_ms == b.delay_ms && a.dup_delay_ms == b.dup_delay_ms;
}

TEST(FaultFabric, SameSeedSameFates) {
  FaultFabric a(mixed_plan(0xBEEF));
  FaultFabric b(mixed_plan(0xBEEF));
  const auto fa = draw(a, 3, Direction::ToShard, 200);
  const auto fb = draw(b, 3, Direction::ToShard, 200);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    SCOPED_TRACE("ordinal " + std::to_string(i));
    EXPECT_TRUE(same_fate(fa[i], fb[i])) << "fates must depend only on (seed, link, ordinal)";
  }
}

TEST(FaultFabric, DifferentSeedsDiverge) {
  FaultFabric a(mixed_plan(0xBEEF));
  FaultFabric b(mixed_plan(0xF00D));
  const auto fa = draw(a, 0, Direction::ToController, 200);
  const auto fb = draw(b, 0, Direction::ToController, 200);
  bool any_differ = false;
  for (std::size_t i = 0; i < fa.size(); ++i) any_differ |= !same_fate(fa[i], fb[i]);
  EXPECT_TRUE(any_differ);
}

TEST(FaultFabric, LinksFaultIndependently) {
  FaultFabric fabric(mixed_plan(0xBEEF));
  const auto up = draw(fabric, 0, Direction::ToController, 200);
  FaultFabric fabric2(mixed_plan(0xBEEF));
  const auto other = draw(fabric2, 1, Direction::ToController, 200);
  bool any_differ = false;
  for (std::size_t i = 0; i < up.size(); ++i) any_differ |= !same_fate(up[i], other[i]);
  EXPECT_TRUE(any_differ) << "every link must draw its own fate stream";
}

TEST(MessageChannel, PerfectPlanDeliversExactlyOnceInOrder) {
  FaultFabric fabric(NetFaultPlan{});  // all-zero mix, no partitions
  MessageChannel<int> ch(&fabric, 0, Direction::ToShard);
  for (int i = 0; i < 50; ++i) ch.send(i);
  for (int i = 0; i < 50; ++i) {
    auto m = ch.try_recv();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, i) << "a perfect link must preserve send order";
  }
  EXPECT_FALSE(ch.try_recv().has_value());
  const LinkStats s = ch.stats();
  EXPECT_EQ(s.sent, 50u);
  EXPECT_EQ(s.delivered, 50u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.duplicated, 0u);
  EXPECT_EQ(s.delayed, 0u);
  EXPECT_EQ(s.reordered, 0u);
  EXPECT_EQ(s.partitioned, 0u);
}

TEST(MessageChannel, NullFabricIsAPerfectLink) {
  MessageChannel<int> ch(nullptr, 0, Direction::ToShard);
  ch.send(7);
  auto m = ch.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 7);
}

TEST(MessageChannel, CertainDropLosesEverythingSilently) {
  NetFaultPlan plan;
  plan.drop_prob = 1.0;
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 2, Direction::ToController);
  for (int i = 0; i < 20; ++i) ch.send(i);  // send() never fails visibly
  EXPECT_FALSE(ch.recv(std::chrono::milliseconds(20)).has_value());
  const LinkStats s = ch.stats();
  EXPECT_EQ(s.sent, 20u);
  EXPECT_EQ(s.dropped, 20u);
  EXPECT_EQ(s.delivered, 0u);
  EXPECT_EQ(s.partitioned, 0u) << "a probabilistic drop is not a partition";
}

TEST(MessageChannel, DuplicationDeliversARetransmitGhost) {
  NetFaultPlan plan;
  plan.dup_prob = 1.0;
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 0, Direction::ToShard);
  ch.send(42);
  auto first = ch.recv(std::chrono::milliseconds(500));
  auto second = ch.recv(std::chrono::milliseconds(500));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(*second, 42) << "the ghost copy must carry the same payload";
  EXPECT_FALSE(ch.try_recv().has_value()) << "duplication is exactly twice";
  const LinkStats s = ch.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.duplicated, 1u);
  EXPECT_EQ(s.delivered, 2u);
}

TEST(MessageChannel, DelayHoldsDeliveryUntilDue) {
  NetFaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_min_ms = 40.0;
  plan.delay_max_ms = 40.0;
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 0, Direction::ToShard);
  ch.send(9);
  EXPECT_FALSE(ch.try_recv().has_value()) << "a delayed message must not be early";
  EXPECT_EQ(ch.in_flight(), 1u);
  auto m = ch.recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 9);
  EXPECT_EQ(ch.stats().delayed, 1u);
}

TEST(MessageChannel, ReorderedMessageIsGenuinelyOvertaken) {
  // Find a seed whose first fate on the link is reorder and second is
  // clean — the fates are pure functions of (seed, link, ordinal), so
  // the search is deterministic.
  NetFaultPlan plan;
  plan.reorder_prob = 0.5;
  plan.delay_min_ms = 60.0;  // hold long enough that the test cannot race it
  plan.delay_max_ms = 60.0;
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 4096; ++candidate) {
    plan.seed = candidate;
    FaultFabric probe(plan);
    const Fate f0 = probe.fate(0, Direction::ToShard);
    const Fate f1 = probe.fate(0, Direction::ToShard);
    if (f0.reorder && !f1.reorder && !f1.drop) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed with the reorder-then-clean pattern";

  plan.seed = seed;
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 0, Direction::ToShard);
  ch.send(1);  // held
  ch.send(2);  // overtakes
  auto first = ch.recv(std::chrono::milliseconds(2000));
  auto second = ch.recv(std::chrono::milliseconds(2000));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 2) << "the later send must arrive first";
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(ch.stats().reordered, 1u);
}

TEST(MessageChannel, FullPartitionWindowDropsThenHeals) {
  NetFaultPlan plan;
  plan.partitions.push_back(NetPartition{.from_ms = 0.0, .until_ms = 50.0});
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 1, Direction::ToController);
  ch.send(1);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_EQ(ch.stats().partitioned, 1u) << "partition drops are accounted as such";
  EXPECT_EQ(ch.stats().dropped, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // heal
  ch.send(2);
  auto m = ch.recv(std::chrono::milliseconds(500));
  ASSERT_TRUE(m.has_value()) << "a healed link must deliver again";
  EXPECT_EQ(*m, 2);
}

TEST(MessageChannel, OneWayPartitionBlocksOnlyThatDirection) {
  NetFaultPlan plan;
  plan.partitions.push_back(
      NetPartition{.direction = NetPartition::Direction::ToController});
  FaultFabric fabric(plan);
  MessageChannel<int> up(&fabric, 0, Direction::ToController);
  MessageChannel<int> down(&fabric, 0, Direction::ToShard);
  up.send(1);
  down.send(2);
  EXPECT_FALSE(up.try_recv().has_value()) << "the blocked direction drops";
  auto m = down.try_recv();
  ASSERT_TRUE(m.has_value()) << "the other direction is untouched";
  EXPECT_EQ(*m, 2);
}

TEST(MessageChannel, PartitionCanTargetOneLink) {
  NetFaultPlan plan;
  plan.partitions.push_back(NetPartition{.shard = 1});
  FaultFabric fabric(plan);
  MessageChannel<int> hit(&fabric, 1, Direction::ToShard);
  MessageChannel<int> spared(&fabric, 0, Direction::ToShard);
  hit.send(1);
  spared.send(2);
  EXPECT_FALSE(hit.try_recv().has_value());
  EXPECT_TRUE(spared.try_recv().has_value());
}

TEST(MessageChannel, WaveScopedPartitionBitesOnlyItsWave) {
  NetFaultPlan plan;
  plan.partitions.push_back(NetPartition{.wave = 2});
  FaultFabric fabric(plan);
  MessageChannel<int> ch(&fabric, 0, Direction::ToShard);
  ch.send(1);  // fabric wave is 0: spared
  EXPECT_TRUE(ch.try_recv().has_value());
  fabric.set_wave(2);
  ch.send(2);
  EXPECT_FALSE(ch.try_recv().has_value()) << "the scoped wave must drop";
  fabric.set_wave(3);
  ch.send(3);
  auto m = ch.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 3);
}

TEST(MessageChannel, CloseSealsSendsAndWakesBlockedReceiver) {
  MessageChannel<int> ch(nullptr, 0, Direction::ToShard);
  ch.send(1);
  ch.close();
  ch.send(2);  // after close: silently discarded
  auto m = ch.try_recv();
  ASSERT_TRUE(m.has_value()) << "messages buffered at close stay drainable";
  EXPECT_EQ(*m, 1);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_EQ(ch.stats().delivered, 1u);

  MessageChannel<int> blocked(nullptr, 0, Direction::ToShard);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread receiver([&] {
    EXPECT_FALSE(blocked.recv(std::chrono::milliseconds(5000)).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  blocked.close();
  receiver.join();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::milliseconds(4000))
      << "close must wake a blocked recv immediately";
}

TEST(RpcPolicy, BackoffDoublesUpToTheCap) {
  RpcPolicy rpc;  // 8ms doubling to 64ms
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(1), 8.0);
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(2), 16.0);
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(3), 32.0);
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(4), 64.0);
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(5), 64.0) << "capped, not unbounded";
  EXPECT_DOUBLE_EQ(rpc.timeout_for_attempt(100), 64.0);
}

// --- suspicion (phi-accrual) failure detector ---

using Clock = SuspicionDetector::Clock;

Clock::time_point at_ms(double ms) {
  return Clock::time_point{} + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(ms));
}

TEST(SuspicionDetector, SilentBeforeFirstBeatIsNotSuspicion) {
  SuspicionDetector det(SuspicionConfig{});
  EXPECT_DOUBLE_EQ(det.phi(at_ms(1000.0)), 0.0)
      << "startup is not silence — the shard may not be on-CPU yet";
  EXPECT_FALSE(det.poll_silent(at_ms(1000.0)));
  EXPECT_FALSE(det.poll_silent(at_ms(2000.0)));
}

TEST(SuspicionDetector, PhiScalesToTheLearnedGap) {
  SuspicionConfig cfg;
  cfg.bootstrap_gap_ms = 10.0;
  cfg.slack = 1.5;
  SuspicionDetector det(cfg);
  det.on_beat(at_ms(0.0));
  EXPECT_DOUBLE_EQ(det.expected_gap_ms(), 10.0) << "bootstrap floor before any gap";
  det.on_beat(at_ms(20.0));  // learned max gap: 20ms
  EXPECT_DOUBLE_EQ(det.max_observed_gap_ms(), 20.0);
  EXPECT_DOUBLE_EQ(det.expected_gap_ms(), 30.0);  // 20 × 1.5 slack
  EXPECT_DOUBLE_EQ(det.phi(at_ms(80.0)), 2.0);    // 60ms silence / 30ms scale
}

TEST(SuspicionDetector, DeclaresOnlyAfterTheConfirmStreak) {
  SuspicionConfig cfg;
  cfg.threshold = 2.0;
  cfg.bootstrap_gap_ms = 10.0;
  cfg.confirm_ticks = 3;
  SuspicionDetector det(cfg);
  det.on_beat(at_ms(0.0));
  EXPECT_FALSE(det.poll_silent(at_ms(25.0)));  // phi 2.5, streak 1
  EXPECT_FALSE(det.poll_silent(at_ms(27.0)));  // streak 2
  EXPECT_TRUE(det.poll_silent(at_ms(29.0)));   // streak 3: declared
}

TEST(SuspicionDetector, ABeatClearsTheAccruedStreak) {
  SuspicionConfig cfg;
  cfg.threshold = 2.0;
  cfg.bootstrap_gap_ms = 10.0;
  cfg.confirm_ticks = 2;
  SuspicionDetector det(cfg);
  det.on_beat(at_ms(0.0));
  EXPECT_FALSE(det.poll_silent(at_ms(25.0)));
  det.on_beat(at_ms(26.0));  // the shard was slow, not dead
  EXPECT_FALSE(det.poll_silent(at_ms(30.0))) << "phi is low again after the beat";
  // The streak restarted from zero: two fresh over-threshold polls needed.
  EXPECT_FALSE(det.poll_silent(at_ms(130.0)));
  EXPECT_TRUE(det.poll_silent(at_ms(132.0)));
}

TEST(SuspicionDetector, AHealedPartitionTeachesTheDetector) {
  SuspicionConfig cfg;
  cfg.threshold = 2.0;
  cfg.bootstrap_gap_ms = 10.0;
  cfg.slack = 1.5;
  cfg.confirm_ticks = 1;
  // A naive detector that never saw trouble declares on 100ms of silence.
  SuspicionDetector naive(cfg);
  naive.on_beat(at_ms(0.0));
  naive.on_beat(at_ms(5.0));
  EXPECT_TRUE(naive.poll_silent(at_ms(105.0)));
  // One that already survived a 100ms partition has learned the gap, so
  // the same silence accrues far less suspicion.
  SuspicionDetector seasoned(cfg);
  seasoned.on_beat(at_ms(0.0));
  seasoned.on_beat(at_ms(100.0));  // the healed partition's gap
  EXPECT_FALSE(seasoned.poll_silent(at_ms(200.0)))
      << "100ms silence / 150ms scale is below threshold";
  // A genuinely dead shard is still declared, just later.
  EXPECT_TRUE(seasoned.poll_silent(at_ms(100.0 + 2.0 * 150.0 + 1.0)));
}

}  // namespace
}  // namespace safecross::runtime
