#include "vision/danger_zone.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

TEST(DangerZone, ReachGrowsWithSpeed) {
  DangerZoneParams slow;
  slow.oncoming_speed = 8.0f;
  DangerZoneParams fast;
  fast.oncoming_speed = 20.0f;
  EXPECT_GT(danger_zone_reach_m(fast), danger_zone_reach_m(slow));
}

TEST(DangerZone, ReachGrowsAsFrictionDrops) {
  DangerZoneParams dry = DangerZoneModel::for_weather(Weather::Daytime);
  DangerZoneParams wet = DangerZoneModel::for_weather(Weather::Rain);
  DangerZoneParams icy = DangerZoneModel::for_weather(Weather::Snow);
  EXPECT_LT(danger_zone_reach_m(dry), danger_zone_reach_m(wet));
  EXPECT_LT(danger_zone_reach_m(wet), danger_zone_reach_m(icy));
}

TEST(DangerZone, ReachIncludesTravelPlusBraking) {
  DangerZoneParams p;
  p.oncoming_speed = 10.0f;
  p.reaction_time = 1.0f;
  p.turn_clear_time = 2.0f;
  p.friction = 0.5f;
  const float travel = 10.0f * 3.0f;
  const float braking = 100.0f / (2.0f * 0.5f * 9.81f);
  EXPECT_NEAR(danger_zone_reach_m(p), travel + braking, 1e-4);
}

TEST(DangerZone, ZoneRectExtendsUpstreamPositiveDir) {
  DangerZoneParams p = DangerZoneModel::for_weather(Weather::Daytime);
  const Rect r = DangerZoneModel::zone_rect(50.0f, 10.0f, p, /*oncoming_dir=*/+1);
  EXPECT_FLOAT_EQ(r.max_x, 50.0f);
  EXPECT_LT(r.min_x, 50.0f - 30.0f);
  EXPECT_TRUE(r.contains(40.0f, 10.0f));
  EXPECT_FALSE(r.contains(60.0f, 10.0f));
}

TEST(DangerZone, ZoneRectExtendsUpstreamNegativeDir) {
  DangerZoneParams p = DangerZoneModel::for_weather(Weather::Daytime);
  const Rect r = DangerZoneModel::zone_rect(50.0f, 10.0f, p, /*oncoming_dir=*/-1);
  EXPECT_FLOAT_EQ(r.min_x, 50.0f);
  EXPECT_GT(r.max_x, 80.0f);
}

TEST(DangerZone, ZoneSpansLaneWidth) {
  DangerZoneParams p;
  p.lane_width = 4.0f;
  const Rect r = DangerZoneModel::zone_rect(50.0f, 10.0f, p);
  EXPECT_TRUE(r.contains(45.0f, 10.0f + 2.9f));
  EXPECT_FALSE(r.contains(45.0f, 10.0f + 3.5f));
}

TEST(DangerZone, OccupiedDetectsPixelInZone) {
  Image mask(32, 16, 0.0f);
  mask.at(10, 5) = 1.0f;  // ground cell (10, 5) at 2 m/px => (20 m, 10 m)
  Rect zone{15.0f, 8.0f, 25.0f, 12.0f};
  EXPECT_TRUE(zone_occupied(mask, zone, 2.0f));
}

TEST(DangerZone, EmptyZoneNotOccupied) {
  Image mask(32, 16, 0.0f);
  mask.at(1, 1) = 1.0f;  // far from the zone
  Rect zone{30.0f, 20.0f, 40.0f, 24.0f};
  EXPECT_FALSE(zone_occupied(mask, zone, 2.0f));
}

TEST(DangerZone, ZeroScaleIsNotOccupied) {
  Image mask(4, 4, 1.0f);
  Rect zone{0.0f, 0.0f, 10.0f, 10.0f};
  EXPECT_FALSE(zone_occupied(mask, zone, 0.0f));
}

TEST(DangerZone, WeatherNames) {
  EXPECT_STREQ(weather_name(Weather::Daytime), "daytime");
  EXPECT_STREQ(weather_name(Weather::Rain), "rain");
  EXPECT_STREQ(weather_name(Weather::Snow), "snow");
}

}  // namespace
}  // namespace safecross::vision
