// Switch-storm properties for the serving path (DESIGN.md §14), seeded
// and randomized: random switch schedules (weather flips at random
// frames, always delay_ms = 0 so every decision stays model-gated),
// random batcher geometry and queue depths, three weathers over a
// two-resident pipelined cache. Invariants, per seed:
//   * VERDICT PARITY — the batched run under SwitchMode::Pipelined and
//     under SwitchMode::StopAndStart both produce decision streams
//     bit-identical to the switch-free sequential oracle, lineage
//     (model_weather, epoch) included: residency is a latency model and
//     must never touch a verdict;
//   * NO EPOCH MIXING — every fired batch is uniform in (weather,
//     epoch); pre- and post-switch windows of the same weather never
//     co-batch (the unit-level twin lives in test_property_batcher.cpp);
//   * NO STARVATION — no stream sheds, goes down, or finishes short
//     while its model is mid-load: servability holds batches back, it
//     never drops them;
//   * the pipelined cache does real work: loads commit, and with three
//     weathers over two residencies something is evicted.

#include "serving/stream_server.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "models/slowfast.h"

namespace safecross::serving {
namespace {

using core::SafeCross;
using core::SafeCrossConfig;
using dataset::Weather;

constexpr Weather kStormWeathers[] = {Weather::Daytime, Weather::Rain, Weather::Snow};

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

std::unique_ptr<SafeCross> storm_engine() {
  auto sc = std::make_unique<SafeCross>(tiny_config());
  for (Weather w : kStormWeathers) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
  return sc;
}

/// A randomized storm scenario: per-stream switch schedules with random
/// flip frames and targets, random batcher deadline and queue depth.
/// Everything decision-bearing derives from `base` — the same base must
/// describe the same scenario in every switch mode.
StreamServerConfig storm_config(std::uint64_t base) {
  Rng rng(base ^ 0x570A2Dull);
  StreamServerConfig cfg;
  cfg.frames = 3600;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;
  cfg.queue_capacity = 2 + rng.uniform_int(std::uint64_t{6});
  cfg.batcher.max_batch_delay_ms = rng.uniform(0.5, 6.0);
  cfg.model_cache.capacity_models = 2;
  cfg.model_cache.bytes_scale = 1.0 / 4096.0;  // ~33 KB per load, full shape
  cfg.model_cache.executor.bandwidth_gbps = 64.0;
  cfg.model_cache.executor.compute_scale = 0.001;
  for (std::uint64_t i = 0; i < 2; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i == 0 ? Weather::Daytime : Weather::Rain;
    s.sim_seed = base + 10 * i;
    s.collector_seed = base + 10 * i + 1;
    s.fault_seed = base + 10 * i + 2;
    // Random storm: flips every 80–230 frames to a random *different*
    // weather, delay 0 (no fail-safe gating — all verdicts model-gated
    // and comparable 1:1 with the oracle).
    Weather current = s.weather;
    for (std::size_t frame = 150 + rng.uniform_int(std::uint64_t{80});
         frame < cfg.frames; frame += 80 + rng.uniform_int(std::uint64_t{150})) {
      Weather next = current;
      while (next == current) {
        next = kStormWeathers[rng.uniform_int(std::uint64_t{3})];
      }
      s.model_schedule.push_back({frame, next, 0.0});
      current = next;
    }
    cfg.streams.push_back(s);
  }
  return cfg;
}

/// Bit-identical decision streams, model lineage included.
void expect_matches_oracle(const StreamServer& got, const StreamServer& oracle) {
  ASSERT_EQ(got.stream_count(), oracle.stream_count());
  for (std::size_t i = 0; i < got.stream_count(); ++i) {
    const auto& g = got.stream(i);
    const auto& w = oracle.stream(i);
    SCOPED_TRACE("stream " + g.config().name);
    EXPECT_EQ(g.frames_run(), w.frames_run());
    const auto& gt = g.trace();
    const auto& wt = w.trace();
    ASSERT_EQ(gt.size(), wt.size()) << "a decision was lost or duplicated";
    for (std::size_t s = 0; s < gt.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(gt[s].frame, wt[s].frame);
      EXPECT_EQ(gt[s].danger_truth, wt[s].danger_truth);
      EXPECT_EQ(gt[s].predicted_class, wt[s].predicted_class);
      EXPECT_EQ(gt[s].prob_danger, wt[s].prob_danger) << "verdict not bit-identical";
      EXPECT_EQ(gt[s].warn, wt[s].warn);
      EXPECT_EQ(gt[s].source, wt[s].source);
      EXPECT_EQ(gt[s].model_weather, wt[s].model_weather) << "model lineage diverged";
      EXPECT_EQ(gt[s].epoch, wt[s].epoch) << "switch-epoch lineage diverged";
    }
    EXPECT_EQ(g.scorecard().decisions(), w.scorecard().decisions());
    EXPECT_EQ(g.scorecard().warnings(), w.scorecard().warnings());
    EXPECT_EQ(g.scorecard().missed_threats(), w.scorecard().missed_threats());
    EXPECT_EQ(g.scorecard().false_warnings(), w.scorecard().false_warnings());
  }
}

/// Starvation and conservation audit for a finished batched run.
void expect_no_starvation(const StreamServer& server) {
  EXPECT_EQ(server.windows_shed_total(), 0u) << "a switch shed a window";
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    EXPECT_FALSE(server.stream_down(i)) << "stream " << i << " starved out";
  }
  std::size_t batched = 0;
  for (const BatchRecord& b : server.batch_log()) {
    EXPECT_GE(b.size, 1u);
    batched += b.size;
  }
  EXPECT_EQ(batched, server.windows_batched())
      << "a batch fired windows the log never saw (or vice versa)";
}

void run_storm_seed(std::uint64_t base) {
  auto sc = storm_engine();
  const StreamServerConfig cfg = storm_config(base);

  StreamServer oracle(*sc, cfg);  // Legacy sequential = switch-free oracle
  oracle.run_sequential();
  ASSERT_GE(oracle.total_decisions(), 12u) << "weak scenario for base " << base;

  // Stop-and-start: single residency, blocking loads inside decide_batch.
  StreamServerConfig stop_cfg = cfg;
  stop_cfg.switch_mode = SwitchMode::StopAndStart;
  StreamServer stop(*sc, stop_cfg);
  stop.run();
  expect_matches_oracle(stop, oracle);
  expect_no_starvation(stop);
  EXPECT_GE(stop.switches_committed(), 1u);

  // Pipelined: dual residency, loader-thread transfers, servability
  // holdback. Same verdicts, and the cache visibly worked.
  StreamServerConfig pipe_cfg = cfg;
  pipe_cfg.switch_mode = SwitchMode::Pipelined;
  StreamServer pipe(*sc, pipe_cfg);
  pipe.run();
  expect_matches_oracle(pipe, oracle);
  expect_no_starvation(pipe);
  EXPECT_GE(pipe.switches_committed(), 1u);
  ASSERT_NE(pipe.model_cache(), nullptr);
  EXPECT_GE(pipe.model_cache()->stats().loads, 2u)
      << "a storm over three weathers must load more than the boot model";
  EXPECT_EQ(pipe.model_cache()->resident_count(), 2u)
      << "dual residency: the cache must hold exactly capacity_models models";

  // Verdicts equal across all three modes implies pipelined == stop-and-
  // start too, closing the ISSUE's three-way parity triangle.
}

TEST(SwitchStormProperty, Seed85000AllModesBitIdentical) { run_storm_seed(85000); }
TEST(SwitchStormProperty, Seed87000AllModesBitIdentical) { run_storm_seed(87000); }
TEST(SwitchStormProperty, Seed88000AllModesBitIdentical) { run_storm_seed(88000); }
TEST(SwitchStormProperty, Seed95000AllModesBitIdentical) { run_storm_seed(95000); }
TEST(SwitchStormProperty, Seed101000AllModesBitIdentical) { run_storm_seed(101000); }

// The batched Legacy path (the pre-existing behaviour) must be wholly
// unaffected by the new machinery: no cache is built, no switch is
// journaled or counted, and parity still holds.
TEST(SwitchStormProperty, LegacyModeBuildsNoCacheAndStaysBitIdentical) {
  auto sc = storm_engine();
  const StreamServerConfig cfg = storm_config(87000);
  StreamServer oracle(*sc, cfg);
  oracle.run_sequential();

  StreamServer legacy(*sc, cfg);  // switch_mode defaults to Legacy
  legacy.run();
  expect_matches_oracle(legacy, oracle);
  EXPECT_EQ(legacy.model_cache(), nullptr);
  EXPECT_EQ(legacy.switches_committed(), 0u);
  EXPECT_EQ(legacy.switches_aborted(), 0u);
}

// Epochs partition each stream's decisions into contiguous runs: the
// epoch is stamped at capture, increments only at a scheduled flip, and
// survives batching untouched — so per-stream epochs are non-decreasing
// in seq order and change exactly at schedule boundaries.
TEST(SwitchStormProperty, EpochLineageIsMonotonePerStream) {
  auto sc = storm_engine();
  const StreamServerConfig cfg = storm_config(88000);
  StreamServerConfig pipe_cfg = cfg;
  pipe_cfg.switch_mode = SwitchMode::Pipelined;
  StreamServer pipe(*sc, pipe_cfg);
  pipe.run();
  for (std::size_t i = 0; i < pipe.stream_count(); ++i) {
    const auto& trace = pipe.stream(i).trace();
    for (std::size_t s = 1; s < trace.size(); ++s) {
      EXPECT_GE(trace[s].epoch, trace[s - 1].epoch)
          << "stream " << i << " seq " << s << ": epoch went backwards";
      EXPECT_GE(trace[s].frame, trace[s - 1].frame);
    }
  }
}

}  // namespace
}  // namespace safecross::serving
