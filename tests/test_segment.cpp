#include "dataset/segment.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace safecross::dataset {
namespace {

VideoSegment make_segment(bool turned, bool blind) {
  VideoSegment s;
  s.turned = turned;
  s.blind_area = blind;
  return s;
}

TEST(Segment, CategoryFromFlags) {
  EXPECT_EQ(make_segment(true, false).category(), SegmentCategory::TurnNoBlind);
  EXPECT_EQ(make_segment(false, false).category(), SegmentCategory::NoTurnNoBlind);
  EXPECT_EQ(make_segment(true, true).category(), SegmentCategory::TurnBlind);
  EXPECT_EQ(make_segment(false, true).category(), SegmentCategory::NoTurnBlind);
}

TEST(Segment, BinaryLabelMatchesPaperConvention) {
  // class 0 = danger (driver waited), class 1 = safe (driver turned)
  EXPECT_EQ(make_segment(false, false).binary_label(), 0);
  EXPECT_EQ(make_segment(true, true).binary_label(), 1);
}

TEST(Segment, CategoryNamesAreDistinct) {
  EXPECT_STRNE(category_name(SegmentCategory::TurnNoBlind),
               category_name(SegmentCategory::NoTurnBlind));
}

TEST(Split811, ProportionsAndDisjointness) {
  const DatasetSplit s = split_811(100, 42);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.val.size(), 10u);
  EXPECT_EQ(s.test.size(), 10u);
  std::vector<std::size_t> all;
  all.insert(all.end(), s.train.begin(), s.train.end());
  all.insert(all.end(), s.val.begin(), s.val.end());
  all.insert(all.end(), s.test.begin(), s.test.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(Split811, SmallCountsStayValid) {
  const DatasetSplit s = split_811(5, 1);
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), 5u);
  EXPECT_GE(s.train.size(), 5u - 2u);
}

TEST(Split811, DeterministicPerSeed) {
  const DatasetSplit a = split_811(50, 7);
  const DatasetSplit b = split_811(50, 7);
  EXPECT_EQ(a.train, b.train);
  const DatasetSplit c = split_811(50, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(CategoryHistogram, CountsAllFour) {
  std::vector<VideoSegment> segs{make_segment(true, false), make_segment(true, false),
                                 make_segment(false, true), make_segment(true, true)};
  const auto hist = category_histogram(segs);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

}  // namespace
}  // namespace safecross::dataset
