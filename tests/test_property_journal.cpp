// Property suite for the write-ahead journal's replay contract, the
// foundation the kill–recover guarantee rests on: for a seeded random
// record sequence, truncating the file at EVERY possible byte length and
// flipping the byte at EVERY offset in the tail must each leave replay()
// returning a valid prefix of the original sequence — never throwing,
// never inventing a record that was not fully appended, and never
// dropping a record whose frame the damage did not reach.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "runtime/journal.h"

namespace safecross::runtime {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir()
      : path(fs::temp_directory_path() /
             ("safecross_pjournal_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

JournalRecord random_record(Rng& rng) {
  JournalRecord rec;
  if (rng.uniform() < 0.15) {
    rec.type = JournalRecordType::ModelSwitch;
    rec.model_switch.weather = static_cast<std::uint8_t>(rng.uniform_int(5));
    rec.model_switch.delay_ms = rng.uniform(0.0, 500.0);
    rec.model_switch.at_decision = rng.next_u64() % 10000;
    return rec;
  }
  rec.type = JournalRecordType::Decision;
  rec.decision.stream = static_cast<std::uint32_t>(rng.uniform_int(8));
  rec.decision.seq = rng.next_u64() % 100000;
  rec.decision.frame = rng.next_u64() % 100000;
  rec.decision.danger_truth = rng.uniform() < 0.5;
  rec.decision.predicted_class = static_cast<std::int32_t>(rng.uniform_int(2));
  rec.decision.prob_danger = static_cast<float>(rng.uniform());
  rec.decision.warn = rng.uniform() < 0.5;
  rec.decision.source = static_cast<std::uint8_t>(rng.uniform_int(6));
  rec.decision.latency_ms = rng.uniform(0.0, 50.0);
  return rec;
}

bool records_equal(const JournalRecord& a, const JournalRecord& b) {
  if (a.type != b.type) return false;
  if (a.type == JournalRecordType::Decision) {
    return a.decision.stream == b.decision.stream && a.decision.seq == b.decision.seq &&
           a.decision.frame == b.decision.frame &&
           a.decision.danger_truth == b.decision.danger_truth &&
           a.decision.predicted_class == b.decision.predicted_class &&
           a.decision.prob_danger == b.decision.prob_danger &&
           a.decision.warn == b.decision.warn && a.decision.source == b.decision.source &&
           a.decision.latency_ms == b.decision.latency_ms;
  }
  return a.model_switch.weather == b.model_switch.weather &&
         a.model_switch.delay_ms == b.model_switch.delay_ms &&
         a.model_switch.at_decision == b.model_switch.at_decision;
}

/// The invariant every damaged replay must satisfy: the result is a
/// prefix of `want` (no phantom, no reorder, no mutation) and at least
/// `intact` records long (no record the damage did not reach may vanish).
void expect_valid_prefix(const Journal::ReplayReport& report,
                         const std::vector<JournalRecord>& want, std::size_t intact) {
  ASSERT_LE(report.records.size(), want.size()) << "replay invented a record";
  ASSERT_GE(report.records.size(), intact) << "replay dropped an undamaged record";
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    ASSERT_TRUE(records_equal(report.records[i], want[i]))
        << "record " << i << " mutated in replay";
  }
}

struct JournalImage {
  std::vector<JournalRecord> records;
  std::string bytes;                 // full on-disk image (header + frames)
  std::vector<std::size_t> bounds;   // byte offset where each frame ends
};

/// Build a journal through the real append path, then read the image back
/// and compute each frame's end offset from encode() (the same function
/// append() uses, pinned by the round-trip suite).
JournalImage build_journal(const fs::path& path, std::uint64_t seed,
                           std::size_t count) {
  JournalImage image;
  Rng rng(seed);
  Journal journal;
  JournalConfig cfg;
  cfg.fsync = FsyncPolicy::None;  // durability is irrelevant in-process
  journal.open(path, cfg);
  std::size_t offset = Journal::kHeaderBytes;
  for (std::size_t i = 0; i < count; ++i) {
    image.records.push_back(random_record(rng));
    journal.append(image.records.back());
    offset += Journal::encode(image.records.back()).size();
    image.bounds.push_back(offset);
  }
  journal.close();
  image.bytes = common::read_file(path);
  EXPECT_EQ(image.bytes.size(), offset);
  return image;
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Frames whose end offset lies at or before `undamaged` bytes survive
/// any damage from `undamaged` onward.
std::size_t frames_before(const JournalImage& image, std::size_t undamaged) {
  std::size_t n = 0;
  while (n < image.bounds.size() && image.bounds[n] <= undamaged) ++n;
  return n;
}

TEST(JournalProperty, TruncationAtEveryLengthYieldsValidPrefix) {
  TempDir tmp;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path path = tmp.path / ("trunc_" + std::to_string(seed) + ".wal");
    const JournalImage image = build_journal(path, seed, /*count=*/10);
    const fs::path cut = tmp.path / "cut.wal";
    for (std::size_t keep = 0; keep <= image.bytes.size(); ++keep) {
      write_bytes(cut, image.bytes.substr(0, keep));
      const auto report = Journal::replay(cut);
      if (keep < Journal::kHeaderBytes) {
        // Not even a header survived: a fresh-start or bad-header report,
        // but still no records and no exception.
        EXPECT_TRUE(report.records.empty()) << "keep=" << keep;
        continue;
      }
      const std::size_t intact = frames_before(image, keep);
      SCOPED_TRACE("keep " + std::to_string(keep));
      expect_valid_prefix(report, image.records, intact);
      // Truncation exactly on a frame boundary is indistinguishable from
      // a clean shutdown: exactly the surviving records, no torn tail.
      if (keep == Journal::kHeaderBytes ||
          (intact > 0 && image.bounds[intact - 1] == keep)) {
        EXPECT_EQ(report.records.size(), intact);
        EXPECT_FALSE(report.torn_tail);
      } else {
        EXPECT_TRUE(report.torn_tail);
        EXPECT_EQ(report.records.size(), intact)
            << "a torn frame must not yield a record";
      }
    }
  }
}

TEST(JournalProperty, ByteFlipAtEveryTailOffsetYieldsValidPrefix) {
  TempDir tmp;
  for (std::uint64_t seed : {55u, 66u, 77u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const fs::path path = tmp.path / ("flip_" + std::to_string(seed) + ".wal");
    const JournalImage image = build_journal(path, seed, /*count=*/8);
    // The "tail" under attack: everything after the first third of the
    // frames — replay must keep at least the frames before the flip.
    const std::size_t tail_start =
        image.bounds.empty() ? Journal::kHeaderBytes : image.bounds[image.bounds.size() / 3];
    const fs::path hit = tmp.path / "hit.wal";
    for (std::size_t offset = tail_start; offset < image.bytes.size(); ++offset) {
      std::string damaged = image.bytes;
      damaged[offset] = static_cast<char>(~static_cast<unsigned char>(damaged[offset]));
      write_bytes(hit, damaged);
      const auto report = Journal::replay(hit);
      SCOPED_TRACE("offset " + std::to_string(offset));
      // Every frame fully before the flipped byte survives; nothing past
      // the first damaged frame is ever returned (CRC gate), so the
      // result is a prefix and at least `intact` long.
      const std::size_t intact = frames_before(image, offset);
      expect_valid_prefix(report, image.records, intact);
      EXPECT_EQ(report.records.size(), intact)
          << "the flipped frame (or one after it) leaked into the replay";
      EXPECT_TRUE(report.torn_tail);
      EXPECT_FALSE(report.tail_error.empty());
    }
  }
}

TEST(JournalProperty, HeaderDamageNeverYieldsRecords) {
  TempDir tmp;
  const fs::path path = tmp.path / "hdr.wal";
  const JournalImage image = build_journal(path, /*seed=*/88, /*count=*/5);
  const fs::path hit = tmp.path / "hdr_hit.wal";
  for (std::size_t offset = 0; offset < Journal::kHeaderBytes; ++offset) {
    std::string damaged = image.bytes;
    damaged[offset] = static_cast<char>(~static_cast<unsigned char>(damaged[offset]));
    write_bytes(hit, damaged);
    const auto report = Journal::replay(hit);
    SCOPED_TRACE("offset " + std::to_string(offset));
    EXPECT_TRUE(report.bad_header);
    EXPECT_TRUE(report.records.empty())
        << "records must never be trusted behind a foreign header";
  }
}

}  // namespace
}  // namespace safecross::runtime
