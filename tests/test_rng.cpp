#include "common/rng.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace safecross {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(13);
  Rng child = a.fork();
  // The child must not replay the parent's sequence.
  Rng b(13);
  b.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 64);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleChangesOrderForLongVectors) {
  Rng rng(15);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const std::vector<int> orig = v;
  shuffle(v, rng);
  EXPECT_NE(v, orig);
}

}  // namespace
}  // namespace safecross
