// Fleet layer (no-kill paths): placement determinism and minimal
// disruption, degrade-before-drop admission control, and live fleet runs
// whose merged per-stream outcomes must be shard-count-invariant — the
// verdict-portability property failover re-placement relies on.
//
// The kill/failover/parity chaos harness lives in test_fleet_chaos.cpp.

#include "fleet/controller.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace safecross::fleet {
namespace {

using dataset::Weather;
using serving::StreamConfig;

ShardSpec tiny_spec() {
  ShardSpec spec;
  spec.engine.model.slow_channels = 4;
  spec.engine.model.fast_channels = 2;
  spec.weathers = {Weather::Daytime, Weather::Rain};
  return spec;
}

/// K streams with skewed traffic (varied decision_stride → varied
/// weight), mixed weathers and cycling priorities.
std::vector<StreamConfig> make_streams(std::size_t k, std::uint64_t base) {
  std::vector<StreamConfig> streams;
  for (std::size_t i = 0; i < k; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i % 2 == 0 ? Weather::Daytime : Weather::Rain;
    s.sim_seed = base + 10 * i;
    s.collector_seed = base + 10 * i + 1;
    s.fault_seed = base + 10 * i + 2;
    s.decision_stride = i % 3 == 0 ? 4 : 8;  // skew: every third stream is 2x hot
    s.priority = static_cast<core::StreamPriority>(i % 3);
    streams.push_back(s);
  }
  return streams;
}

FleetConfig fleet_config(std::size_t k, std::size_t shards, std::uint64_t base) {
  FleetConfig cfg;
  cfg.streams = make_streams(k, base);
  cfg.shards = shards;
  cfg.shard = tiny_spec();
  cfg.serving.frames = 1800;  // Rain streams decide late; 900 is a weak scenario
  cfg.serving.queue_capacity = 2;
  cfg.serving.heartbeat_interval_ms = 1.0;
  cfg.watch_interval_ms = 2.0;
  return cfg;
}

// --- placement ---

TEST(FleetPlacement, PlaceAllIsDeterministicAndCoversShards) {
  const auto streams = make_streams(32, 5000);
  Placer placer(PlacementConfig{});
  const auto a = placer.place_all(streams, 4);
  const auto b = placer.place_all(streams, 4);
  EXPECT_EQ(a, b) << "same seed + same streams must place identically";
  std::set<std::size_t> used(a.begin(), a.end());
  EXPECT_GT(used.size(), 1u) << "32 streams all hashed onto one of 4 shards";
  for (std::size_t shard : a) EXPECT_LT(shard, 4u);

  Placer other(PlacementConfig{.policy = PlacementPolicy::Rendezvous, .seed = 99});
  EXPECT_NE(other.place_all(streams, 4), a)
      << "a different seed should shuffle at least one stream";
}

TEST(FleetPlacement, RendezvousIsMinimallyDisruptiveWhenAShardDies) {
  const auto streams = make_streams(32, 6000);
  Placer placer(PlacementConfig{});
  const std::vector<std::size_t> all = {0, 1, 2, 3};
  const std::vector<std::size_t> without2 = {0, 1, 3};
  const std::vector<double> load(4, 0.0);
  for (const StreamConfig& s : streams) {
    const std::size_t before = placer.place(s.name, all, load);
    const std::size_t after = placer.place(s.name, without2, load);
    if (before != 2) {
      EXPECT_EQ(after, before)
          << s.name << " moved although its shard survived — rendezvous must "
          << "only move the dead shard's streams";
    } else {
      EXPECT_NE(after, 2u);
    }
  }
}

TEST(FleetPlacement, LeastLoadedBalancesSkewedWeights) {
  const auto streams = make_streams(64, 7000);
  Placer placer(PlacementConfig{.policy = PlacementPolicy::LeastLoaded});
  const auto assignment = placer.place_all(streams, 4);
  std::vector<double> load(4, 0.0);
  double heaviest = 0.0;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    load[assignment[i]] += stream_weight(streams[i]);
    heaviest = std::max(heaviest, stream_weight(streams[i]));
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*hi - *lo, heaviest + 1e-9)
      << "greedy least-loaded placement should never spread wider than one stream";
}

// --- admission control ---

TEST(FleetAdmission, CapacityZeroDegradesNothing) {
  auto streams = make_streams(12, 8000);
  Placer placer(PlacementConfig{});
  const auto assignment = placer.place_all(streams, 2);
  const auto report = apply_admission(streams, assignment, 2, AdmissionConfig{});
  EXPECT_EQ(report.streams_degraded, 0u);
  for (const StreamConfig& s : streams) EXPECT_FALSE(s.fleet_degraded);
}

TEST(FleetAdmission, DegradesLowestPriorityFirstAndNeverCritical) {
  auto streams = make_streams(12, 8000);
  Placer placer(PlacementConfig{});
  const auto assignment = placer.place_all(streams, 2);
  // Capacity so tight every shard oversubscribes and must dig past the
  // BestEffort tier into Standard.
  const auto report = apply_admission(streams, assignment, 2, AdmissionConfig{.shard_capacity = 1.0});
  EXPECT_GT(report.streams_degraded, 0u);
  EXPECT_EQ(report.streams_degraded, report.degraded_streams.size());
  std::size_t standard_degraded = 0;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (streams[i].priority == core::StreamPriority::Critical) {
      EXPECT_FALSE(streams[i].fleet_degraded) << "Critical streams are never degraded";
    }
    if (streams[i].fleet_degraded && streams[i].priority == core::StreamPriority::Standard) {
      ++standard_degraded;
    }
  }
  // A Standard stream may only be degraded on a shard whose BestEffort
  // tier was already fully sacrificed.
  if (standard_degraded > 0) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].priority != core::StreamPriority::BestEffort) continue;
      if (streams[i].fleet_degraded) continue;
      // This untouched BestEffort stream's shard must not have degraded
      // any Standard stream.
      for (std::size_t j = 0; j < streams.size(); ++j) {
        if (assignment[j] == assignment[i] &&
            streams[j].priority == core::StreamPriority::Standard) {
          EXPECT_FALSE(streams[j].fleet_degraded)
              << streams[j].name << " (Standard) degraded while " << streams[i].name
              << " (BestEffort, same shard) kept full fidelity";
        }
      }
    }
  }

  auto again = make_streams(12, 8000);
  const auto report2 = apply_admission(again, assignment, 2, AdmissionConfig{.shard_capacity = 1.0});
  EXPECT_EQ(report.degraded_streams, report2.degraded_streams) << "admission must be deterministic";
}

// --- live fleet runs (no kill) ---

TEST(FleetController, NoKillRunReconcilesAndHeartbeats) {
  FleetController fleet(fleet_config(6, 2, 41000));
  fleet.run();
  const FleetReport& report = fleet.report();
  ASSERT_EQ(report.streams.size(), 6u);
  EXPECT_TRUE(report.reconciled()) << "no-kill fleet failed window/decision reconciliation";
  EXPECT_EQ(report.failovers.size(), 0u);
  EXPECT_EQ(fleet.kills_fired(), 0u);
  EXPECT_EQ(report.windows_shed_total, 0u);
  EXPECT_GT(report.decisions_total, 0u);
  for (std::size_t i = 0; i < report.streams.size(); ++i) {
    const StreamResult& s = report.streams[i];
    EXPECT_EQ(s.moves, 0u);
    EXPECT_EQ(s.first_shard, s.final_shard);
    // Rain scenes may legitimately never surface a waiting subject, so
    // only the Daytime streams are required to have decided.
    if (i % 2 == 0) EXPECT_GT(s.decisions, 0u) << s.name << " never decided";
  }
  for (const ShardSummary& sh : report.shards) {
    if (sh.incarnations == 0) continue;  // shard was never placed a stream
    EXPECT_GT(sh.beats_published, 0u) << "shard " << sh.id << " never heartbeat";
    EXPECT_EQ(sh.windows_shed, 0u);
  }
}

TEST(FleetController, MergedOutcomeIsShardCountInvariant) {
  FleetController one(fleet_config(5, 1, 43000));
  FleetController three(fleet_config(5, 3, 43000));
  one.run();
  three.run();
  const FleetReport& a = one.report();
  const FleetReport& b = three.report();
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    const StreamResult& x = a.streams[i];
    const StreamResult& y = b.streams[i];
    SCOPED_TRACE(x.name);
    EXPECT_EQ(x.frames_run, y.frames_run);
    EXPECT_EQ(x.windows_produced, y.windows_produced);
    ASSERT_EQ(x.trace.size(), y.trace.size());
    for (std::size_t s = 0; s < x.trace.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(x.trace[s].frame, y.trace[s].frame);
      EXPECT_EQ(x.trace[s].predicted_class, y.trace[s].predicted_class);
      EXPECT_EQ(x.trace[s].prob_danger, y.trace[s].prob_danger)
          << "verdicts must not depend on which shard served the stream";
      EXPECT_EQ(x.trace[s].warn, y.trace[s].warn);
      EXPECT_EQ(x.trace[s].source, y.trace[s].source);
    }
  }
}

TEST(FleetController, DegradedStreamAnswersEveryDecisionConservatively) {
  FleetConfig cfg = fleet_config(6, 2, 47000);
  cfg.admission.shard_capacity = 1.0;  // every shard oversubscribed
  FleetController fleet(cfg);
  fleet.run();
  const FleetReport& report = fleet.report();
  EXPECT_GT(report.streams_degraded, 0u);
  EXPECT_TRUE(report.reconciled())
      << "degradation must change fidelity, never drop a window";
  bool saw_degraded = false;
  for (const StreamResult& s : report.streams) {
    if (!s.degraded) {
      EXPECT_EQ(s.degraded_decisions, 0u) << s.name;
      continue;
    }
    saw_degraded = true;
    EXPECT_NE(s.priority, core::StreamPriority::Critical);
    EXPECT_GT(s.decisions, 0u);
    // No fault plan in this scenario, so every gate that would have been
    // Model is FleetDegraded — and each one is a conservative warn.
    EXPECT_EQ(s.degraded_decisions, s.decisions) << s.name;
    EXPECT_EQ(s.model_decisions, 0u) << s.name;
    EXPECT_EQ(s.warnings, s.decisions) << s.name;
    for (const serving::DecisionRecord& rec : s.trace) {
      ASSERT_EQ(rec.source, runtime::DecisionSource::FleetDegraded);
      ASSERT_TRUE(rec.warn);
    }
  }
  EXPECT_TRUE(saw_degraded);
}

// --- misuse stays loud ---

TEST(FleetController, MisuseThrows) {
  FleetConfig cfg = fleet_config(2, 2, 49000);
  cfg.streams.clear();
  EXPECT_THROW(FleetController{cfg}, std::invalid_argument);

  FleetConfig no_shards = fleet_config(2, 2, 49000);
  no_shards.shards = 0;
  EXPECT_THROW(FleetController{no_shards}, std::invalid_argument);

  FleetConfig faulty = fleet_config(2, 2, 49000);
  faulty.fault.enabled = true;  // no durability_root → nothing to recover
  EXPECT_THROW(FleetController{faulty}, std::invalid_argument);

  FleetConfig ok = fleet_config(2, 1, 49000);
  ok.serving.frames = 120;
  FleetController fleet(ok);
  fleet.run();
  EXPECT_THROW(fleet.run(), std::logic_error);
}

}  // namespace
}  // namespace safecross::fleet
