#include "vision/background_subtraction.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

// A moving 3x3 bright block over a dark scene.
Image frame_with_block(int w, int h, int bx, int by) {
  Image img(w, h, 0.1f);
  for (int y = by; y < by + 3 && y < h; ++y) {
    for (int x = bx; x < bx + 3 && x < w; ++x) img.at(x, y) = 0.9f;
  }
  return img;
}

TEST(BackgroundSubtraction, WarmupProducesEmptyMask) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 5;
  RunningAverageBackground bg(cfg);
  for (int i = 0; i < 5; ++i) {
    const Image mask = bg.apply(Image(16, 16, 0.1f));
    EXPECT_EQ(mask.count_above(0.5f), 0u) << "frame " << i;
  }
}

TEST(BackgroundSubtraction, DetectsMovingBlock) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 5;
  cfg.apply_opening = false;
  RunningAverageBackground bg(cfg);
  for (int i = 0; i < 10; ++i) bg.apply(Image(32, 16, 0.1f));
  // A block appears where the background was flat.
  const Image mask = bg.apply(frame_with_block(32, 16, 10, 6));
  EXPECT_GE(mask.count_above(0.5f), 6u);
  EXPECT_FLOAT_EQ(mask.at(11, 7), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(2, 2), 0.0f);
}

TEST(BackgroundSubtraction, StationaryObjectMeltsIntoBackground) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 2;
  cfg.learning_rate = 0.2f;
  cfg.apply_opening = false;
  RunningAverageBackground bg(cfg);
  for (int i = 0; i < 5; ++i) bg.apply(Image(16, 16, 0.1f));
  // The same block parked for many frames fades from the mask.
  std::size_t last = 0;
  for (int i = 0; i < 60; ++i) last = bg.apply(frame_with_block(16, 16, 5, 5)).count_above(0.5f);
  EXPECT_EQ(last, 0u);
}

TEST(BackgroundSubtraction, StaticBackgroundKeepsDetectingParkedObject) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 3;
  cfg.apply_opening = false;
  StaticBackground bg(cfg);
  for (int i = 0; i < 5; ++i) bg.apply(Image(16, 16, 0.1f));
  std::size_t last = 0;
  for (int i = 0; i < 60; ++i) last = bg.apply(frame_with_block(16, 16, 5, 5)).count_above(0.5f);
  EXPECT_GE(last, 6u);  // static model never absorbs it
}

TEST(BackgroundSubtraction, OpeningSuppressesSinglePixelNoise) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 2;
  cfg.apply_opening = true;
  RunningAverageBackground bg(cfg);
  for (int i = 0; i < 5; ++i) bg.apply(Image(16, 16, 0.1f));
  Image noisy(16, 16, 0.1f);
  noisy.at(8, 8) = 0.9f;  // single-pixel "sensor noise"
  const Image mask = bg.apply(noisy);
  EXPECT_EQ(mask.count_above(0.5f), 0u);
}

TEST(BackgroundSubtraction, ResetForgetsBackground) {
  RunningAverageBackground bg;
  bg.apply(Image(8, 8, 0.5f));
  EXPECT_FALSE(bg.background().empty());
  bg.reset();
  EXPECT_TRUE(bg.background().empty());
  EXPECT_EQ(bg.frames_seen(), 0);
}

TEST(BackgroundSubtraction, DynamicBackgroundTracksIlluminationDrift) {
  BackgroundSubtractionConfig cfg;
  cfg.warmup_frames = 2;
  cfg.learning_rate = 0.1f;
  cfg.apply_opening = false;
  RunningAverageBackground bg(cfg);
  // Slowly brightening scene (dawn): no foreground should fire.
  std::size_t false_positives = 0;
  for (int i = 0; i < 100; ++i) {
    const float level = 0.1f + 0.003f * static_cast<float>(i);
    false_positives += bg.apply(Image(16, 16, level)).count_above(0.5f);
  }
  EXPECT_EQ(false_positives, 0u);
}

}  // namespace
}  // namespace safecross::vision
