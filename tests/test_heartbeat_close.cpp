// HeartbeatChannel close semantics — the pinning tests heartbeat.h
// points at. close() is a *publisher-side seal*: beats already buffered
// must survive and stay drainable (the controller's last look at a
// finished shard sees the final beats, not an empty channel), while
// publish() after close is a silent no-op — it returns false, buffers
// nothing, and moves neither beats_published() nor beats_evicted(). A
// dying shard's late beat must never masquerade as an eviction.

#include "runtime/heartbeat.h"

#include <gtest/gtest.h>

namespace safecross::runtime {
namespace {

Heartbeat beat(std::uint64_t seq) {
  Heartbeat hb;
  hb.shard = 1;
  hb.seq = seq;
  hb.decisions = seq * 2;
  return hb;
}

TEST(HeartbeatClose, BufferedBeatsSurviveCloseOldestFirst) {
  HeartbeatChannel ch(8);
  EXPECT_TRUE(ch.publish(beat(0)));
  EXPECT_TRUE(ch.publish(beat(1)));
  EXPECT_TRUE(ch.publish(beat(2)));
  ch.close();
  ASSERT_TRUE(ch.closed());
  for (std::uint64_t want = 0; want < 3; ++want) {
    auto hb = ch.take();
    ASSERT_TRUE(hb.has_value()) << "beats buffered at close must stay drainable";
    EXPECT_EQ(hb->seq, want) << "drain order is publish order";
  }
  EXPECT_FALSE(ch.take().has_value());
}

TEST(HeartbeatClose, PublishAfterCloseIsASilentNoOp) {
  HeartbeatChannel ch(8);
  ch.publish(beat(0));
  ch.close();
  const std::size_t published = ch.beats_published();
  const std::size_t evicted = ch.beats_evicted();
  EXPECT_FALSE(ch.publish(beat(1))) << "publish-after-close reports failure";
  EXPECT_EQ(ch.beats_published(), published) << "nothing counted";
  EXPECT_EQ(ch.beats_evicted(), evicted)
      << "a dying shard's late beat must not masquerade as an eviction";
  auto hb = ch.take();
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->seq, 0u) << "only the pre-close beat is buffered";
  EXPECT_FALSE(ch.take().has_value());
}

TEST(HeartbeatClose, DrainLatestAfterCloseSeesTheFinalBeat) {
  HeartbeatChannel ch(8);
  for (std::uint64_t s = 0; s < 5; ++s) ch.publish(beat(s));
  ch.close();
  auto latest = ch.drain_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->seq, 4u) << "the controller's last look gets the freshest beat";
  EXPECT_FALSE(ch.drain_latest().has_value());
}

TEST(HeartbeatClose, EvictionBeforeCloseStillCounts) {
  HeartbeatChannel ch(2);
  EXPECT_TRUE(ch.publish(beat(0)));
  EXPECT_TRUE(ch.publish(beat(1)));
  EXPECT_FALSE(ch.publish(beat(2))) << "a full channel evicts the oldest";
  EXPECT_EQ(ch.beats_evicted(), 1u);
  ch.close();
  auto hb = ch.take();
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->seq, 1u) << "seq 0 was the eviction victim";
}

}  // namespace
}  // namespace safecross::runtime
