#include "vision/homography.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

TEST(Homography, IdentityByDefault) {
  const Homography h;
  const Point2 p = h.apply({3.0, 4.0});
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
}

TEST(Homography, FitsExactAffineMap) {
  // dst = 2*src + (10, -5)
  std::vector<Point2> src{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}};
  std::vector<Point2> dst;
  for (const auto& p : src) dst.push_back({2 * p.x + 10, 2 * p.y - 5});
  const Homography h = Homography::fit(src, dst);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Point2 q = h.apply(src[i]);
    EXPECT_NEAR(q.x, dst[i].x, 1e-9);
    EXPECT_NEAR(q.y, dst[i].y, 1e-9);
  }
}

TEST(Homography, FitsPerspectiveTrapezoid) {
  // Square to trapezoid — a genuine projective map.
  std::vector<Point2> src{{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  std::vector<Point2> dst{{25, 0}, {75, 0}, {0, 100}, {100, 100}};
  const Homography h = Homography::fit(src, dst);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Point2 q = h.apply(src[i]);
    EXPECT_NEAR(q.x, dst[i].x, 1e-6);
    EXPECT_NEAR(q.y, dst[i].y, 1e-6);
  }
  // Midpoints move according to perspective, not linearly: the far-edge
  // midpoint stays at x=50 but interior points shift.
  const Point2 mid = h.apply({50, 50});
  EXPECT_NEAR(mid.x, 50.0, 1e-6);
  // Units near the camera (bottom) take more image rows, so the world
  // midpoint appears above the image midline.
  EXPECT_LT(mid.y, 50.0);
}

TEST(Homography, InverseRoundTrips) {
  std::vector<Point2> src{{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  std::vector<Point2> dst{{25, 10}, {75, 5}, {-3, 100}, {110, 95}};
  const Homography h = Homography::fit(src, dst);
  const Homography inv = h.inverse();
  for (const Point2 p : {Point2{13.0, 57.0}, Point2{88.0, 22.0}}) {
    const Point2 q = inv.apply(h.apply(p));
    EXPECT_NEAR(q.x, p.x, 1e-6);
    EXPECT_NEAR(q.y, p.y, 1e-6);
  }
}

TEST(Homography, ComposeAppliesRightThenLeft) {
  const Homography scale({2, 0, 0, 0, 2, 0, 0, 0, 1});
  const Homography shift({1, 0, 5, 0, 1, -2, 0, 0, 1});
  const Point2 p = (shift * scale).apply({3, 3});
  EXPECT_DOUBLE_EQ(p.x, 11.0);  // 3*2 + 5
  EXPECT_DOUBLE_EQ(p.y, 4.0);   // 3*2 - 2
}

TEST(Homography, FitRejectsTooFewPoints) {
  std::vector<Point2> three{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_THROW(Homography::fit(three, three), std::invalid_argument);
}

TEST(Homography, FitRejectsDegenerateConfiguration) {
  // All collinear points cannot determine a homography.
  std::vector<Point2> src{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  EXPECT_THROW(Homography::fit(src, src), std::runtime_error);
}

TEST(Homography, WarpIdentityCopiesImage) {
  Image img(8, 6, 0.0f);
  img.at(3, 2) = 1.0f;
  const Image out = Homography().warp(img, 8, 6);
  EXPECT_FLOAT_EQ(out.at(3, 2), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
}

TEST(Homography, WarpScalesContent) {
  // Map src -> dst with 2x scale: a pixel at (2,2) lands at (4,4).
  const Homography scale({2, 0, 0, 0, 2, 0, 0, 0, 1});
  Image img(8, 8, 0.0f);
  img.at(2, 2) = 1.0f;
  const Image out = scale.warp(img, 16, 16);
  EXPECT_GT(out.at(4, 4), 0.5f);
}

TEST(Homography, WarpLeavesUnmappedPixelsZero) {
  const Homography shift({1, 0, 100, 0, 1, 100, 0, 0, 1});
  const Image out = shift.warp(Image(8, 8, 1.0f), 8, 8);
  EXPECT_EQ(out.count_above(0.5f), 0u);
}

}  // namespace
}  // namespace safecross::vision
