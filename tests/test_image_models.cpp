// ResNet-lite and Inception-lite: structural tests plus numerical
// gradient checks of the skip-connection and branch-concat plumbing —
// the two graph topologies the Sequential container cannot express.

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "models/inception_lite.h"
#include "models/resnet_lite.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace safecross::models {
namespace {

using nn::Tensor;
using testing::check_gradients;
using testing::random_tensor;

ResNetLiteConfig small_resnet() {
  ResNetLiteConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 1;
  return cfg;
}

InceptionLiteConfig small_inception() {
  InceptionLiteConfig cfg;
  cfg.branch_channels = 3;
  cfg.blocks = 2;
  return cfg;
}

TEST(ResNetLite, OutputShape) {
  ResNetLite model(small_resnet());
  const Tensor out = model.forward(random_tensor({3, 1, 16, 24}, 1), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 3}));
}

TEST(ResNetLite, GradCheckThroughSkipConnections) {
  ResNetLite model(small_resnet());
  check_gradients(
      [&](const Tensor& x) { return model.forward(x, true); },
      [&](const Tensor& g) {
        model.backward(g);
        return Tensor({1}, 0.0f);
      },
      model.params(), random_tensor({2, 1, 8, 10}, 2), 2e-4, 8e-2, 12);
}

TEST(ResNetLite, CloneMatchesAndDiverges) {
  ResNetLite model(small_resnet());
  auto copy = model.clone();
  const Tensor x = random_tensor({1, 1, 16, 24}, 3);
  const Tensor y1 = model.forward(x, false);
  const Tensor y2 = copy->forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  model.params()[0]->value[0] += 1.0f;
  EXPECT_NE(model.params()[0]->value[0], copy->params()[0]->value[0]);
}

TEST(ResNetLite, LearnsBrightnessToy) {
  ResNetLiteConfig cfg = small_resnet();
  cfg.num_classes = 2;
  ResNetLite model(cfg);
  Tensor x({4, 1, 8, 8}, 0.0f);
  const std::vector<int> labels{0, 1, 0, 1};
  for (int n = 0; n < 4; ++n) {
    for (int i = 0; i < 64; ++i) {
      x[static_cast<std::size_t>(n) * 64 + i] = labels[n] == 1 ? 0.9f : 0.1f;
    }
  }
  nn::SoftmaxCrossEntropy ce;
  nn::SGD opt(model.params(), 0.05f, 0.9f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    for (nn::Param* p : model.params()) p->zero_grad();
    const Tensor scores = model.forward(x, true);
    const float loss = ce.forward(scores, labels);
    if (step == 0) first = loss;
    last = loss;
    model.backward(ce.grad());
    opt.step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(ResNetLite, DeeperConfigHasMoreParams) {
  ResNetLiteConfig shallow = small_resnet();
  ResNetLiteConfig deep = small_resnet();
  deep.blocks_per_stage = 3;
  ResNetLite a(shallow), b(deep);
  EXPECT_GT(nn::param_count(b.params()), nn::param_count(a.params()));
}

TEST(InceptionLite, OutputShape) {
  InceptionLite model(small_inception());
  const Tensor out = model.forward(random_tensor({2, 1, 16, 24}, 4), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 3}));
}

TEST(InceptionLite, GradCheckThroughBranchConcat) {
  InceptionLiteConfig cfg = small_inception();
  cfg.blocks = 1;  // keep the numeric check cheap
  InceptionLite model(cfg);
  check_gradients(
      [&](const Tensor& x) { return model.forward(x, true); },
      [&](const Tensor& g) {
        model.backward(g);
        return Tensor({1}, 0.0f);
      },
      model.params(), random_tensor({2, 1, 8, 10}, 5), 2e-4, 8e-2, 12);
}

TEST(InceptionLite, CloneMatches) {
  InceptionLite model(small_inception());
  auto copy = model.clone();
  const Tensor x = random_tensor({1, 1, 16, 24}, 6);
  const Tensor y1 = model.forward(x, false);
  const Tensor y2 = copy->forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(InceptionLite, BlockOutputChannelsAreThreeBranches) {
  InceptionBlock block(8, 5);
  EXPECT_EQ(block.out_channels(), 15);
  Tensor x = random_tensor({1, 8, 6, 6}, 7);
  const Tensor y = block.forward(x, false);
  EXPECT_EQ(y.dim(1), 15);
  EXPECT_EQ(y.dim(2), 6);  // all branches preserve spatial dims
}

TEST(InceptionLite, LearnsBrightnessToy) {
  InceptionLiteConfig cfg = small_inception();
  cfg.num_classes = 2;
  cfg.blocks = 1;
  InceptionLite model(cfg);
  Tensor x({4, 1, 8, 8}, 0.0f);
  const std::vector<int> labels{0, 1, 0, 1};
  for (int n = 0; n < 4; ++n) {
    for (int i = 0; i < 64; ++i) {
      x[static_cast<std::size_t>(n) * 64 + i] = labels[n] == 1 ? 0.9f : 0.1f;
    }
  }
  nn::SoftmaxCrossEntropy ce;
  nn::SGD opt(model.params(), 0.05f, 0.9f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    for (nn::Param* p : model.params()) p->zero_grad();
    const Tensor scores = model.forward(x, true);
    const float loss = ce.forward(scores, labels);
    if (step == 0) first = loss;
    last = loss;
    model.backward(ce.grad());
    opt.step();
  }
  EXPECT_LT(last, first * 0.5f);
}

}  // namespace
}  // namespace safecross::models
