#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace safecross::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3});
  logits[0] = 1;
  logits[1] = 2;
  logits[2] = 3;
  logits[3] = -1;
  logits[4] = 0;
  logits[5] = 1;
  const Tensor p = softmax(logits);
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += p[r * 3 + c];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(p[2], p[0]);  // larger logit, larger prob
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2});
  logits[0] = 1000.0f;
  logits[1] = 999.0f;
  const Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-6);
  EXPECT_GT(p[0], p[1]);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy ce;
  const float loss = ce.forward(Tensor({2, 4}, 0.0f), {1, 2});
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 2});
  logits[0] = 20.0f;
  logits[1] = -20.0f;
  SoftmaxCrossEntropy ce;
  EXPECT_NEAR(ce.forward(logits, {0}), 0.0f, 1e-4);
}

TEST(SoftmaxCrossEntropy, GradMatchesSoftmaxMinusOnehot) {
  Tensor logits({1, 3});
  logits[0] = 0.5f;
  logits[1] = -0.2f;
  logits[2] = 0.1f;
  SoftmaxCrossEntropy ce;
  ce.forward(logits, {2});
  const Tensor p = softmax(logits);
  const Tensor g = ce.grad();
  EXPECT_NEAR(g[0], p[0], 1e-6);
  EXPECT_NEAR(g[1], p[1], 1e-6);
  EXPECT_NEAR(g[2], p[2] - 1.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradMatchesNumericalDerivative) {
  Tensor logits({2, 3});
  for (std::size_t i = 0; i < 6; ++i) logits[i] = 0.1f * static_cast<float>(i) - 0.2f;
  const std::vector<int> labels{2, 0};
  SoftmaxCrossEntropy ce;
  ce.forward(logits, labels);
  const Tensor g = ce.grad();
  const double h = 1e-3;
  for (std::size_t i = 0; i < 6; ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(h);
    lm[i] -= static_cast<float>(h);
    SoftmaxCrossEntropy tmp;
    const double num = (tmp.forward(lp, labels) - tmp.forward(lm, labels)) / (2 * h);
    EXPECT_NEAR(g[i], num, 1e-4);
  }
}

TEST(SoftmaxCrossEntropy, TracksPredictions) {
  Tensor logits({2, 2});
  logits[0] = 1.0f;
  logits[1] = 0.0f;
  logits[2] = -1.0f;
  logits[3] = 4.0f;
  SoftmaxCrossEntropy ce;
  ce.forward(logits, {0, 1});
  EXPECT_EQ(ce.predictions(), (std::vector<int>{0, 1}));
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.forward(Tensor({1, 2}), {5}), std::out_of_range);
  EXPECT_THROW(ce.forward(Tensor({2, 2}), {0}), std::invalid_argument);
}

TEST(MulticlassHinge, ZeroLossBeyondMargin) {
  Tensor scores({1, 3});
  scores[0] = 5.0f;
  scores[1] = 0.0f;
  scores[2] = 1.0f;
  MulticlassHinge hinge(1.0f);
  EXPECT_FLOAT_EQ(hinge.forward(scores, {0}), 0.0f);
  const Tensor g = hinge.grad();
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(g[i], 0.0f);
}

TEST(MulticlassHinge, PenalizesMarginViolations) {
  Tensor scores({1, 3});
  scores[0] = 1.0f;  // correct class
  scores[1] = 0.5f;  // violates margin (1 + 0.5 - 1 = 0.5)
  scores[2] = -2.0f;
  MulticlassHinge hinge(1.0f);
  EXPECT_NEAR(hinge.forward(scores, {0}), 0.5f, 1e-6);
  const Tensor g = hinge.grad();
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[0], -1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(MulticlassHinge, GradMatchesNumericalDerivative) {
  Tensor scores({2, 3});
  for (std::size_t i = 0; i < 6; ++i) scores[i] = 0.3f * static_cast<float>(i) - 0.7f;
  const std::vector<int> labels{1, 2};
  MulticlassHinge hinge;
  hinge.forward(scores, labels);
  const Tensor g = hinge.grad();
  const double h = 1e-3;
  for (std::size_t i = 0; i < 6; ++i) {
    Tensor sp = scores, sm = scores;
    sp[i] += static_cast<float>(h);
    sm[i] -= static_cast<float>(h);
    MulticlassHinge tmp;
    const double num = (tmp.forward(sp, labels) - tmp.forward(sm, labels)) / (2 * h);
    EXPECT_NEAR(g[i], num, 1e-3);
  }
}

TEST(MeanSquaredError, LossAndGrad) {
  Tensor pred({2}), target({2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  target[0] = 0.0f;
  target[1] = 5.0f;
  MeanSquaredError mse;
  EXPECT_NEAR(mse.forward(pred, target), (1.0f + 4.0f) / 2.0f, 1e-6);
  const Tensor g = mse.grad();
  EXPECT_NEAR(g[0], 1.0f, 1e-6);   // 2*(1-0)/2
  EXPECT_NEAR(g[1], -2.0f, 1e-6);  // 2*(3-5)/2
}

}  // namespace
}  // namespace safecross::nn
