// Property-based tests of the nn substrate, swept with TEST_P.

#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace safecross::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-2, 2));
  return t;
}

// ---------- Conv geometry sweep: forward/backward shape contracts ----------

struct ConvCase {
  int in_c, out_c, kernel, stride, pad, h, w;
};

class Conv2DGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv2DGeometry, ShapesAndGradientsConsistent) {
  const ConvCase c = GetParam();
  Conv2DConfig cfg;
  cfg.in_channels = c.in_c;
  cfg.out_channels = c.out_c;
  cfg.kernel = c.kernel;
  cfg.stride = c.stride;
  cfg.padding = c.pad;
  Conv2D conv(cfg);
  Rng rng(1);
  init_params(conv.params(), rng);

  const Tensor x = random_tensor({2, c.in_c, c.h, c.w}, 2);
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), c.out_c);
  EXPECT_EQ(y.dim(2), Conv2D::out_size(c.h, c.kernel, c.stride, c.pad));
  EXPECT_EQ(y.dim(3), Conv2D::out_size(c.w, c.kernel, c.stride, c.pad));

  const Tensor g = conv.backward(random_tensor(y.shape(), 3));
  EXPECT_EQ(g.shape(), x.shape());
  // Bias gradient equals the sum of the output gradient per channel
  // (checked loosely: nonzero for a random gradient).
  EXPECT_NE(conv.params()[1]->grad.sum(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Conv2DGeometry,
                         ::testing::Values(ConvCase{1, 4, 3, 1, 1, 9, 11},
                                           ConvCase{3, 2, 3, 2, 1, 12, 16},
                                           ConvCase{2, 5, 1, 1, 0, 7, 7},
                                           ConvCase{4, 4, 5, 2, 2, 15, 13},
                                           ConvCase{1, 1, 3, 3, 0, 9, 12}));

struct Conv3DCase {
  int in_c, out_c, kt, ks, st, ss, pt, ps, t, h, w;
};

class Conv3DGeometry : public ::testing::TestWithParam<Conv3DCase> {};

TEST_P(Conv3DGeometry, ShapesAndGradientsConsistent) {
  const Conv3DCase c = GetParam();
  Conv3DConfig cfg;
  cfg.in_channels = c.in_c;
  cfg.out_channels = c.out_c;
  cfg.kernel_t = c.kt;
  cfg.kernel_s = c.ks;
  cfg.stride_t = c.st;
  cfg.stride_s = c.ss;
  cfg.pad_t = c.pt;
  cfg.pad_s = c.ps;
  Conv3D conv(cfg);
  Rng rng(4);
  init_params(conv.params(), rng);

  const Tensor x = random_tensor({2, c.in_c, c.t, c.h, c.w}, 5);
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.dim(1), c.out_c);
  EXPECT_EQ(y.dim(2), Conv3D::out_size(c.t, c.kt, c.st, c.pt));
  EXPECT_EQ(y.dim(3), Conv3D::out_size(c.h, c.ks, c.ss, c.ps));
  EXPECT_EQ(y.dim(4), Conv3D::out_size(c.w, c.ks, c.ss, c.ps));
  const Tensor g = conv.backward(random_tensor(y.shape(), 6));
  EXPECT_EQ(g.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Conv3DGeometry,
                         ::testing::Values(Conv3DCase{1, 2, 3, 3, 1, 1, 1, 1, 8, 6, 9},
                                           Conv3DCase{2, 3, 1, 3, 1, 2, 0, 1, 4, 10, 12},
                                           Conv3DCase{1, 2, 5, 1, 1, 1, 2, 0, 12, 5, 5},
                                           Conv3DCase{2, 2, 4, 1, 4, 1, 0, 0, 16, 4, 6},
                                           Conv3DCase{3, 1, 3, 3, 2, 2, 1, 1, 9, 9, 9}));

// ---------- Softmax invariants over random logits ----------

class SoftmaxLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftmaxLaws, RowsAreDistributions) {
  const Tensor logits = random_tensor({5, 7}, GetParam());
  const Tensor p = softmax(logits);
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 7; ++c) {
      const float v = p[static_cast<std::size_t>(r) * 7 + c];
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(SoftmaxLaws, InvariantToLogitShift) {
  const Tensor logits = random_tensor({3, 4}, GetParam() ^ 0x55);
  Tensor shifted = logits;
  for (std::size_t i = 0; i < shifted.numel(); ++i) shifted[i] += 123.0f;
  const Tensor a = softmax(logits);
  const Tensor b = softmax(shifted);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxLaws, ::testing::Values(11u, 22u, 33u, 44u));

// ---------- BatchNorm normalizes arbitrary channel counts/shapes ----------

class BatchNormLaws : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BatchNormLaws, TrainingOutputIsStandardizedPerChannel) {
  const auto [channels, spatial, seed] = GetParam();
  BatchNorm bn(channels);
  const Tensor x = random_tensor({6, channels, spatial}, seed);
  const Tensor y = bn.forward(x, true);
  for (int c = 0; c < channels; ++c) {
    double sum = 0.0, sq = 0.0;
    int n = 0;
    for (int b = 0; b < 6; ++b) {
      for (int s = 0; s < spatial; ++s) {
        const float v = y[(static_cast<std::size_t>(b) * channels + c) * spatial + s];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++n;
      }
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / n - mean * mean, 1.0, 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchNormLaws,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(4, 25),
                                            ::testing::Values(7u, 8u)));

// ---------- Serialization round trip over random layer stacks ----------

class SerializeRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SerializeRoundTrip, ValuesSurvive) {
  const auto [in_f, out_f, seed] = GetParam();
  Linear a(in_f, out_f), b(in_f, out_f);
  Rng rng(seed);
  init_params(a.params(), rng);
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_EQ(ss.str().size(), serialized_size(a.params()));
  load_params(ss, b.params());
  for (std::size_t p = 0; p < a.params().size(); ++p) {
    for (std::size_t i = 0; i < a.params()[p]->value.numel(); ++i) {
      EXPECT_FLOAT_EQ(a.params()[p]->value[i], b.params()[p]->value[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerializeRoundTrip,
                         ::testing::Combine(::testing::Values(1, 7, 30),
                                            ::testing::Values(1, 5, 13),
                                            ::testing::Values(1u, 2u)));

// ---------- Optimizers make progress on random quadratics ----------

class OptimizerProgress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerProgress, SgdAndAdamReduceRandomQuadratic) {
  Rng rng(GetParam());
  // f(x) = sum_i a_i (x_i - t_i)^2 with random positive a and targets t.
  const int n = 8;
  std::vector<float> a(n), t(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.uniform(0.5, 2.0));
    t[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
  }
  auto loss_of = [&](const Tensor& x) {
    double l = 0.0;
    for (int i = 0; i < n; ++i) l += a[i] * (x[i] - t[i]) * (x[i] - t[i]);
    return l;
  };
  for (const bool use_adam : {false, true}) {
    Param p(Tensor({n}, 0.0f));
    std::unique_ptr<Optimizer> opt;
    if (use_adam) {
      opt = std::make_unique<Adam>(std::vector<Param*>{&p}, 0.1f);
    } else {
      opt = std::make_unique<SGD>(std::vector<Param*>{&p}, 0.05f, 0.9f);
    }
    const double initial = loss_of(p.value);
    for (int step = 0; step < 150; ++step) {
      opt->zero_grad();
      for (int i = 0; i < n; ++i) p.grad[i] = 2.0f * a[i] * (p.value[i] - t[i]);
      opt->step();
    }
    EXPECT_LT(loss_of(p.value), initial * 0.05) << (use_adam ? "adam" : "sgd");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProgress, ::testing::Values(3u, 5u, 7u, 9u));

}  // namespace
}  // namespace safecross::nn
