// Behavioural layer tests (shapes, modes, caching) complementing the
// numerical gradient checks in test_gradcheck.cpp.

#include <gtest/gtest.h>

#include <cstdlib>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace safecross::nn {
namespace {

using testing::random_tensor;

TEST(Conv2D, OutputShape) {
  Conv2DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 8;
  cfg.kernel = 3;
  cfg.stride = 2;
  cfg.padding = 1;
  Conv2D conv(cfg);
  const Tensor out = conv.forward(Tensor({2, 3, 16, 20}), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 8, 8, 10}));
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Conv2D conv(Conv2DConfig{});
  EXPECT_THROW(conv.forward(Tensor({1, 3, 8, 8}), false), std::invalid_argument);
}

TEST(Conv2D, KernelOneActsPointwise) {
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = 1;
  cfg.padding = 0;
  Conv2D conv(cfg);
  conv.weight().value[0] = 2.0f;
  conv.params()[1]->value[0] = 0.5f;  // bias
  Tensor in({1, 1, 2, 2}, 3.0f);
  const Tensor out = conv.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 6.5f);
}

TEST(Conv3D, OutputShapeWithTemporalStride) {
  Conv3DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 4;
  cfg.kernel_t = 8;
  cfg.kernel_s = 1;
  cfg.stride_t = 8;
  cfg.pad_t = 0;
  cfg.pad_s = 0;
  Conv3D conv(cfg);
  const Tensor out = conv.forward(Tensor({1, 1, 32, 6, 9}), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 4, 4, 6, 9}));
}

TEST(Conv3D, EmptyOutputRejected) {
  Conv3DConfig cfg;
  cfg.kernel_t = 5;
  cfg.pad_t = 0;
  Conv3D conv(cfg);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 3, 4, 4}), false), std::invalid_argument);
}

// --- direct vs im2col backend parity -------------------------------------
//
// Both backends must agree on forward outputs, input gradients, and
// parameter gradients for every geometry — tested on deliberately awkward
// strides and paddings where the im2col range math is easiest to get wrong.

void copy_params(std::vector<Param*> from, std::vector<Param*> to) {
  ASSERT_EQ(from.size(), to.size());
  for (std::size_t i = 0; i < from.size(); ++i) to[i]->value = from[i]->value;
}

void expect_tensors_near(const Tensor& a, const Tensor& b, float tol, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << what << " at " << i;
  }
}

void expect_conv2d_backend_parity(Conv2DConfig cfg, const std::vector<int>& in_shape,
                                  std::uint64_t seed) {
  cfg.backend = ConvBackend::kDirect;
  Conv2D direct(cfg);
  cfg.backend = ConvBackend::kIm2col;
  Conv2D gemm(cfg);
  ASSERT_EQ(direct.backend(), ConvBackend::kDirect);
  ASSERT_EQ(gemm.backend(), ConvBackend::kIm2col);
  copy_params(direct.params(), gemm.params());

  const Tensor x = random_tensor(in_shape, seed);
  const Tensor y_direct = direct.forward(x, true);
  const Tensor y_gemm = gemm.forward(x, true);
  expect_tensors_near(y_direct, y_gemm, 1e-4f, "forward");

  const Tensor gy = random_tensor(y_direct.shape(), seed ^ 0x5EEDu);
  const Tensor gx_direct = direct.backward(gy);
  const Tensor gx_gemm = gemm.backward(gy);
  expect_tensors_near(gx_direct, gx_gemm, 1e-4f, "grad_input");
  expect_tensors_near(direct.weight().grad, gemm.weight().grad, 1e-4f, "grad_weight");
  expect_tensors_near(direct.bias().grad, gemm.bias().grad, 1e-4f, "grad_bias");
}

void expect_conv3d_backend_parity(Conv3DConfig cfg, const std::vector<int>& in_shape,
                                  std::uint64_t seed) {
  cfg.backend = ConvBackend::kDirect;
  Conv3D direct(cfg);
  cfg.backend = ConvBackend::kIm2col;
  Conv3D gemm(cfg);
  copy_params(direct.params(), gemm.params());

  const Tensor x = random_tensor(in_shape, seed);
  const Tensor y_direct = direct.forward(x, true);
  expect_tensors_near(y_direct, gemm.forward(x, true), 1e-4f, "forward");

  const Tensor gy = random_tensor(y_direct.shape(), seed ^ 0x5EEDu);
  expect_tensors_near(direct.backward(gy), gemm.backward(gy), 1e-4f, "grad_input");
  const auto pd = direct.params();
  const auto pg = gemm.params();
  for (std::size_t i = 0; i < pd.size(); ++i) {
    expect_tensors_near(pd[i]->grad, pg[i]->grad, 1e-4f, "param grad");
  }
}

TEST(Conv2D, BackendParityBasic) {
  Conv2DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 5;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.padding = 1;
  expect_conv2d_backend_parity(cfg, {2, 3, 9, 11}, 101);
}

TEST(Conv2D, BackendParityOddStridePadding) {
  Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  cfg.kernel = 5;
  cfg.stride = 3;
  cfg.padding = 2;
  expect_conv2d_backend_parity(cfg, {2, 2, 13, 10}, 102);
}

TEST(Conv2D, BackendParityUnpaddedStride2) {
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 3;
  cfg.kernel = 4;
  cfg.stride = 2;
  cfg.padding = 0;
  expect_conv2d_backend_parity(cfg, {3, 1, 12, 8}, 103);
}

TEST(Conv3D, BackendParityBasic) {
  Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  cfg.kernel_t = 3;
  cfg.kernel_s = 3;
  cfg.pad_t = 1;
  cfg.pad_s = 1;
  expect_conv3d_backend_parity(cfg, {2, 2, 6, 7, 8}, 201);
}

TEST(Conv3D, BackendParityTemporalStride) {
  // SlowFast lateral-connection geometry: long temporal kernel, matching
  // temporal stride, no temporal padding.
  Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  cfg.kernel_t = 4;
  cfg.kernel_s = 1;
  cfg.stride_t = 4;
  cfg.stride_s = 1;
  cfg.pad_t = 0;
  cfg.pad_s = 0;
  expect_conv3d_backend_parity(cfg, {1, 2, 8, 5, 6}, 202);
}

TEST(Conv3D, BackendParityOddStridePadding) {
  Conv3DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.kernel_t = 3;
  cfg.kernel_s = 5;
  cfg.stride_t = 2;
  cfg.stride_s = 3;
  cfg.pad_t = 1;
  cfg.pad_s = 2;
  expect_conv3d_backend_parity(cfg, {2, 3, 7, 11, 9}, 203);
}

TEST(ConvBackend, EnvVarSelectsBackend) {
  Conv2DConfig cfg;  // backend left at kAuto

  ASSERT_EQ(setenv("SAFECROSS_CONV_BACKEND", "direct", 1), 0);
  EXPECT_EQ(Conv2D(cfg).backend(), ConvBackend::kDirect);

  ASSERT_EQ(setenv("SAFECROSS_CONV_BACKEND", "im2col", 1), 0);
  EXPECT_EQ(Conv2D(cfg).backend(), ConvBackend::kIm2col);

  // Unknown value and unset both fall back to the im2col default, and an
  // explicit per-layer choice always beats the environment.
  ASSERT_EQ(setenv("SAFECROSS_CONV_BACKEND", "bogus", 1), 0);
  EXPECT_EQ(Conv2D(cfg).backend(), ConvBackend::kIm2col);
  cfg.backend = ConvBackend::kDirect;
  EXPECT_EQ(Conv2D(cfg).backend(), ConvBackend::kDirect);

  ASSERT_EQ(unsetenv("SAFECROSS_CONV_BACKEND"), 0);
  cfg.backend = ConvBackend::kAuto;
  EXPECT_EQ(Conv2D(cfg).backend(), ConvBackend::kIm2col);
}

TEST(MaxPool2D, PicksWindowMaximum) {
  MaxPool2D pool(2, 2);
  Tensor in({1, 1, 2, 2});
  in[0] = 1;
  in[1] = 5;
  in[2] = 3;
  in[3] = 2;
  const Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmaxOnly) {
  MaxPool2D pool(2, 2);
  Tensor in({1, 1, 2, 2});
  in[0] = 1;
  in[1] = 5;
  in[2] = 3;
  in[3] = 2;
  pool.forward(in, false);
  const Tensor grad = pool.backward(Tensor({1, 1, 1, 1}, 1.0f));
  EXPECT_FLOAT_EQ(grad[1], 1.0f);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[2], 0.0f);
}

TEST(GlobalAvgPool, AveragesAllTrailingDims) {
  GlobalAvgPool pool;
  Tensor in({1, 2, 2, 2}, 0.0f);
  for (int i = 0; i < 4; ++i) in[i] = static_cast<float>(i);  // channel 0: 0,1,2,3
  const Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 2}));
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor in({3});
  in[0] = -1.0f;
  in[1] = 0.0f;
  in[2] = 2.0f;
  const Tensor out = relu.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  const Tensor in = random_tensor({4, 8}, 30);
  const Tensor out = drop.forward(in, /*training=*/false);
  for (std::size_t i = 0; i < in.numel(); ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(Dropout, TrainingZeroesSomeAndRescalesRest) {
  Dropout drop(0.5f, 77);
  const Tensor in({1000}, 1.0f);
  const Tensor out = drop.forward(in, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // inverted scaling 1/keep
    }
  }
  EXPECT_GT(zeros, 350u);
  EXPECT_LT(zeros, 650u);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 78);
  const Tensor in({100}, 1.0f);
  const Tensor out = drop.forward(in, true);
  const Tensor grad = drop.backward(Tensor({100}, 1.0f));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(grad[i], out[i]);  // both are mask * 2.0
  }
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  BatchNorm bn(1);
  Tensor in({4, 1});
  in[0] = 1;
  in[1] = 2;
  in[2] = 3;
  in[3] = 4;
  const Tensor out = bn.forward(in, true);
  double mean = 0.0, var = 0.0;
  for (int i = 0; i < 4; ++i) mean += out[i];
  mean /= 4;
  for (int i = 0; i < 4; ++i) var += (out[i] - mean) * (out[i] - mean);
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var / 4, 1.0, 1e-3);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm bn(1, /*momentum=*/1.0f);  // running stats = last batch stats
  Tensor in({4, 1});
  in[0] = 1;
  in[1] = 2;
  in[2] = 3;
  in[3] = 4;
  bn.forward(in, true);
  // In eval, the same input normalizes with the stored stats: same result.
  const Tensor eval_out = bn.forward(in, false);
  EXPECT_NEAR(eval_out[0], -1.3416f, 1e-2);
  EXPECT_NEAR(eval_out[3], 1.3416f, 1e-2);
}

TEST(BatchNorm, BuffersExposeRunningStats) {
  BatchNorm bn(2);
  EXPECT_EQ(bn.buffers().size(), 2u);
  EXPECT_EQ(bn.params().size(), 2u);
}

TEST(Sequential, ChainsLayersAndParams) {
  Sequential net;
  net.emplace<Linear>(4, 8);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2);
  Rng rng(40);
  init_params(net.params(), rng);
  EXPECT_EQ(net.params().size(), 4u);  // two weights + two biases
  const Tensor out = net.forward(random_tensor({3, 4}, 41), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 2}));
}

TEST(Sequential, ZeroGradClearsAllParams) {
  Sequential net;
  net.emplace<Linear>(2, 2);
  net.params()[0]->grad.fill(5.0f);
  net.zero_grad();
  EXPECT_FLOAT_EQ(net.params()[0]->grad[0], 0.0f);
}

TEST(InitParams, HeInitOnlyTouchesWeights) {
  Linear layer(10, 5);
  Rng rng(50);
  init_params(layer.params(), rng);
  // Weight got nonzero values; bias stayed zero.
  bool any_nonzero = false;
  for (std::size_t i = 0; i < layer.params()[0]->value.numel(); ++i) {
    any_nonzero |= layer.params()[0]->value[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  for (std::size_t i = 0; i < layer.params()[1]->value.numel(); ++i) {
    EXPECT_FLOAT_EQ(layer.params()[1]->value[i], 0.0f);
  }
}

TEST(ParamUtils, CountAndCopy) {
  Linear a(3, 2), b(3, 2);
  Rng rng(60);
  init_params(a.params(), rng);
  EXPECT_EQ(param_count(a.params()), 8u);  // 6 weights + 2 biases
  copy_param_values(a.params(), b.params());
  EXPECT_FLOAT_EQ(b.params()[0]->value[3], a.params()[0]->value[3]);
  Linear c(4, 2);
  EXPECT_THROW(copy_param_values(a.params(), c.params()), std::invalid_argument);
}

}  // namespace
}  // namespace safecross::nn
