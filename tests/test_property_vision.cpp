// Property-based tests of the vision substrate: algebraic invariants that
// must hold for arbitrary inputs, swept over random seeds and parameters
// with TEST_P.

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vision/blobs.h"
#include "vision/homography.h"
#include "vision/image.h"
#include "vision/morphology.h"

namespace safecross::vision {
namespace {

Image random_mask(int w, int h, double density, std::uint64_t seed) {
  Rng rng(seed);
  Image img(w, h, 0.0f);
  for (std::size_t i = 0; i < img.size(); ++i) {
    if (rng.bernoulli(density)) img.data()[i] = 1.0f;
  }
  return img;
}

Image random_gray(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  Image img(w, h);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = static_cast<float>(rng.uniform());
  }
  return img;
}

// ---------- Morphology laws, swept over kernel x density x seed ----------

class MorphologyLaws : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(MorphologyLaws, ErosionIsAntiExtensive) {
  const auto [kernel, density, seed] = GetParam();
  const Image mask = random_mask(24, 18, density, seed);
  const Image eroded = erode(mask, kernel);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_LE(eroded.data()[i], mask.data()[i]);  // eroded subset of mask
  }
}

TEST_P(MorphologyLaws, DilationIsExtensive) {
  const auto [kernel, density, seed] = GetParam();
  const Image mask = random_mask(24, 18, density, seed);
  const Image dilated = dilate(mask, kernel);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_GE(dilated.data()[i], mask.data()[i]);  // mask subset of dilated
  }
}

TEST_P(MorphologyLaws, OpeningIsIdempotent) {
  const auto [kernel, density, seed] = GetParam();
  const Image mask = random_mask(24, 18, density, seed);
  const Image once = opening(mask, kernel);
  const Image twice = opening(once, kernel);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_FLOAT_EQ(once.data()[i], twice.data()[i]);
  }
}

TEST_P(MorphologyLaws, ClosingIsIdempotent) {
  const auto [kernel, density, seed] = GetParam();
  const Image mask = random_mask(24, 18, density, seed);
  const Image once = closing(mask, kernel);
  const Image twice = closing(once, kernel);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_FLOAT_EQ(once.data()[i], twice.data()[i]);
  }
}

TEST_P(MorphologyLaws, OpeningNeverAddsPixels) {
  const auto [kernel, density, seed] = GetParam();
  const Image mask = random_mask(24, 18, density, seed);
  const Image opened = opening(mask, kernel);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_LE(opened.data()[i], mask.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MorphologyLaws,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(0.1, 0.4, 0.7),
                                            ::testing::Values(1u, 2u, 3u)));

// ---------- Blob accounting, swept over density x seed ----------

class BlobLaws : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(BlobLaws, AreasSumToForegroundCount) {
  const auto [density, seed] = GetParam();
  const Image mask = random_mask(32, 24, density, seed);
  std::size_t total_area = 0;
  for (const Blob& b : find_blobs(mask, 1)) total_area += static_cast<std::size_t>(b.area);
  EXPECT_EQ(total_area, mask.count_above(0.5f));
}

TEST_P(BlobLaws, CentroidsInsideBoundingBoxes) {
  const auto [density, seed] = GetParam();
  const Image mask = random_mask(32, 24, density, seed);
  for (const Blob& b : find_blobs(mask, 1)) {
    EXPECT_GE(b.centroid_x, static_cast<float>(b.min_x));
    EXPECT_LE(b.centroid_x, static_cast<float>(b.max_x));
    EXPECT_GE(b.centroid_y, static_cast<float>(b.min_y));
    EXPECT_LE(b.centroid_y, static_cast<float>(b.max_y));
    EXPECT_LE(b.area, b.width() * b.height());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlobLaws,
                         ::testing::Combine(::testing::Values(0.05, 0.3, 0.6, 0.9),
                                            ::testing::Values(10u, 20u, 30u)));

// ---------- Homography round trips over random perspective maps ----------

class HomographyRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HomographyRoundTrip, InverseComposesToIdentity) {
  Rng rng(GetParam());
  // Random mild perspective: perturb a unit square's corners.
  std::vector<Point2> src{{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  std::vector<Point2> dst;
  for (const auto& p : src) {
    dst.push_back({p.x + rng.uniform(-15.0, 15.0), p.y + rng.uniform(-15.0, 15.0)});
  }
  const Homography h = Homography::fit(src, dst);
  const Homography id = h * h.inverse();
  for (int i = 0; i < 10; ++i) {
    const Point2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const Point2 q = id.apply(p);
    EXPECT_NEAR(q.x, p.x, 1e-6);
    EXPECT_NEAR(q.y, p.y, 1e-6);
  }
}

TEST_P(HomographyRoundTrip, FitReproducesRandomHomography) {
  Rng rng(GetParam() ^ 0xABCD);
  // Build a ground-truth homography from 4 random (non-degenerate) pairs,
  // then fit on 8 sampled correspondences and compare on fresh points.
  std::vector<Point2> src{{0, 0}, {80, 5}, {-5, 90}, {100, 100}};
  std::vector<Point2> dst;
  for (const auto& p : src) {
    dst.push_back({p.x * 0.8 + rng.uniform(-10.0, 10.0), p.y * 1.1 + rng.uniform(-10.0, 10.0)});
  }
  const Homography truth = Homography::fit(src, dst);
  std::vector<Point2> more_src, more_dst;
  for (int i = 0; i < 8; ++i) {
    const Point2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    more_src.push_back(p);
    more_dst.push_back(truth.apply(p));
  }
  const Homography fitted = Homography::fit(more_src, more_dst);
  for (int i = 0; i < 10; ++i) {
    const Point2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const Point2 a = truth.apply(p);
    const Point2 b = fitted.apply(p);
    EXPECT_NEAR(a.x, b.x, 1e-5);
    EXPECT_NEAR(a.y, b.y, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomographyRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- Image resampling conservation ----------

class ResizeLaws : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(ResizeLaws, AreaResizeApproximatelyPreservesMean) {
  const auto [w, h, seed] = GetParam();
  const Image img = random_gray(48, 36, seed);
  const Image small = img.resized_area(w, h);
  // Area averaging redistributes mass; means should agree to a few %.
  EXPECT_NEAR(small.mean(), img.mean(), 0.05f);
}

TEST_P(ResizeLaws, ValuesStayInRange) {
  const auto [w, h, seed] = GetParam();
  const Image img = random_gray(48, 36, seed);
  for (const Image& out : {img.resized_area(w, h), img.resized_nearest(w, h)}) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_GE(out.data()[i], 0.0f);
      EXPECT_LE(out.data()[i], 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ResizeLaws,
                         ::testing::Combine(::testing::Values(12, 24, 47),
                                            ::testing::Values(9, 18, 35),
                                            ::testing::Values(100u, 200u)));

}  // namespace
}  // namespace safecross::vision
