#include "switching/memory_pool.h"

#include <gtest/gtest.h>

#include "switching/profile.h"
#include "switching/switcher.h"

namespace safecross::switching {
namespace {

TEST(GpuMemoryPool, AllocatesAndTracksUsage) {
  GpuMemoryPool pool(1000);
  const auto r = pool.allocate("a", 300);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->bytes, 300u);
  EXPECT_EQ(pool.used(), 300u);
  EXPECT_EQ(pool.free_bytes(), 700u);
  EXPECT_TRUE(pool.holds("a"));
  EXPECT_EQ(pool.live_count(), 1u);
}

TEST(GpuMemoryPool, RejectsZeroCapacityAndZeroAllocation) {
  EXPECT_THROW(GpuMemoryPool(0), std::invalid_argument);
  GpuMemoryPool pool(10);
  EXPECT_THROW(pool.allocate("x", 0), std::invalid_argument);
}

TEST(GpuMemoryPool, DuplicateTagThrows) {
  GpuMemoryPool pool(100);
  pool.allocate("a", 10);
  EXPECT_THROW(pool.allocate("a", 10), std::logic_error);
}

TEST(GpuMemoryPool, ReturnsNulloptWhenFull) {
  GpuMemoryPool pool(100);
  EXPECT_TRUE(pool.allocate("a", 80).has_value());
  EXPECT_FALSE(pool.allocate("b", 30).has_value());
  EXPECT_TRUE(pool.allocate("c", 20).has_value());  // exact fit of the rest
  EXPECT_EQ(pool.free_bytes(), 0u);
}

TEST(GpuMemoryPool, ReleaseUnknownThrows) {
  GpuMemoryPool pool(100);
  EXPECT_THROW(pool.release("ghost"), std::invalid_argument);
}

TEST(GpuMemoryPool, FreeingCoalescesAdjacentBlocks) {
  GpuMemoryPool pool(300);
  pool.allocate("a", 100);
  pool.allocate("b", 100);
  pool.allocate("c", 100);
  pool.release("a");
  pool.release("c");
  // Free: [0,100) and [200,300) — not adjacent.
  EXPECT_EQ(pool.largest_free_block(), 100u);
  EXPECT_GT(pool.fragmentation(), 0.0);
  pool.release("b");
  // Everything coalesces back into one block.
  EXPECT_EQ(pool.largest_free_block(), 300u);
  EXPECT_DOUBLE_EQ(pool.fragmentation(), 0.0);
}

TEST(GpuMemoryPool, ReusesFreedRegions) {
  GpuMemoryPool pool(200);
  const auto a = pool.allocate("a", 120);
  pool.release("a");
  const auto b = pool.allocate("b", 100);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->offset, a->offset);  // first fit reuses the hole
}

TEST(GpuMemoryPool, RegionOfReportsLiveRegions) {
  GpuMemoryPool pool(100);
  pool.allocate("a", 40);
  ASSERT_TRUE(pool.region_of("a").has_value());
  EXPECT_FALSE(pool.region_of("b").has_value());
}

TEST(GpuMemoryPool, FragmentationScenario) {
  // Alternate small/large, free the small ones: free space is plentiful
  // but scattered.
  GpuMemoryPool pool(1000);
  for (int i = 0; i < 5; ++i) {
    pool.allocate("small" + std::to_string(i), 50);
    pool.allocate("large" + std::to_string(i), 150);
  }
  for (int i = 0; i < 5; ++i) pool.release("small" + std::to_string(i));
  EXPECT_EQ(pool.free_bytes(), 250u);
  EXPECT_EQ(pool.largest_free_block(), 50u);
  EXPECT_NEAR(pool.fragmentation(), 1.0 - 50.0 / 250.0, 1e-12);
  // A 60-byte request fails despite 250 free bytes — the cost PipeSwitch
  // avoids by allocating per model, wholesale.
  EXPECT_FALSE(pool.allocate("x", 60).has_value());
}

TEST(SwitcherPool, PoolHoldsActiveModelAfterSwitches) {
  ModelSwitcher sw;
  sw.register_model("day", slowfast_r50_profile());
  sw.register_model("snow", slowfast_r50_profile());
  sw.register_model("rain", slowfast_r50_profile());
  EXPECT_EQ(sw.memory_pool(), nullptr);  // lazily created
  sw.switch_to("day");
  ASSERT_NE(sw.memory_pool(), nullptr);
  EXPECT_TRUE(sw.memory_pool()->holds("day"));
  sw.switch_to("snow");
  EXPECT_TRUE(sw.memory_pool()->holds("snow"));
  EXPECT_FALSE(sw.memory_pool()->holds("day"));  // outgoing recycled
  sw.switch_to("rain");
  sw.switch_to("day");
  EXPECT_TRUE(sw.memory_pool()->holds("day"));
  EXPECT_LE(sw.memory_pool()->live_count(), 2u);
}

TEST(SwitcherPool, LateRegistrationGrowsThePool) {
  // Regression: a model registered after the first switch (pool already
  // provisioned) must still fit — the FL module adds weather models at
  // runtime.
  ModelSwitcher sw;
  sw.register_model("day", inception_v3_profile());
  sw.switch_to("day");
  const std::size_t before = sw.memory_pool()->capacity();
  sw.register_model("night", resnet152_profile());  // larger than anything so far
  EXPECT_GT(sw.memory_pool()->capacity(), before);
  EXPECT_TRUE(sw.memory_pool()->holds("day"));  // active model re-pinned
  sw.switch_to("night");                        // must not throw
  EXPECT_TRUE(sw.memory_pool()->holds("night"));
}

TEST(SwitcherPool, PoolSizedForTwoLargestModels) {
  ModelSwitcher sw;
  sw.register_model("big", resnet152_profile());
  sw.register_model("small", inception_v3_profile());
  sw.switch_to("big");
  const auto* pool = sw.memory_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->capacity(),
            resnet152_profile().total_bytes() + inception_v3_profile().total_bytes());
  // Both fit simultaneously during a swap.
  sw.switch_to("small");
  EXPECT_TRUE(pool->holds("small"));
}

}  // namespace
}  // namespace safecross::switching
