// Write-ahead journal unit suite: framing round-trips, header handling,
// fsync policies, and the torn-tail replay contract — every shape a kill
// can leave the file in must come back as "longest valid prefix plus a
// structured account of the damage", never an exception or a phantom
// record.

#include "runtime/journal.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/checksum.h"

namespace safecross::runtime {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir()
      : path(fs::temp_directory_path() /
             ("safecross_journal_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

JournalRecord decision_record(std::uint32_t stream, std::uint64_t seq) {
  JournalRecord rec;
  rec.type = JournalRecordType::Decision;
  rec.decision.stream = stream;
  rec.decision.seq = seq;
  rec.decision.frame = 100 + seq * 8;
  rec.decision.danger_truth = (seq % 3) == 0;
  rec.decision.predicted_class = static_cast<std::int32_t>(seq % 2);
  rec.decision.prob_danger = 0.125f * static_cast<float>(seq % 8);
  rec.decision.warn = (seq % 2) == 1;
  rec.decision.source = static_cast<std::uint8_t>(seq % 4);
  rec.decision.latency_ms = 1.5 * static_cast<double>(seq);
  return rec;
}

JournalRecord switch_record(std::uint8_t weather, std::uint64_t at) {
  JournalRecord rec;
  rec.type = JournalRecordType::ModelSwitch;
  rec.model_switch.weather = weather;
  rec.model_switch.delay_ms = 120.0;
  rec.model_switch.at_decision = at;
  return rec;
}

void expect_records_equal(const JournalRecord& got, const JournalRecord& want) {
  ASSERT_EQ(got.type, want.type);
  if (want.type == JournalRecordType::Decision) {
    EXPECT_EQ(got.decision.stream, want.decision.stream);
    EXPECT_EQ(got.decision.seq, want.decision.seq);
    EXPECT_EQ(got.decision.frame, want.decision.frame);
    EXPECT_EQ(got.decision.danger_truth, want.decision.danger_truth);
    EXPECT_EQ(got.decision.predicted_class, want.decision.predicted_class);
    EXPECT_EQ(got.decision.prob_danger, want.decision.prob_danger);
    EXPECT_EQ(got.decision.warn, want.decision.warn);
    EXPECT_EQ(got.decision.source, want.decision.source);
    EXPECT_EQ(got.decision.latency_ms, want.decision.latency_ms);
  } else {
    EXPECT_EQ(got.model_switch.weather, want.model_switch.weather);
    EXPECT_EQ(got.model_switch.delay_ms, want.model_switch.delay_ms);
    EXPECT_EQ(got.model_switch.at_decision, want.model_switch.at_decision);
  }
}

TEST(Crc32, MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(common::crc32(std::string("123456789")), 0xCBF43926u);
  // Chaining is equivalent to one pass over the concatenation.
  EXPECT_EQ(common::crc32(std::string("6789"), common::crc32(std::string("12345"))),
            0xCBF43926u);
}

TEST(Journal, RoundTripsMixedRecords) {
  TempDir tmp;
  const fs::path path = tmp.path / "journal.wal";
  std::vector<JournalRecord> want;
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 0; i < 8; ++i) {
      want.push_back(decision_record(i % 2, i));
      journal.append(want.back());
    }
    want.push_back(switch_record(/*weather=*/1, /*at=*/8));
    journal.append(want.back());
    EXPECT_EQ(journal.records_appended(), want.size());
    journal.close();
  }
  const auto report = Journal::replay(path);
  EXPECT_FALSE(report.missing);
  EXPECT_FALSE(report.bad_header);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.valid_bytes, report.file_bytes);
  ASSERT_EQ(report.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    expect_records_equal(report.records[i], want[i]);
  }
}

TEST(Journal, OpenCreatesHeaderOnlyFile) {
  TempDir tmp;
  const fs::path path = tmp.path / "fresh.wal";
  Journal journal;
  journal.open(path, JournalConfig{});
  journal.close();
  EXPECT_EQ(fs::file_size(path), Journal::kHeaderBytes);
  const auto report = Journal::replay(path);
  EXPECT_FALSE(report.missing);
  EXPECT_FALSE(report.bad_header);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_TRUE(report.records.empty());
}

TEST(Journal, ReplayOfMissingFileIsFreshStart) {
  TempDir tmp;
  const auto report = Journal::replay(tmp.path / "never_written.wal");
  EXPECT_TRUE(report.missing);
  EXPECT_TRUE(report.records.empty());
  EXPECT_EQ(report.file_bytes, 0u);
}

TEST(Journal, ReplayRejectsForeignHeader) {
  TempDir tmp;
  const fs::path path = tmp.path / "garbage.wal";
  common::write_garbage(path, 64, /*seed=*/7);
  const auto report = Journal::replay(path);
  EXPECT_FALSE(report.missing);
  EXPECT_TRUE(report.bad_header);
  EXPECT_TRUE(report.records.empty());
}

TEST(Journal, AppendContinuesAcrossReopen) {
  TempDir tmp;
  const fs::path path = tmp.path / "journal.wal";
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 0; i < 3; ++i) journal.append(decision_record(0, i));
  }
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 3; i < 5; ++i) journal.append(decision_record(0, i));
  }
  const auto report = Journal::replay(path);
  ASSERT_EQ(report.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(report.records[i].decision.seq, i);
  }
}

TEST(Journal, AllFsyncPoliciesProduceIdenticalFiles) {
  TempDir tmp;
  std::string baseline;
  for (const FsyncPolicy policy :
       {FsyncPolicy::None, FsyncPolicy::EveryN, FsyncPolicy::Every}) {
    SCOPED_TRACE(fsync_policy_name(policy));
    const fs::path path =
        tmp.path / (std::string("j_") + fsync_policy_name(policy) + ".wal");
    JournalConfig cfg;
    cfg.fsync = policy;
    cfg.fsync_every = 2;
    Journal journal;
    journal.open(path, cfg);
    for (std::uint64_t i = 0; i < 7; ++i) journal.append(decision_record(1, i));
    journal.sync();
    journal.close();
    const std::string bytes = common::read_file(path);
    if (baseline.empty()) {
      baseline = bytes;
    } else {
      // The policy changes *when* durability is forced, never what lands.
      EXPECT_EQ(bytes, baseline);
    }
    const auto report = Journal::replay(path);
    EXPECT_EQ(report.records.size(), 7u);
    EXPECT_FALSE(report.torn_tail);
  }
}

TEST(Journal, TruncatedTailYieldsValidPrefix) {
  TempDir tmp;
  const fs::path path = tmp.path / "journal.wal";
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 0; i < 5; ++i) journal.append(decision_record(0, i));
  }
  const auto full = fs::file_size(path);
  const std::string last = Journal::encode(decision_record(0, 4));
  // Cut the last record in half: a torn append.
  common::truncate_file(path, full - last.size() / 2);
  const auto report = Journal::replay(path);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_FALSE(report.tail_error.empty());
  ASSERT_EQ(report.records.size(), 4u);
  EXPECT_LT(report.valid_bytes, report.file_bytes);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(report.records[i].decision.seq, i);
  }
}

TEST(Journal, FlippedByteInTailIsDetectedAndDropped) {
  TempDir tmp;
  const fs::path path = tmp.path / "journal.wal";
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 0; i < 4; ++i) journal.append(decision_record(0, i));
  }
  // Damage one byte inside the last record's payload.
  const std::string last = Journal::encode(decision_record(0, 3));
  const auto offset = fs::file_size(path) - last.size() + sizeof(std::uint32_t) + 3;
  common::flip_byte(path, offset);
  const auto report = Journal::replay(path);
  EXPECT_TRUE(report.torn_tail);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_NE(report.tail_error.find("checksum"), std::string::npos)
      << "got: " << report.tail_error;
}

TEST(Journal, TrailingGarbageAfterValidPrefixIsDropped) {
  TempDir tmp;
  const fs::path path = tmp.path / "journal.wal";
  {
    Journal journal;
    journal.open(path, JournalConfig{});
    for (std::uint64_t i = 0; i < 3; ++i) journal.append(decision_record(0, i));
  }
  // Simulate a torn length word: three stray bytes after the last frame.
  std::FILE* f = std::fopen(path.string().c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("xyz", f);
  std::fclose(f);
  const auto report = Journal::replay(path);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.file_bytes - report.valid_bytes, 3u);
}

}  // namespace
}  // namespace safecross::runtime
