// Two-direction warning support (toward the paper's "four directions"
// future work): the westbound-left approach is guarded symmetrically —
// its waiters are the eastbound subject's blockers and vice versa.

#include <gtest/gtest.h>

#include "dataset/collector.h"
#include "fewshot/trainer.h"
#include "models/slowfast.h"
#include "sim/camera.h"
#include "sim/traffic.h"

namespace safecross::sim {
namespace {

TEST(TwoDirection, ApproachNames) {
  EXPECT_STREQ(approach_name(Approach::EastboundLeft), "eastbound-left");
  EXPECT_STREQ(approach_name(Approach::WestboundLeft), "westbound-left");
}

TEST(TwoDirection, WestboundSubjectsHoldAndTurn) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 17);
  bool saw_holding = false;
  for (int i = 0; i < 30 * 900; ++i) {
    sim.step();
    const Vehicle* s = sim.subject(Approach::WestboundLeft);
    if (s != nullptr && s->state == DriverState::HoldingAtStop) saw_holding = true;
  }
  EXPECT_TRUE(saw_holding);
  EXPECT_GT(sim.completed_turns(Approach::WestboundLeft), 3u);
}

TEST(TwoDirection, KeyframesCountedPerApproach) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 18);
  std::uint64_t eb = 0, wb = 0;
  for (int i = 0; i < 30 * 900; ++i) {
    sim.step();
    eb += sim.turn_keyframes(Approach::EastboundLeft).size();
    wb += sim.turn_keyframes(Approach::WestboundLeft).size();
  }
  EXPECT_EQ(eb, sim.completed_turns(Approach::EastboundLeft));
  EXPECT_EQ(wb, sim.completed_turns(Approach::WestboundLeft));
  EXPECT_GT(eb, 0u);
  EXPECT_GT(wb, 0u);
}

TEST(TwoDirection, BlockersAreOnTheOppositeRoute) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 19);
  for (int i = 0; i < 30 * 600; ++i) {
    sim.step();
    const Vehicle* eb_blocker = sim.blocker(Approach::EastboundLeft);
    if (eb_blocker != nullptr) {
      EXPECT_EQ(eb_blocker->route, RouteId::WestboundLeftWait);
    }
    const Vehicle* wb_blocker = sim.blocker(Approach::WestboundLeft);
    if (wb_blocker != nullptr) {
      EXPECT_EQ(wb_blocker->route, RouteId::EastboundLeft);
    }
  }
}

TEST(TwoDirection, ConflictPointsOnOpposingSidesOfCenter) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 20);
  const auto& g = sim.intersection().geometry();
  EXPECT_GT(sim.conflict_x(Approach::EastboundLeft), g.center_x);
  EXPECT_LT(sim.conflict_x(Approach::WestboundLeft), g.center_x);
}

TEST(TwoDirection, ThreatGapsAreIndependentPerApproach) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 21);
  // Over a long run both approaches must see both states: danger and not.
  int eb_danger = 0, eb_clear = 0, wb_danger = 0, wb_clear = 0;
  for (int i = 0; i < 30 * 900; ++i) {
    sim.step();
    (sim.dangerous_to_turn(Approach::EastboundLeft) ? eb_danger : eb_clear)++;
    (sim.dangerous_to_turn(Approach::WestboundLeft) ? wb_danger : wb_clear)++;
  }
  EXPECT_GT(eb_danger, 0);
  EXPECT_GT(eb_clear, 0);
  EXPECT_GT(wb_danger, 0);
  EXPECT_GT(wb_clear, 0);
}

TEST(TwoDirection, CollectorCutsWestboundSegments) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 22);
  const CameraModel cam(sim.intersection().geometry());
  dataset::CollectorConfig cfg;
  cfg.approach = Approach::WestboundLeft;
  dataset::SegmentCollector collector(sim, cam, cfg, 23);
  while (collector.segments().size() < 20 && sim.time() < 3600.0) collector.step();
  ASSERT_GE(collector.segments().size(), 10u);
  std::size_t turned = 0, waited = 0;
  for (const auto& seg : collector.segments()) {
    EXPECT_EQ(seg.approach, Approach::WestboundLeft);
    (seg.turned ? turned : waited)++;
  }
  EXPECT_GT(turned, 0u);
  EXPECT_GT(waited, 0u);
}

TEST(TwoDirection, WestboundClassifierBeatsChance) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 24);
  const CameraModel cam(sim.intersection().geometry());
  dataset::CollectorConfig cfg;
  cfg.approach = Approach::WestboundLeft;
  dataset::SegmentCollector collector(sim, cam, cfg, 25);
  while (collector.segments().size() < 60 && sim.time() < 3.0 * 3600.0) collector.step();
  const auto segments = collector.take_segments();
  ASSERT_GE(segments.size(), 40u);

  std::vector<const dataset::VideoSegment*> train;
  for (const auto& s : segments) train.push_back(&s);
  models::SlowFastConfig mc;
  mc.slow_channels = 4;
  mc.fast_channels = 2;
  models::SlowFast model(mc);
  fewshot::TrainConfig tc;
  tc.epochs = 4;
  fewshot::train_classifier(model, train, tc);
  const auto eval = fewshot::evaluate(model, train);
  EXPECT_GT(eval.top1(), 0.7);
}

}  // namespace
}  // namespace safecross::sim
