#include "models/yolo_lite.h"

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/optimizer.h"

namespace safecross::models {
namespace {

YoloLiteConfig tiny_config() {
  YoloLiteConfig cfg;
  cfg.in_width = 64;
  cfg.in_height = 32;
  cfg.base_channels = 4;
  return cfg;
}

TEST(YoloLite, OutputGridShape) {
  YoloLite model(tiny_config());
  const nn::Tensor out =
      model.forward(testing::random_tensor({2, 1, 32, 64}, 1), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 5, 4, 8}));
}

TEST(YoloLite, RejectsIndivisibleInput) {
  YoloLiteConfig cfg = tiny_config();
  cfg.in_width = 65;
  EXPECT_THROW(YoloLite{cfg}, std::invalid_argument);
}

TEST(Iou, IdenticalBoxesIsOne) {
  YoloBox a{10, 10, 4, 4, 1};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
}

TEST(Iou, DisjointBoxesIsZero) {
  YoloBox a{10, 10, 4, 4, 1};
  YoloBox b{30, 30, 4, 4, 1};
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(Iou, HalfOverlap) {
  YoloBox a{0, 0, 4, 4, 1};
  YoloBox b{2, 0, 4, 4, 1};  // overlap 2x4=8, union 24
  EXPECT_NEAR(iou(a, b), 8.0f / 24.0f, 1e-6);
}

TEST(YoloLoss, ZeroTruthPushesObjectnessDown) {
  YoloLiteConfig cfg = tiny_config();
  YoloLite model(cfg);
  YoloLoss loss(cfg);
  const nn::Tensor pred = model.forward(testing::random_tensor({1, 1, 32, 64}, 2), true);
  const float l = loss.forward(pred, {{}});
  EXPECT_GT(l, 0.0f);
  const nn::Tensor g = loss.grad();
  EXPECT_EQ(g.shape(), pred.shape());
}

TEST(YoloLoss, RejectsBatchMismatch) {
  YoloLiteConfig cfg = tiny_config();
  YoloLite model(cfg);
  YoloLoss loss(cfg);
  const nn::Tensor pred = model.forward(testing::random_tensor({2, 1, 32, 64}, 3), true);
  EXPECT_THROW(loss.forward(pred, {{}}), std::invalid_argument);
}

TEST(YoloLite, LearnsToDetectBrightBlock) {
  // One synthetic scene: a bright 12x8 block on dark background. After a
  // few steps, detect() should fire at the block's location.
  YoloLiteConfig cfg = tiny_config();
  YoloLite model(cfg);
  YoloLoss loss(cfg);
  nn::Adam opt(model.params(), 0.01f);

  vision::Image frame(64, 32, 0.1f);
  for (int y = 12; y < 20; ++y) {
    for (int x = 24; x < 36; ++x) frame.at(x, y) = 0.9f;
  }
  nn::Tensor input({1, 1, 32, 64});
  std::copy(frame.data(), frame.data() + frame.size(), input.data());
  const std::vector<std::vector<YoloBox>> truth{{YoloBox{30, 16, 12, 8, 1}}};

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 120; ++step) {
    for (nn::Param* param : model.params()) param->zero_grad();
    const nn::Tensor pred = model.forward(input, true);
    const float l = loss.forward(pred, truth);
    if (step == 0) first = l;
    last = l;
    model.backward(loss.grad());
    opt.step();
  }
  EXPECT_LT(last, first * 0.5f);

  const auto boxes = model.detect(frame, 0.5f);
  ASSERT_FALSE(boxes.empty());
  EXPECT_NEAR(boxes[0].cx, 30.0f, 8.0f);
  EXPECT_NEAR(boxes[0].cy, 16.0f, 6.0f);
}

TEST(YoloLite, DetectResizesForeignResolutions) {
  YoloLite model(tiny_config());
  const vision::Image big(128, 64, 0.2f);
  // Must not throw: the frame is resized to the model's input.
  const auto boxes = model.detect(big, 0.99f);
  (void)boxes;
  SUCCEED();
}

TEST(YoloLite, NmsSuppressesDuplicates) {
  // Train as above, then check detect returns non-overlapping boxes.
  YoloLiteConfig cfg = tiny_config();
  YoloLite model(cfg);
  const vision::Image frame(64, 32, 0.5f);
  const auto boxes = model.detect(frame, 0.0f);  // accept everything
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      EXPECT_LE(iou(boxes[i], boxes[j]), 0.4f + 1e-5);
    }
  }
}

}  // namespace
}  // namespace safecross::models
