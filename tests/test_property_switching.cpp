// Property-based tests of the switching engine over randomized model
// profiles: optimality, monotonicity, and policy dominance must hold for
// any profile, not just the three canonical ones.

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "switching/grouping.h"

namespace safecross::switching {
namespace {

ModelProfile random_profile(int layers, std::uint64_t seed) {
  Rng rng(seed);
  ModelProfile p;
  // Built with += rather than operator+: every string operator+ overload
  // trips GCC 12's -Wrestrict false positive at -O3 (PR105651).
  p.name = "random-";
  p.name += std::to_string(seed);
  p.framework_load_ms = rng.uniform(100.0, 1500.0);
  for (int i = 0; i < layers; ++i) {
    LayerDesc l;
    l.name = "l";
    l.name += std::to_string(i);
    l.param_bytes = static_cast<std::size_t>(rng.uniform(1e4, 3e7));
    l.compute_ms = rng.uniform(0.01, 2.0);
    l.cold_extra_ms = rng.uniform(0.0, 30.0);
    p.layers.push_back(l);
  }
  return p;
}

using Param = std::tuple<int, std::uint64_t>;

class GroupingProperties : public ::testing::TestWithParam<Param> {};

TEST_P(GroupingProperties, OptimalDominatesAllBaselines) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  const GpuModelConfig gpu;
  const auto opt = optimal_grouping(p, gpu);
  const double best = pipelined_makespan(p, opt, gpu);
  EXPECT_LE(best, pipelined_makespan(p, per_layer_grouping(p), gpu) + 1e-9);
  EXPECT_LE(best, pipelined_makespan(p, whole_model_grouping(p), gpu) + 1e-9);
  for (const int k : {2, 3, 5, 9}) {
    EXPECT_LE(best, pipelined_makespan(p, fixed_grouping(p, k), gpu) + 1e-9) << "fixed-" << k;
  }
}

TEST_P(GroupingProperties, GroupingCoversEveryLayerExactlyOnce) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  const auto opt = optimal_grouping(p, GpuModelConfig{});
  int covered = 0;
  for (const int g : opt) {
    EXPECT_GT(g, 0);
    covered += g;
  }
  EXPECT_EQ(covered, layers);
}

TEST_P(GroupingProperties, MakespanMonotoneInBandwidth) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  GpuModelConfig slow_gpu, fast_gpu;
  slow_gpu.pcie_gbps = 4.0;
  fast_gpu.pcie_gbps = 32.0;
  const auto groups = per_layer_grouping(p);
  EXPECT_GE(pipelined_makespan(p, groups, slow_gpu), pipelined_makespan(p, groups, fast_gpu));
}

TEST_P(GroupingProperties, MakespanAtLeastComputeAndTransfer) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  const GpuModelConfig gpu;
  const auto opt = optimal_grouping(p, gpu);
  const double makespan = pipelined_makespan(p, opt, gpu);
  EXPECT_GE(makespan, p.total_compute_ms());             // compute can't compress
  EXPECT_GE(makespan, transfer_ms(p.total_bytes(), gpu));  // nor can the bytes
}

TEST_P(GroupingProperties, PipeSwitchAlwaysBeatsStopAndStart) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  const GpuModelConfig gpu;
  const auto ss = simulate_stop_and_start(p, gpu);
  const auto ps = simulate_pipeswitch(p, optimal_grouping(p, gpu), gpu);
  EXPECT_LT(ps.completion_ms, ss.completion_ms);
  EXPECT_LT(ps.switching_delay_ms(), ss.switching_delay_ms());
  EXPECT_GE(ps.switching_delay_ms(), 0.0);
}

TEST_P(GroupingProperties, TimelinesAreInternallyConsistent) {
  const auto [layers, seed] = GetParam();
  const ModelProfile p = random_profile(layers, seed);
  const GpuModelConfig gpu;
  const auto r = simulate_pipeswitch(p, optimal_grouping(p, gpu), gpu);
  double last_transfer_end = 0.0, last_compute_end = 0.0;
  for (const auto& e : r.timeline) {
    EXPECT_LE(e.start_ms, e.end_ms);
    if (e.engine == TimelineEntry::Engine::Transfer) {
      EXPECT_GE(e.start_ms + 1e-9, last_transfer_end);  // one transfer engine
      last_transfer_end = e.end_ms;
    } else if (e.engine == TimelineEntry::Engine::Compute) {
      EXPECT_GE(e.start_ms + 1e-9, last_compute_end);   // one compute engine
      last_compute_end = e.end_ms;
    }
  }
  EXPECT_DOUBLE_EQ(r.completion_ms, last_compute_end);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupingProperties,
                         ::testing::Combine(::testing::Values(1, 2, 7, 25, 60),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace safecross::switching
