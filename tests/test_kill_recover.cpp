// Kill–recover chaos harness: the durability layer's acceptance test.
//
// For seeded two-stream scenarios the suite computes the uninterrupted
// decision stream once, then kills a durable server at randomized crash
// points — including mid-journal-append (torn tail) and mid-snapshot-write
// (half-written temp file) — recovers a fresh server from the damaged
// directory, lets it finish, and requires the concatenated decision
// stream to be BIT-IDENTICAL to the uninterrupted run: no lost decision,
// no duplicated decision, every verdict field equal. Corruption on top of
// the kill (flipped snapshot bytes, garbage generations, torn journal)
// must degrade recovery — never abort it.
//
// Scratch directories live under chaos_scratch/ in the working directory
// and are kept when a test fails, so CI can upload the damaged state as
// an artifact for post-mortem.

#include "serving/stream_server.h"

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "models/slowfast.h"

namespace safecross::serving {
namespace {

namespace fs = std::filesystem;

using core::SafeCross;
using core::SafeCrossConfig;
using dataset::Weather;
using runtime::CrashInjected;
using runtime::CrashInjector;
using runtime::CrashPoint;

constexpr std::size_t kFrames = 1800;  // ~60 s per stream at 30 Hz

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

std::unique_ptr<SafeCross> engine_with_models(const std::vector<Weather>& weathers) {
  auto sc = std::make_unique<SafeCross>(tiny_config());
  for (Weather w : weathers) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
  return sc;
}

/// Durable dir under the working directory; kept on failure so the CI
/// chaos job can upload the damaged journal/snapshot state.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "chaos_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    if (!::testing::Test::HasFailure()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

/// Two streams (daytime + rain, so model switches hit the journal too).
/// An empty dir gives the uninterrupted reference configuration.
StreamServerConfig chaos_config(std::uint64_t base, const fs::path& dir,
                                CrashInjector* crash) {
  StreamServerConfig cfg;
  cfg.frames = kFrames;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;
  // Tight queues keep the producers coupled to the inference consumer.
  // With deep queues the producers race the whole run ahead, every window
  // lands in the batcher backlog, and the only consistent snapshot cut
  // (all produced windows applied) is the end of the run — leaving the
  // mid-snapshot crash ordinals unreachable in batched mode.
  cfg.queue_capacity = 2;
  for (std::uint64_t i = 0; i < 2; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i == 0 ? Weather::Daytime : Weather::Rain;
    s.sim_seed = base + 10 * i;
    s.collector_seed = base + 10 * i + 1;
    s.fault_seed = base + 10 * i + 2;
    cfg.streams.push_back(s);
  }
  cfg.durability.dir = dir;
  cfg.durability.snapshot_every_decisions = 8;
  cfg.durability.keep_snapshots = 2;
  cfg.durability.crash = crash;
  return cfg;
}

enum class Mode { Sequential, Batched };

void run_server(StreamServer& server, Mode mode) {
  mode == Mode::Batched ? server.run() : server.run_sequential();
}

/// Run a durable server with an armed injector; true when the simulated
/// kill fired (the server object is destroyed either way, as a real
/// process death would).
bool run_killed(SafeCross& engine, const StreamServerConfig& cfg, Mode mode) {
  StreamServer server(engine, cfg);
  try {
    run_server(server, mode);
  } catch (const CrashInjected&) {
    return true;
  }
  return false;
}

/// Fresh incarnation against the damaged directory: recover, then finish
/// the run. Returns the server so the caller can compare its streams.
std::unique_ptr<StreamServer> recover_and_finish(SafeCross& engine,
                                                 const StreamServerConfig& cfg, Mode mode,
                                                 RecoveryReport* report = nullptr) {
  auto server = std::make_unique<StreamServer>(engine, cfg);
  const RecoveryReport rep = server->recover();
  if (report) *report = rep;
  run_server(*server, mode);
  return server;
}

/// The bit-identical contract: per-stream traces equal in every field and
/// scorecards equal in every counter. Latency is wall-clock and excluded.
void expect_servers_agree(const StreamServer& got, const StreamServer& want) {
  ASSERT_EQ(got.stream_count(), want.stream_count());
  for (std::size_t i = 0; i < got.stream_count(); ++i) {
    const auto& g = got.stream(i);
    const auto& w = want.stream(i);
    SCOPED_TRACE("stream " + g.config().name);
    EXPECT_EQ(g.frames_run(), w.frames_run());
    EXPECT_EQ(g.windows_produced(), w.windows_produced());
    const auto& gt = g.trace();
    const auto& wt = w.trace();
    ASSERT_EQ(gt.size(), wt.size()) << "a decision was lost or duplicated";
    for (std::size_t s = 0; s < gt.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(gt[s].frame, wt[s].frame);
      EXPECT_EQ(gt[s].danger_truth, wt[s].danger_truth);
      EXPECT_EQ(gt[s].predicted_class, wt[s].predicted_class);
      EXPECT_EQ(gt[s].prob_danger, wt[s].prob_danger) << "verdicts must be bit-identical";
      EXPECT_EQ(gt[s].warn, wt[s].warn);
      EXPECT_EQ(gt[s].source, wt[s].source);
      EXPECT_EQ(gt[s].model_weather, wt[s].model_weather) << "model lineage diverged";
      EXPECT_EQ(gt[s].epoch, wt[s].epoch) << "switch-epoch lineage diverged";
    }
    EXPECT_EQ(g.scorecard().decisions(), w.scorecard().decisions());
    EXPECT_EQ(g.scorecard().warnings(), w.scorecard().warnings());
    EXPECT_EQ(g.scorecard().correct(), w.scorecard().correct());
    EXPECT_EQ(g.scorecard().missed_threats(), w.scorecard().missed_threats());
    EXPECT_EQ(g.scorecard().false_warnings(), w.scorecard().false_warnings());
    EXPECT_EQ(g.scorecard().fail_safe_decisions(), w.scorecard().fail_safe_decisions());
    EXPECT_EQ(g.scorecard().decision_opportunities(),
              w.scorecard().decision_opportunities());
  }
}

bool is_journal_point(CrashPoint p) {
  return p == CrashPoint::BeforeJournalAppend || p == CrashPoint::MidJournalAppend ||
         p == CrashPoint::AfterJournalAppend;
}

/// One seed of the acceptance sweep: kill at mid-journal-append,
/// mid-snapshot-write, and one more randomized point, each at a
/// rng-chosen hit ordinal; every recovery must be bit-identical.
void kill_recover_seed_sweep(std::uint64_t base) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  StreamServer reference(*sc, chaos_config(base, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u) << "weak scenario for seed " << base;

  Rng rng(base ^ 0xC4A05ull);
  const CrashPoint extras[] = {CrashPoint::BeforeJournalAppend,
                               CrashPoint::AfterJournalAppend,
                               CrashPoint::BeforeSnapshotWrite,
                               CrashPoint::BeforeSnapshotRename,
                               CrashPoint::AfterSnapshotRename};
  const CrashPoint points[] = {CrashPoint::MidJournalAppend, CrashPoint::MidSnapshotWrite,
                               extras[rng.uniform_int(std::uint64_t{5})]};
  for (const CrashPoint point : points) {
    SCOPED_TRACE(crash_point_name(point));
    ScratchDir scratch("seed_" + std::to_string(base) + "_" + crash_point_name(point));
    CrashInjector injector;
    // Journal points hit once per record (>= 24 here); snapshot points
    // once per 8 decisions. Both ordinals stay safely below the totals.
    const std::size_t nth = is_journal_point(point)
                                ? 1 + rng.uniform_int(std::uint64_t{12})
                                : 1 + rng.uniform_int(std::uint64_t{2});
    injector.arm(point, nth);
    StreamServerConfig cfg = chaos_config(base, scratch.path, &injector);
    ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential))
        << "armed kill (nth=" << nth << ") never fired";
    injector.disarm();
    auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential);
    expect_servers_agree(*recovered, reference);
  }
}

// Five seeds x three kill points each (the ISSUE's acceptance floor).
TEST(KillRecover, Seed82000BitIdenticalAcrossKillPoints) { kill_recover_seed_sweep(82000); }
TEST(KillRecover, Seed85000BitIdenticalAcrossKillPoints) { kill_recover_seed_sweep(85000); }
TEST(KillRecover, Seed87000BitIdenticalAcrossKillPoints) { kill_recover_seed_sweep(87000); }
TEST(KillRecover, Seed91000BitIdenticalAcrossKillPoints) { kill_recover_seed_sweep(91000); }
TEST(KillRecover, Seed97000BitIdenticalAcrossKillPoints) { kill_recover_seed_sweep(97000); }

// Every crash point in the enum, one seed — and afterwards the journal
// itself is audited: exactly one record per (stream, seq), each matching
// the reference verdict, so "no lost, no duplicated" holds on disk too.
TEST(KillRecover, EveryCrashPointRecoversAndJournalIsExactlyOnce) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 87000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u);

  // The sequential path only reaches the durability points; the three
  // serving-path switch points are exercised by the SwitchStorm cases below.
  for (int p = 0; p < runtime::kDurabilityCrashPointCount; ++p) {
    const CrashPoint point = static_cast<CrashPoint>(p);
    SCOPED_TRACE(crash_point_name(point));
    ScratchDir scratch(std::string("exhaustive_") + crash_point_name(point));
    CrashInjector injector;
    injector.arm(point, is_journal_point(point) ? 9 : 2);
    StreamServerConfig cfg = chaos_config(kBase, scratch.path, &injector);
    ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential));
    injector.disarm();
    auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential);
    expect_servers_agree(*recovered, reference);

    // On-disk exactly-once: replay the final journal and check one
    // record per (stream, seq), each bitwise-equal to the reference.
    const auto replay = runtime::Journal::replay(scratch.path / "journal.wal");
    EXPECT_FALSE(replay.torn_tail) << "recovery must have truncated the torn tail";
    std::map<std::pair<std::uint32_t, std::uint64_t>, runtime::DecisionEntry> seen;
    for (const runtime::JournalRecord& rec : replay.records) {
      if (rec.type != runtime::JournalRecordType::Decision) continue;
      const auto key = std::make_pair(rec.decision.stream, rec.decision.seq);
      ASSERT_TRUE(seen.emplace(key, rec.decision).second)
          << "duplicate journal record for stream " << key.first << " seq " << key.second;
    }
    EXPECT_EQ(seen.size(), reference.total_decisions());
    for (const auto& [key, entry] : seen) {
      const auto& trace = reference.stream(key.first).trace();
      ASSERT_LT(key.second, trace.size());
      const DecisionRecord& want = trace[key.second];
      EXPECT_EQ(entry.frame, want.frame);
      EXPECT_EQ(entry.danger_truth, want.danger_truth);
      EXPECT_EQ(entry.predicted_class, want.predicted_class);
      EXPECT_EQ(entry.prob_danger, want.prob_danger);
      EXPECT_EQ(entry.warn, want.warn);
      EXPECT_EQ(entry.source, static_cast<std::uint8_t>(want.source));
    }
  }
}

// --- serving-path switch storms: the three switch crash points ---

/// chaos_config plus a pipelined switch storm: three weathers cycling
/// every 150 frames over a two-resident cache (so evictions really
/// happen), delay_ms = 0 (no fail-safe gating — every decision stays
/// model-gated and bit-comparable to the oracle), a longer run so the
/// sim's sparse turn-wait bursts land in many different switch epochs,
/// and a scaled-down cache so a load moves ~33 KB instead of ~136 MB.
StreamServerConfig storm_config(std::uint64_t base, const fs::path& dir,
                                CrashInjector* crash) {
  StreamServerConfig cfg = chaos_config(base, dir, crash);
  cfg.frames = 3600;
  cfg.switch_mode = SwitchMode::Pipelined;
  cfg.model_cache.capacity_models = 2;
  cfg.model_cache.bytes_scale = 1.0 / 4096.0;
  cfg.model_cache.executor.bandwidth_gbps = 64.0;
  cfg.model_cache.executor.compute_scale = 0.001;
  const Weather cycle[2][3] = {{Weather::Rain, Weather::Snow, Weather::Daytime},
                               {Weather::Snow, Weather::Daytime, Weather::Rain}};
  for (std::size_t i = 0; i < cfg.streams.size(); ++i) {
    for (std::size_t k = 0; 200 + 150 * k < cfg.frames; ++k) {
      cfg.streams[i].model_schedule.push_back({200 + 150 * k, cycle[i][k % 3], 0.0});
    }
  }
  return cfg;
}

/// On-disk exactly-once for the switch protocol: every switch_id in the
/// final journal has exactly one Begin and exactly one terminal record
/// (Commit or Abort); `expect_recovery_close` additionally requires at
/// least one Abort with reason = 1 (closed-by-recovery).
void audit_switch_journal(const fs::path& wal, bool expect_recovery_close) {
  const auto replay = runtime::Journal::replay(wal);
  EXPECT_FALSE(replay.torn_tail) << "recovery must have truncated the torn tail";
  struct Tally {
    int begins = 0;
    int terminals = 0;
  };
  std::map<std::uint64_t, Tally> switches;
  std::size_t recovery_aborts = 0;
  for (const runtime::JournalRecord& rec : replay.records) {
    switch (rec.type) {
      case runtime::JournalRecordType::ModelSwitchBegin:
        ++switches[rec.switch_phase.switch_id].begins;
        break;
      case runtime::JournalRecordType::ModelSwitchCommit:
        ++switches[rec.switch_phase.switch_id].terminals;
        break;
      case runtime::JournalRecordType::ModelSwitchAbort:
        ++switches[rec.switch_phase.switch_id].terminals;
        recovery_aborts += rec.switch_phase.reason == 1 ? 1 : 0;
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(switches.empty()) << "a switch storm must journal switches";
  for (const auto& [id, tally] : switches) {
    EXPECT_EQ(tally.begins, 1) << "switch " << id << " must Begin exactly once";
    EXPECT_EQ(tally.terminals, 1)
        << "switch " << id << " must end in exactly one Commit or Abort";
  }
  if (expect_recovery_close) {
    EXPECT_GE(recovery_aborts, 1u)
        << "the dangling Begin must be closed by a reason=1 Abort";
  }
}

// Kill the pipelined server at each of the three switch crash points —
// right after the Begin record is durable, mid layer-group transfer on
// the loader thread, and mid cache eviction — then recover against the
// damaged dir and finish. The merged decision stream must be
// bit-identical to the switch-free sequential oracle, the dangling Begin
// must be closed by recovery, and the final journal must hold exactly
// one Begin + one terminal per switch_id.
TEST(KillRecover, SwitchStormKillsAtEverySwitchPointRecoverBitIdentical) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain, Weather::Snow});
  constexpr std::uint64_t kBase = 88000;
  StreamServer reference(*sc, storm_config(kBase, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u);

  struct Kill {
    CrashPoint point;
    std::size_t nth;
  };
  // MidModelLoad hits once per transferred unit, so nth=4 lands inside
  // the very first pipelined load (loader thread); the eviction point
  // first fires when the third distinct weather displaces a resident.
  for (const Kill kill : {Kill{CrashPoint::AfterSwitchBegin, 2},
                          Kill{CrashPoint::MidModelLoad, 4},
                          Kill{CrashPoint::MidCacheEviction, 1}}) {
    SCOPED_TRACE(crash_point_name(kill.point));
    ScratchDir scratch(std::string("switch_storm_") + crash_point_name(kill.point));
    CrashInjector injector;
    injector.arm(kill.point, kill.nth);
    StreamServerConfig cfg = storm_config(kBase, scratch.path, &injector);
    ASSERT_TRUE(run_killed(*sc, cfg, Mode::Batched))
        << "armed switch kill (nth=" << kill.nth << ") never fired";
    injector.disarm();
    RecoveryReport report;
    auto recovered = recover_and_finish(*sc, cfg, Mode::Batched, &report);
    EXPECT_GE(report.switches_aborted_on_recovery, 1u)
        << "a mid-switch kill leaves a dangling Begin for recovery to close";
    EXPECT_EQ(report.journal_switch_begins,
              report.journal_switch_commits + report.journal_switch_aborts +
                  report.switches_aborted_on_recovery)
        << "every journaled Begin is either terminated or dangling";
    expect_servers_agree(*recovered, reference);
    audit_switch_journal(scratch.path / "journal.wal", /*expect_recovery_close=*/true);
  }
}

// The same storm without a kill: the pipelined batched run commits real
// switches, stays bit-identical to the oracle, and journals exactly one
// Begin + one Commit per switch (no Aborts, nothing dangling).
TEST(KillRecover, SwitchStormUninterruptedCommitsExactlyOnce) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain, Weather::Snow});
  constexpr std::uint64_t kBase = 88000;
  StreamServer reference(*sc, storm_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("switch_storm_clean");
  StreamServerConfig cfg = storm_config(kBase, scratch.path, nullptr);
  StreamServer server(*sc, cfg);
  server.run();
  EXPECT_GE(server.switches_committed(), 3u) << "the storm must commit real switches";
  EXPECT_GT(server.model_cache()->stats().evictions, 0u)
      << "three weathers over two residencies must evict";
  expect_servers_agree(server, reference);
  audit_switch_journal(scratch.path / "journal.wal", /*expect_recovery_close=*/false);
}

// A second kill during the recovered run (here: mid-snapshot-write) must
// recover just as cleanly — recovery is re-entrant, not one-shot.
TEST(KillRecover, DoubleKillDoubleRecoverStaysBitIdentical) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 85000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u);

  ScratchDir scratch("double_kill");
  CrashInjector first_kill;
  first_kill.arm(CrashPoint::MidJournalAppend, 9);
  ASSERT_TRUE(run_killed(*sc, chaos_config(kBase, scratch.path, &first_kill),
                         Mode::Sequential));

  CrashInjector second_kill;
  second_kill.arm(CrashPoint::MidSnapshotWrite, 2);
  {
    StreamServer second(*sc, chaos_config(kBase, scratch.path, &second_kill));
    second.recover();
    bool crashed = false;
    try {
      second.run_sequential();
    } catch (const CrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "the second kill never fired";
  }

  auto recovered =
      recover_and_finish(*sc, chaos_config(kBase, scratch.path, nullptr), Mode::Sequential);
  expect_servers_agree(*recovered, reference);
}

// The batched server (producer threads + snapshot barrier) under the same
// kills: the consumer thread dies mid-append and mid-snapshot, producers
// are torn down, and the recovered batched run must still match the
// sequential reference bit-for-bit.
TEST(KillRecover, BatchedModeKillsRecoverBitIdentical) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 91000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u);

  struct Kill {
    CrashPoint point;
    std::size_t nth;
  };
  for (const Kill kill : {Kill{CrashPoint::MidJournalAppend, 7},
                          Kill{CrashPoint::MidSnapshotWrite, 2}}) {
    SCOPED_TRACE(crash_point_name(kill.point));
    ScratchDir scratch(std::string("batched_") + crash_point_name(kill.point));
    CrashInjector injector;
    injector.arm(kill.point, kill.nth);
    StreamServerConfig cfg = chaos_config(kBase, scratch.path, &injector);
    ASSERT_TRUE(run_killed(*sc, cfg, Mode::Batched));
    injector.disarm();
    auto recovered = recover_and_finish(*sc, cfg, Mode::Batched);
    expect_servers_agree(*recovered, reference);
  }
}

// A stream with a live fault plan (drops/freezes/blackouts consuming its
// own RNG stream, fail-safe gates in the decision mix) must resume
// bit-identically too — the injector state rides in the snapshot.
TEST(KillRecover, FaultPlanStreamsRecoverBitIdentical) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 95000;
  auto with_faults = [&](const fs::path& dir, CrashInjector* crash) {
    StreamServerConfig cfg = chaos_config(kBase, dir, crash);
    for (StreamConfig& s : cfg.streams) {
      s.faults.drop_prob = 0.02;
      s.faults.freeze_prob = 0.01;
      s.faults.blackout_prob = 0.002;
      s.faults.blackout_frames = 20;
    }
    return cfg;
  };
  StreamServer reference(*sc, with_faults({}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 8u);

  ScratchDir scratch("fault_plan");
  CrashInjector injector;
  injector.arm(CrashPoint::MidJournalAppend, 5);
  StreamServerConfig cfg = with_faults(scratch.path, &injector);
  ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential));
  injector.disarm();
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential);
  expect_servers_agree(*recovered, reference);
}

// A drifting camera mid-recalibration when the process dies: the restored
// run must replay the same calibration lineage (same episodes, same
// applied homographies, same conservative warns) bit-identically, and the
// journal must hold exactly one Recalibration record per accepted swap —
// whether the kill hit the sequential loop or the batched consumer.
TEST(KillRecover, DriftRecalibrationStreamsRecoverBitIdentical) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 93000;
  auto with_drift = [&](const fs::path& dir, CrashInjector* crash) {
    StreamServerConfig cfg = chaos_config(kBase, dir, crash);
    for (StreamConfig& s : cfg.streams) {
      s.faults.geometry.drift_px_per_frame = 0.03;  // 1.8 px per check
      s.faults.geometry.drift_stop_frame = 600;
      s.recalib.enabled = true;
      s.recalib.check_every_frames = 60;
    }
    return cfg;
  };
  StreamServer reference(*sc, with_drift({}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 8u);
  for (std::size_t i = 0; i < reference.stream_count(); ++i) {
    ASSERT_NE(reference.stream(i).recalibration(), nullptr);
    ASSERT_GT(reference.stream(i).recalibration()->recalibrations(), 0u)
        << "weak scenario: stream " << i << " never recalibrated";
  }

  struct Case {
    CrashPoint point;
    Mode mode;
    std::size_t nth;
    const char* tag;
  };
  for (const Case c : {Case{CrashPoint::MidJournalAppend, Mode::Sequential, 9, "seq_journal"},
                       Case{CrashPoint::MidSnapshotWrite, Mode::Sequential, 1, "seq_snapshot"},
                       Case{CrashPoint::MidJournalAppend, Mode::Batched, 7, "batched_journal"}}) {
    SCOPED_TRACE(c.tag);
    ScratchDir scratch(std::string("drift_recalib_") + c.tag);
    CrashInjector injector;
    injector.arm(c.point, c.nth);
    StreamServerConfig cfg = with_drift(scratch.path, &injector);
    ASSERT_TRUE(run_killed(*sc, cfg, c.mode)) << "armed kill never fired";
    injector.disarm();
    auto recovered = recover_and_finish(*sc, cfg, c.mode);
    expect_servers_agree(*recovered, reference);
    for (std::size_t i = 0; i < recovered->stream_count(); ++i) {
      SCOPED_TRACE("stream " + std::to_string(i));
      const runtime::RecalibrationLoop* got = recovered->stream(i).recalibration();
      const runtime::RecalibrationLoop* want = reference.stream(i).recalibration();
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->recalibrations(), want->recalibrations());
      EXPECT_EQ(got->miscalibration_episodes(), want->miscalibration_episodes());
      EXPECT_EQ(got->checks_run(), want->checks_run());
      for (int m = 0; m < 9; ++m) {
        EXPECT_EQ(got->applied_view().matrix()[m], want->applied_view().matrix()[m])
            << "calibration lineage diverged at matrix element " << m;
      }
    }
    // On-disk exactly-once for the calibration lineage: one Recalibration
    // record per accepted swap, never duplicated by the replay dedupe.
    const auto replay = runtime::Journal::replay(scratch.path / "journal.wal");
    EXPECT_FALSE(replay.torn_tail);
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> recals;
    for (const runtime::JournalRecord& rec : replay.records) {
      if (rec.type != runtime::JournalRecordType::Recalibration) continue;
      ++recals[std::make_pair(rec.recalibration.stream, rec.recalibration.frame)];
    }
    std::vector<std::size_t> per_stream(reference.stream_count(), 0);
    for (const auto& [key, count] : recals) {
      EXPECT_EQ(count, 1u) << "duplicate recalibration record for stream " << key.first
                           << " frame " << key.second;
      ASSERT_LT(key.first, per_stream.size());
      per_stream[key.first] += 1;
    }
    for (std::size_t i = 0; i < reference.stream_count(); ++i) {
      EXPECT_EQ(per_stream[i], reference.stream(i).recalibration()->recalibrations())
          << "journal lost or invented a recalibration on stream " << i;
    }
  }
}

// --- corruption on top of the kill: degrade, never abort ---

TEST(KillRecover, CorruptNewestSnapshotFallsBackToPreviousGeneration) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 87000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("corrupt_newest_snapshot");
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, nullptr);
  {
    StreamServer first(*sc, cfg);
    first.run_sequential();  // completes; >= 2 snapshot generations on disk
  }
  std::vector<fs::path> snaps;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    if (entry.path().extension() == ".bin") snaps.push_back(entry.path());
  }
  std::sort(snaps.begin(), snaps.end());
  ASSERT_GE(snaps.size(), 2u);
  common::flip_byte(snaps.back(), fs::file_size(snaps.back()) / 2);

  RecoveryReport report;
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential, &report);
  EXPECT_TRUE(report.recovered_from_snapshot);
  ASSERT_EQ(report.snapshots_rejected.size(), 1u);
  EXPECT_NE(report.snapshots_rejected[0].find(snaps.back().filename().string()),
            std::string::npos);
  expect_servers_agree(*recovered, reference);
}

TEST(KillRecover, AllSnapshotsCorruptFallsBackToJournalOnlyReplay) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 82000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("all_snapshots_corrupt");
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, nullptr);
  {
    StreamServer first(*sc, cfg);
    first.run_sequential();
  }
  std::size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    if (entry.path().extension() != ".bin") continue;
    common::write_garbage(entry.path(), 256, /*seed=*/damaged + 1);
    ++damaged;
  }
  ASSERT_GE(damaged, 2u);

  RecoveryReport report;
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential, &report);
  EXPECT_FALSE(report.recovered_from_snapshot);
  EXPECT_EQ(report.snapshots_rejected.size(), damaged);
  // Genesis replay: every journaled decision is pending, none re-decided.
  EXPECT_EQ(report.journal_pending, reference.total_decisions());
  expect_servers_agree(*recovered, reference);
}

// The ISSUE's never-abort criterion in one scenario: a kill that tears
// the journal tail AND garbage across every snapshot. Recovery reports
// the damage and still finishes bit-identical from genesis.
TEST(KillRecover, TornTailPlusCorruptSnapshotsDegradeGracefully) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 82000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("torn_tail_corrupt_snapshots");
  CrashInjector injector;
  injector.arm(CrashPoint::MidJournalAppend, 11);
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, &injector);
  ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential));
  injector.disarm();
  std::size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    if (entry.path().extension() != ".bin") continue;
    common::write_garbage(entry.path(), 64, /*seed=*/damaged + 41);
    ++damaged;
  }
  ASSERT_GE(damaged, 1u) << "the killed run should have cut at least one snapshot";

  RecoveryReport report;
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential, &report);
  EXPECT_FALSE(report.recovered_from_snapshot);
  EXPECT_EQ(report.snapshots_rejected.size(), damaged);
  EXPECT_TRUE(report.journal_torn_tail);
  EXPECT_GT(report.journal_bytes_dropped, 0u);
  EXPECT_FALSE(report.journal_tail_error.empty());
  expect_servers_agree(*recovered, reference);
}

TEST(KillRecover, JournalOnlyModeRecovers) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 97000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("journal_only");
  CrashInjector injector;
  injector.arm(CrashPoint::MidJournalAppend, 9);
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, &injector);
  cfg.durability.snapshot_every_decisions = 0;  // journal-only durability
  ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential));
  injector.disarm();
  RecoveryReport report;
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential, &report);
  EXPECT_FALSE(report.recovered_from_snapshot);
  EXPECT_GT(report.journal_records, 0u);
  expect_servers_agree(*recovered, reference);
  bool any_snapshot = false;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    any_snapshot |= entry.path().extension() == ".bin";
  }
  EXPECT_FALSE(any_snapshot) << "snapshot_every_decisions = 0 must never snapshot";
}

TEST(KillRecover, RecoverOnFreshDirIsAFreshStart) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 85000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();

  ScratchDir scratch("fresh_dir");
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, nullptr);
  RecoveryReport report;
  auto recovered = recover_and_finish(*sc, cfg, Mode::Sequential, &report);
  EXPECT_TRUE(report.journal_missing);
  EXPECT_FALSE(report.recovered_from_snapshot);
  EXPECT_EQ(report.journal_pending, 0u);
  expect_servers_agree(*recovered, reference);
}

// Double failover: the fleet controller may recover the SAME damaged dir
// twice — once for a failover wave that itself dies before completing,
// once more from a later wave. recover() + drain_streams() must be
// idempotent reads: a second recovery of an already-consumed dir yields
// byte-identical hand-offs (the first recovery's torn-tail truncation
// is the only on-disk mutation, and it must not change the replay), and
// a server that adopts those hand-offs into a fresh dir finishes
// bit-identical to the uninterrupted reference.
TEST(KillRecover, RecoverFromAnAlreadyConsumedDirYieldsIdenticalHandoffs) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  constexpr std::uint64_t kBase = 91000;
  StreamServer reference(*sc, chaos_config(kBase, {}, nullptr));
  reference.run_sequential();
  ASSERT_GE(reference.total_decisions(), 24u);

  ScratchDir scratch("double_recover_consumed");
  CrashInjector injector;
  injector.arm(CrashPoint::MidJournalAppend, 9);  // torn tail on disk
  StreamServerConfig cfg = chaos_config(kBase, scratch.path, &injector);
  ASSERT_TRUE(run_killed(*sc, cfg, Mode::Sequential));
  injector.disarm();
  cfg.durability.crash = nullptr;

  StreamServer first(*sc, cfg);
  RecoveryReport first_report = first.recover();
  const std::vector<StreamHandoff> a = first.drain_streams();
  EXPECT_TRUE(first_report.journal_torn_tail);

  StreamServer second(*sc, cfg);
  RecoveryReport second_report = second.recover();
  const std::vector<StreamHandoff> b = second.drain_streams();
  // The first recovery truncated the torn tail in place; the second sees
  // a clean journal holding the identical records.
  EXPECT_FALSE(second_report.journal_torn_tail);
  EXPECT_EQ(second_report.journal_pending, first_report.journal_pending);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("stream " + a[i].config.name);
    EXPECT_EQ(a[i].config.name, b[i].config.name);
    EXPECT_EQ(a[i].state, b[i].state) << "recovery must be a read, not a consume";
    EXPECT_EQ(a[i].down, b[i].down);
    EXPECT_EQ(a[i].frames_run, b[i].frames_run);
    EXPECT_EQ(a[i].windows_produced, b[i].windows_produced);
    ASSERT_EQ(a[i].pending.size(), b[i].pending.size());
    for (const auto& [seq, entry] : a[i].pending) {
      const auto it = b[i].pending.find(seq);
      ASSERT_NE(it, b[i].pending.end());
      EXPECT_EQ(entry.prob_danger, it->second.prob_danger);
      EXPECT_EQ(entry.warn, it->second.warn);
    }
    EXPECT_EQ(a[i].pending_recalib.size(), b[i].pending_recalib.size());
  }

  // Adopt the second drain into a fresh durable dir (the fleet's
  // failover-wave shape) and finish: still bit-identical.
  ScratchDir fresh("double_recover_fresh_wave");
  StreamServerConfig wave_cfg = chaos_config(kBase, fresh.path, nullptr);
  StreamServer wave(*sc, wave_cfg);
  for (std::size_t i = 0; i < b.size(); ++i) wave.adopt_stream(i, b[i]);
  wave.run_sequential();
  expect_servers_agree(wave, reference);
}

// --- operator errors stay loud (corruption degrades; misuse throws) ---

TEST(KillRecover, DurabilityRejectsSheddingConfigs) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  ScratchDir scratch("shed_rejected");
  StreamServerConfig cfg = chaos_config(82000, scratch.path, nullptr);
  cfg.shed_on_overload = true;  // lossy + durable is unrecoverable
  EXPECT_THROW(StreamServer(*sc, cfg), std::invalid_argument);
}

TEST(KillRecover, RunningOnAPreviousRunsDirWithoutRecoverThrows) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  ScratchDir scratch("stale_dir");
  StreamServerConfig cfg = chaos_config(82000, scratch.path, nullptr);
  {
    StreamServer first(*sc, cfg);
    first.run_sequential();
  }
  StreamServer second(*sc, cfg);
  EXPECT_THROW(second.run_sequential(), std::runtime_error)
      << "silently appending onto a previous run's journal must be refused";
}

TEST(KillRecover, SnapshotFromDifferentConfigIsRejected) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  ScratchDir scratch("fingerprint_mismatch");
  StreamServerConfig cfg = chaos_config(82000, scratch.path, nullptr);
  {
    StreamServer first(*sc, cfg);
    first.run_sequential();
  }
  StreamServerConfig other = cfg;
  other.streams[0].sim_seed += 1;  // not the run this snapshot belongs to
  StreamServer impostor(*sc, other);
  EXPECT_THROW(impostor.recover(), std::runtime_error);
}

TEST(KillRecover, RecoverMisuseThrowsLogicError) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  {
    StreamServer no_durability(*sc, chaos_config(82000, {}, nullptr));
    EXPECT_THROW(no_durability.recover(), std::logic_error);
  }
  ScratchDir scratch("recover_twice");
  StreamServer twice(*sc, chaos_config(82000, scratch.path, nullptr));
  twice.recover();
  EXPECT_THROW(twice.recover(), std::logic_error);
}

}  // namespace
}  // namespace safecross::serving
