#include "sim/camera.h"

#include <gtest/gtest.h>

namespace safecross::sim {
namespace {

TEST(Camera, BackgroundHasSkyRoadAndGrassBands) {
  CameraModel cam{IntersectionGeometry{}};
  const vision::Image& bg = cam.background();
  // Top rows are sky (bright-ish), bottom rows on the road corridor darker.
  EXPECT_GT(bg.at(bg.width() / 2, 2), 0.45f);
  // A pixel on the EW road (center of image, lowish) should be asphalt-dark.
  EXPECT_LT(bg.at(bg.width() / 2, bg.height() / 2), 0.5f);
}

TEST(Camera, GroundToImageMapsNearEdgeToBottom) {
  IntersectionGeometry g;
  CameraModel cam(g);
  const auto h = cam.ground_to_image();
  const vision::Point2 near = h.apply({g.world_width / 2, g.world_height});
  const vision::Point2 far = h.apply({g.world_width / 2, 0.0});
  EXPECT_GT(near.y, far.y);  // near edge lower in the image
}

TEST(Camera, PerspectiveCompressesFarEdge) {
  IntersectionGeometry g;
  CameraModel cam(g);
  const auto h = cam.ground_to_image();
  const double near_w =
      h.apply({g.world_width, g.world_height}).x - h.apply({0, g.world_height}).x;
  const double far_w = h.apply({g.world_width, 0}).x - h.apply({0, 0}).x;
  EXPECT_GT(near_w, far_w);
}

TEST(Camera, RenderShowsMovingVehicle) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 3);
  CameraModel cam(sim.intersection().geometry());
  for (int i = 0; i < 900; ++i) sim.step();
  ASSERT_FALSE(sim.vehicles().empty());
  Rng rng(1);
  const vision::Image frame = cam.render(sim, rng);
  // The frame differs from the background where vehicles are.
  const vision::Image diff = vision::Image::absdiff(frame, cam.background());
  EXPECT_GT(diff.count_above(0.2f), 5u);
}

TEST(Camera, RenderIsNoisyButBounded) {
  TrafficSimulator sim(weather_params(Weather::Rain), 3);
  CameraModel cam(sim.intersection().geometry());
  sim.step();
  Rng rng(2);
  const vision::Image frame = cam.render(sim, rng);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_GE(frame.data()[i], 0.0f);
    EXPECT_LE(frame.data()[i], 1.0f);
  }
}

TEST(Camera, RainFramesHaveMoreTransients) {
  TrafficSimulator day(weather_params(Weather::Daytime), 3);
  TrafficSimulator rain(weather_params(Weather::Rain), 3);
  CameraModel cam(day.intersection().geometry());
  Rng rng_a(5), rng_b(5);
  day.step();
  rain.step();
  const vision::Image f_day1 = cam.render(day, rng_a);
  const vision::Image f_day2 = cam.render(day, rng_a);
  const vision::Image f_rain1 = cam.render(rain, rng_b);
  const vision::Image f_rain2 = cam.render(rain, rng_b);
  const auto transients = [](const vision::Image& a, const vision::Image& b) {
    return vision::Image::absdiff(a, b).count_above(0.12f);
  };
  EXPECT_GT(transients(f_rain1, f_rain2), transients(f_day1, f_day2));
}

TEST(Camera, TopdownRasterizesMovingVehiclesOnly) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 3);
  CameraModel cam(sim.intersection().geometry());
  for (int i = 0; i < 900; ++i) sim.step();
  const vision::Image grid = cam.rasterize_topdown(sim, 36, 24);
  std::size_t moving = 0;
  for (const Vehicle& v : sim.vehicles()) {
    if (v.speed >= 0.5) ++moving;
  }
  if (moving > 0) {
    EXPECT_GT(grid.count_above(0.5f), 0u);
  }
  // Occupancy can never exceed the total vehicle footprint bound.
  EXPECT_LT(grid.count_above(0.5f), grid.size() / 2);
}

TEST(Camera, TopdownCellsMatchVehiclePositions) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 3);
  CameraModel cam(sim.intersection().geometry());
  for (int i = 0; i < 900; ++i) sim.step();
  const int gw = 60, gh = 40;  // 2 m per cell
  const vision::Image grid = cam.rasterize_topdown(sim, gw, gh);
  const auto& g = sim.intersection().geometry();
  for (const Vehicle& v : sim.vehicles()) {
    if (v.speed < 0.5) continue;
    const auto pos = sim.position(v);
    const auto dir = sim.heading(v);
    // Sample the vehicle's center point.
    const double cx = (pos.x - dir.x * v.length / 2) * gw / g.world_width;
    const double cy = (pos.y - dir.y * v.length / 2) * gh / g.world_height;
    const int ix = std::clamp(static_cast<int>(cx), 0, gw - 1);
    const int iy = std::clamp(static_cast<int>(cy), 0, gh - 1);
    EXPECT_GT(grid.at(ix, iy), 0.5f) << "vehicle " << v.id << " missing from grid";
  }
}

TEST(Camera, ImageToGridWarpsVehicleMaskOntoOccupiedCells) {
  TrafficSimulator sim(weather_params(Weather::Daytime), 11);
  CameraConfig cc;
  cc.low_quality_blur = false;
  CameraModel cam(sim.intersection().geometry(), cc);
  for (int i = 0; i < 900; ++i) sim.step();

  // Build an ideal foreground mask directly from the vehicle quads.
  vision::Image mask(cc.width, cc.height, 0.0f);
  for (const Vehicle& v : sim.vehicles()) {
    if (v.speed < 0.5) continue;
    fill_convex_quad(mask, cam.vehicle_quad_image(sim, v), 1.0f);
  }
  if (mask.count_above(0.5f) == 0) GTEST_SKIP() << "no moving vehicles in view";

  const int gw = 36, gh = 24;
  const vision::Image warped = cam.image_to_grid(gw, gh).warp(mask, gw, gh).threshold(0.5f);
  const vision::Image truth = cam.rasterize_topdown(sim, gw, gh);
  // Warped mask must overlap the ground-truth occupancy substantially.
  std::size_t overlap = 0, truth_cells = 0;
  for (int y = 0; y < gh; ++y) {
    for (int x = 0; x < gw; ++x) {
      if (truth.at(x, y) > 0.5f) {
        ++truth_cells;
        if (warped.at(x, y) > 0.5f) ++overlap;
      }
    }
  }
  ASSERT_GT(truth_cells, 0u);
  EXPECT_GT(static_cast<double>(overlap) / truth_cells, 0.5);
}

TEST(FillConvexQuad, FillsAxisAlignedRect) {
  vision::Image img(10, 10, 0.0f);
  fill_convex_quad(img, {vision::Point2{2, 2}, {7, 2}, {7, 5}, {2, 5}}, 1.0f);
  EXPECT_GT(img.at(4, 3), 0.5f);
  EXPECT_FLOAT_EQ(img.at(8, 8), 0.0f);
  EXPECT_GE(img.count_above(0.5f), 12u);
}

TEST(FillConvexQuad, HandlesOffscreenQuads) {
  vision::Image img(10, 10, 0.0f);
  fill_convex_quad(img, {vision::Point2{-20, -20}, {-10, -20}, {-10, -10}, {-20, -10}}, 1.0f);
  EXPECT_EQ(img.count_above(0.5f), 0u);
}

}  // namespace
}  // namespace safecross::sim
