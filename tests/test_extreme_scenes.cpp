// Rendering and physics properties of the extension scenes (Night, Fog).

#include <gtest/gtest.h>

#include "sim/camera.h"
#include "sim/traffic.h"

namespace safecross::sim {
namespace {

vision::Image render_scene(Weather w, std::uint64_t seed, int steps = 600) {
  TrafficSimulator sim(weather_params(w), seed);
  const CameraModel cam(sim.intersection().geometry());
  Rng rng(seed ^ 0xE0);
  for (int i = 0; i < steps; ++i) sim.step();
  return cam.render(sim, rng);
}

TEST(ExtremeScenes, NightFramesAreDark) {
  const float night = render_scene(Weather::Night, 3).mean();
  const float day = render_scene(Weather::Daytime, 3).mean();
  EXPECT_LT(night, day * 0.6f);
}

TEST(ExtremeScenes, HeadlightsCreateBrightSpotsAtNight) {
  TrafficSimulator sim(weather_params(Weather::Night), 5);
  const CameraModel cam(sim.intersection().geometry());
  Rng rng(6);
  for (int i = 0; i < 900; ++i) sim.step();
  if (sim.vehicles().empty()) GTEST_SKIP() << "no vehicles in view";
  const vision::Image frame = cam.render(sim, rng);
  // Despite ambient 0.35, headlight patches push pixels near white.
  EXPECT_GT(frame.count_above(0.8f), 0u);
}

TEST(ExtremeScenes, FogRaisesBrightnessTowardVeil) {
  const float fog = render_scene(Weather::Fog, 7).mean();
  const float day = render_scene(Weather::Daytime, 7).mean();
  EXPECT_GT(fog, day);
}

TEST(ExtremeScenes, FogKillsFarFieldContrastMoreThanNear) {
  TrafficSimulator day_sim(weather_params(Weather::Daytime), 9);
  TrafficSimulator fog_sim(weather_params(Weather::Fog), 9);
  const CameraModel cam(day_sim.intersection().geometry());
  Rng rng_a(10), rng_b(10);
  day_sim.step();
  fog_sim.step();
  const vision::Image day = cam.render(day_sim, rng_a);
  const vision::Image fog = cam.render(fog_sim, rng_b);
  auto band_stddev = [](const vision::Image& img, int y0, int y1) {
    double sum = 0.0, sq = 0.0;
    int n = 0;
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < img.width(); ++x) {
        sum += img.at(x, y);
        sq += static_cast<double>(img.at(x, y)) * img.at(x, y);
        ++n;
      }
    }
    const double mean = sum / n;
    return std::sqrt(std::max(0.0, sq / n - mean * mean));
  };
  // Far field: just below the horizon line (rows ~30-45% of frame).
  const int h = day.height();
  const double far_ratio = band_stddev(fog, static_cast<int>(0.3 * h), static_cast<int>(0.45 * h)) /
                           band_stddev(day, static_cast<int>(0.3 * h), static_cast<int>(0.45 * h));
  const double near_ratio = band_stddev(fog, static_cast<int>(0.8 * h), h) /
                            band_stddev(day, static_cast<int>(0.8 * h), h);
  EXPECT_LT(far_ratio, near_ratio);
}

TEST(ExtremeScenes, DepthMapIncreasesTowardHorizon) {
  const CameraModel cam{IntersectionGeometry{}};
  const vision::Image& depth = cam.depth_map();
  const int x = depth.width() / 2;
  // Near the bottom (close to the camera) depth is small; far rows large.
  EXPECT_LT(depth.at(x, depth.height() - 2), 10.0f);
  EXPECT_GT(depth.at(x, static_cast<int>(0.35 * depth.height())), 40.0f);
}

TEST(ExtremeScenes, PhysicsOrderingAcrossWeathers) {
  // Friction: daytime > night > fog > rain > snow.
  EXPECT_GT(weather_params(Weather::Daytime).friction, weather_params(Weather::Night).friction);
  EXPECT_GT(weather_params(Weather::Night).friction, weather_params(Weather::Fog).friction);
  EXPECT_GT(weather_params(Weather::Fog).friction, weather_params(Weather::Rain).friction);
  EXPECT_GT(weather_params(Weather::Rain).friction, weather_params(Weather::Snow).friction);
  // Fog slows traffic harder than night.
  EXPECT_LT(weather_params(Weather::Fog).speed_factor,
            weather_params(Weather::Night).speed_factor);
}

TEST(ExtremeScenes, DangerZoneReachReflectsFriction) {
  using vision::DangerZoneModel;
  using vision::danger_zone_reach_m;
  const float day = danger_zone_reach_m(DangerZoneModel::for_weather(Weather::Daytime));
  const float night = danger_zone_reach_m(DangerZoneModel::for_weather(Weather::Night));
  const float fog = danger_zone_reach_m(DangerZoneModel::for_weather(Weather::Fog));
  EXPECT_GT(night, day);
  EXPECT_GT(fog, night);
}

}  // namespace
}  // namespace safecross::sim
