// Multi-stream serving parity: the batched StreamServer must produce
// verdicts bit-identical to the sequential reference — across batch
// sizes, mixed weathers, a mid-run model switch, and producer crashes
// within the retry budget — and must isolate a stream whose producer
// dies for good. Overload must shed with exact accounting, never stall.

#include "serving/stream_server.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "models/slowfast.h"

namespace safecross::serving {
namespace {

using core::SafeCross;
using core::SafeCrossConfig;
using dataset::Weather;

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

/// Engine with one untrained (but deterministically initialised) model
/// per requested weather — differently seeded so each weather's verdicts
/// genuinely differ and a wrong-model bug cannot hide.
std::unique_ptr<SafeCross> engine_with_models(const std::vector<Weather>& weathers) {
  auto sc = std::make_unique<SafeCross>(tiny_config());
  for (Weather w : weathers) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
  return sc;
}

StreamConfig make_stream(const std::string& name, Weather weather, std::uint64_t seed_base) {
  StreamConfig sc;
  sc.name = name;
  sc.weather = weather;
  sc.sim_seed = seed_base;
  sc.collector_seed = seed_base + 1;
  sc.fault_seed = seed_base + 2;
  return sc;
}

runtime::BackoffPolicy fast_backoff(int max_restarts = 5) {
  runtime::BackoffPolicy policy;
  policy.initial_ms = 0.5;
  policy.max_ms = 5.0;
  policy.max_restarts = max_restarts;
  return policy;
}

/// Per-stream verdict traces and scorecards must agree exactly. The
/// parity contract is bitwise, so even prob_danger compares with EQ.
void expect_servers_agree(const StreamServer& batched, const StreamServer& reference) {
  ASSERT_EQ(batched.stream_count(), reference.stream_count());
  for (std::size_t i = 0; i < batched.stream_count(); ++i) {
    const auto& b = batched.stream(i);
    const auto& r = reference.stream(i);
    SCOPED_TRACE("stream " + b.config().name);
    EXPECT_EQ(b.frames_run(), r.frames_run());
    EXPECT_EQ(b.windows_produced(), r.windows_produced());
    const auto& bt = b.trace();
    const auto& rt = r.trace();
    ASSERT_EQ(bt.size(), rt.size());
    for (std::size_t s = 0; s < bt.size(); ++s) {
      SCOPED_TRACE("seq " + std::to_string(s));
      EXPECT_EQ(bt[s].frame, rt[s].frame);
      EXPECT_EQ(bt[s].danger_truth, rt[s].danger_truth);
      EXPECT_EQ(bt[s].predicted_class, rt[s].predicted_class);
      EXPECT_EQ(bt[s].prob_danger, rt[s].prob_danger) << "verdicts must be bit-identical";
      EXPECT_EQ(bt[s].warn, rt[s].warn);
      EXPECT_EQ(bt[s].source, rt[s].source);
    }
    EXPECT_EQ(b.scorecard().decisions(), r.scorecard().decisions());
    EXPECT_EQ(b.scorecard().warnings(), r.scorecard().warnings());
    EXPECT_EQ(b.scorecard().correct(), r.scorecard().correct());
    EXPECT_EQ(b.scorecard().missed_threats(), r.scorecard().missed_threats());
    EXPECT_EQ(b.scorecard().false_warnings(), r.scorecard().false_warnings());
    EXPECT_EQ(b.scorecard().fail_safe_decisions(), r.scorecard().fail_safe_decisions());
    EXPECT_EQ(b.scorecard().decision_opportunities(),
              r.scorecard().decision_opportunities());
  }
}

StreamServerConfig parity_base_config() {
  StreamServerConfig cfg;
  cfg.frames = 30 * 60;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;  // parity runs must lose nothing
  return cfg;
}

TEST(StreamServer, BatchedMatchesSequentialSingleWeather) {
  auto sc = engine_with_models({Weather::Daytime});
  StreamServerConfig cfg = parity_base_config();
  for (int i = 0; i < 3; ++i) {
    cfg.streams.push_back(make_stream("cam" + std::to_string(i), Weather::Daytime,
                                      1000 + 10 * static_cast<std::uint64_t>(i)));
  }
  cfg.batcher.max_batch = 3;

  StreamServer batched(*sc, cfg);
  batched.run();
  StreamServer reference(*sc, cfg);
  reference.run_sequential();

  ASSERT_GT(batched.total_decisions(), 0u) << "the scenario produced no decisions";
  EXPECT_EQ(batched.windows_shed_total(), 0u);
  expect_servers_agree(batched, reference);
  // Same weather everywhere: one residency establishment, no further
  // engine swaps in either mode.
  EXPECT_LE(batched.engine_switches(), 1u);
}

TEST(StreamServer, BatchedMatchesSequentialAcrossBatchSizes) {
  auto sc = engine_with_models({Weather::Daytime});
  StreamServerConfig cfg = parity_base_config();
  cfg.frames = 30 * 40;
  for (int i = 0; i < 3; ++i) {
    cfg.streams.push_back(make_stream("cam" + std::to_string(i), Weather::Daytime,
                                      2000 + 10 * static_cast<std::uint64_t>(i)));
  }

  StreamServerConfig seq_cfg = cfg;
  StreamServer reference(*sc, seq_cfg);
  reference.run_sequential();

  for (std::size_t max_batch : {std::size_t{1}, std::size_t{3}, cfg.streams.size()}) {
    SCOPED_TRACE("max_batch " + std::to_string(max_batch));
    StreamServerConfig bcfg = cfg;
    bcfg.batcher.max_batch = max_batch;
    StreamServer batched(*sc, bcfg);
    batched.run();
    expect_servers_agree(batched, reference);
    if (max_batch == 1) {
      // Degenerate batching: every fired batch is a single window.
      for (const BatchRecord& rec : batched.batch_log()) EXPECT_EQ(rec.size, 1u);
    }
  }
}

TEST(StreamServer, BatchedMatchesSequentialMixedWeather) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain, Weather::Snow});
  StreamServerConfig cfg = parity_base_config();
  cfg.streams.push_back(make_stream("day0", Weather::Daytime, 3000));
  cfg.streams.push_back(make_stream("rain", Weather::Rain, 3010));
  cfg.streams.push_back(make_stream("day1", Weather::Daytime, 3020));
  cfg.streams.push_back(make_stream("snow", Weather::Snow, 3030));
  cfg.batcher.max_batch = 4;

  StreamServer batched(*sc, cfg);
  batched.run();
  StreamServer reference(*sc, cfg);
  reference.run_sequential();

  ASSERT_GT(batched.total_decisions(), 0u);
  expect_servers_agree(batched, reference);
  // The weather-grouping invariant holds in the realised batch log too:
  // every batch is weather-uniform by construction, so the log must show
  // batches from several weathers rather than one merged stream.
  bool saw_day = false, saw_other = false;
  for (const BatchRecord& rec : batched.batch_log()) {
    ASSERT_LE(rec.size, 4u);
    (rec.weather == Weather::Daytime ? saw_day : saw_other) = true;
  }
  EXPECT_TRUE(saw_day);
  EXPECT_TRUE(saw_other);
}

TEST(StreamServer, BatchedMatchesSequentialUnderDriftRecalibration) {
  // Each stream's camera drifts and self-heals on its own schedule; the
  // batched executor must replay every stream's calibration lineage (and
  // therefore every verdict, including the conservative miscalibration
  // warns) bit-identically to the sequential reference.
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  StreamServerConfig cfg = parity_base_config();
  StreamConfig s0 = make_stream("drift-day", Weather::Daytime, 1000);
  StreamConfig s1 = make_stream("drift-rain", Weather::Rain, 1010);
  for (StreamConfig* s : {&s0, &s1}) {
    s->faults.geometry.drift_px_per_frame = 0.03;  // 1.8 px per check
    s->faults.geometry.drift_stop_frame = 600;
    s->recalib.enabled = true;
    s->recalib.check_every_frames = 60;
  }
  cfg.streams = {s0, s1};
  cfg.batcher.max_batch = 2;

  StreamServer batched(*sc, cfg);
  batched.run();
  StreamServer reference(*sc, cfg);
  reference.run_sequential();

  ASSERT_GT(batched.total_decisions(), 0u);
  expect_servers_agree(batched, reference);
  for (std::size_t i = 0; i < batched.stream_count(); ++i) {
    SCOPED_TRACE("stream " + batched.stream(i).config().name);
    const runtime::RecalibrationLoop* b = batched.stream(i).recalibration();
    const runtime::RecalibrationLoop* r = reference.stream(i).recalibration();
    ASSERT_NE(b, nullptr);
    ASSERT_NE(r, nullptr);
    EXPECT_GT(b->recalibrations(), 0u) << "drift never triggered a recalibration";
    EXPECT_EQ(b->recalibrations(), r->recalibrations());
    EXPECT_EQ(b->miscalibration_episodes(), r->miscalibration_episodes());
    EXPECT_EQ(b->checks_run(), r->checks_run());
    EXPECT_EQ(b->estimates_rejected(), r->estimates_rejected());
    for (int m = 0; m < 9; ++m) {
      EXPECT_EQ(b->applied_view().matrix()[m], r->applied_view().matrix()[m])
          << "applied view diverged at element " << m;
    }
  }
}

TEST(StreamServer, ParityHoldsAcrossMidRunModelSwitch) {
  auto sc = engine_with_models({Weather::Daytime, Weather::Rain});
  StreamServerConfig cfg = parity_base_config();
  cfg.frames = 30 * 120;
  cfg.streams.push_back(make_stream("switching", Weather::Daytime, 535353));
  cfg.streams.push_back(make_stream("steady", Weather::Daytime, 4010));
  // A third of the way in, stream 0's scene turns to rain: its later
  // windows must be judged by the rain model in both modes, and the swap
  // latency must gate the same decisions conservative in both modes.
  const std::size_t switch_frame = cfg.frames / 3;
  cfg.streams[0].model_schedule.push_back({switch_frame, Weather::Rain, 120.0});
  cfg.batcher.max_batch = 2;

  StreamServer batched(*sc, cfg);
  batched.run();
  StreamServer reference(*sc, cfg);
  reference.run_sequential();

  expect_servers_agree(batched, reference);
  const auto& trace = batched.stream(0).trace();
  ASSERT_FALSE(trace.empty());
  // The switch really split the stream's verdicts across both models:
  // model-gated decisions exist on both sides of the switch point, and
  // the batch log shows weather-uniform batches from both weathers (the
  // grouping invariant means the engine ran rain windows separately).
  bool model_before = false, model_after = false;
  for (const DecisionRecord& rec : trace) {
    if (rec.source != runtime::DecisionSource::Model) continue;
    (rec.frame < switch_frame ? model_before : model_after) = true;
  }
  EXPECT_TRUE(model_before) << "no pre-switch model verdict — weak scenario";
  EXPECT_TRUE(model_after) << "no post-switch window reached the rain model";
  bool saw_rain_batch = false;
  for (const BatchRecord& rec : batched.batch_log()) {
    saw_rain_batch |= rec.weather == Weather::Rain;
  }
  EXPECT_TRUE(saw_rain_batch);
  // Both weathers really claimed the engine at some point. (The absolute
  // count is residency-dependent — the engine is shared across the two
  // runs — so only the lower bound is meaningful here.)
  EXPECT_GE(batched.engine_switches() + reference.engine_switches(), 2u);
}

TEST(StreamServer, SequentialMatchesRealtimeMonitor) {
  // The serving reference path and the original synchronous monitor are
  // two implementations of the same per-stream policy; their scorecards
  // over an identical stream must agree exactly.
  auto sc = engine_with_models({Weather::Daytime});
  // Warm-start the engine so the monitor's constructor-time scene change
  // is a no-op, matching the server's warm-start contract.
  sc->on_scene_change(Weather::Daytime);
  constexpr std::size_t kFrames = 30 * 120;
  constexpr std::uint64_t kSimSeed = 535353, kCollectorSeed = 535354;

  StreamServerConfig cfg;
  cfg.frames = kFrames;
  cfg.streams.push_back(make_stream("solo", Weather::Daytime, kSimSeed));
  cfg.streams[0].collector_seed = kCollectorSeed;
  StreamServer server(*sc, cfg);
  server.run_sequential();

  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), kSimSeed);
  const sim::CameraModel cam(sim.intersection().geometry());
  core::MonitorConfig mcfg;
  core::RealtimeMonitor monitor(*sc, sim, cam, mcfg, kCollectorSeed);
  monitor.run(kFrames);

  const auto& scorecard = server.stream(0).scorecard();
  ASSERT_GT(monitor.decisions(), 0u);
  EXPECT_EQ(scorecard.decisions(), monitor.decisions());
  EXPECT_EQ(scorecard.warnings(), monitor.warnings());
  EXPECT_EQ(scorecard.correct(), monitor.correct());
  EXPECT_EQ(scorecard.missed_threats(), monitor.missed_threats());
  EXPECT_EQ(scorecard.false_warnings(), monitor.false_warnings());
  EXPECT_EQ(scorecard.fail_safe_decisions(), monitor.fail_safe_decisions());
  EXPECT_EQ(scorecard.decision_opportunities(), monitor.decision_opportunities());
}

TEST(StreamServer, ProducerCrashesWithinBudgetChangeNothing) {
  auto sc = engine_with_models({Weather::Daytime});
  StreamServerConfig cfg = parity_base_config();
  cfg.frames = 30 * 40;
  cfg.backoff = fast_backoff();
  cfg.streams.push_back(make_stream("crashy", Weather::Daytime, 6000));
  cfg.streams.push_back(make_stream("calm", Weather::Daytime, 6010));
  cfg.streams[0].crash_frames = {100, 500};
  cfg.batcher.max_batch = 2;

  StreamServer batched(*sc, cfg);
  batched.run();

  // The reference ignores crash schedules — which is the point: restarts
  // replay the crashed frame, so the verdict stream shows no trace of
  // either crash.
  StreamServer reference(*sc, cfg);
  reference.run_sequential();

  EXPECT_EQ(batched.crashes_injected(), 2u);
  EXPECT_EQ(batched.stage_restarts(), 2u);
  EXPECT_EQ(batched.streams_gave_up(), 0u);
  EXPECT_FALSE(batched.stream_down(0));
  expect_servers_agree(batched, reference);
}

TEST(StreamServer, DeadProducerIsIsolatedFromOtherStreams) {
  auto sc = engine_with_models({Weather::Daytime});
  StreamServerConfig cfg = parity_base_config();
  cfg.frames = 30 * 40;
  cfg.backoff = fast_backoff(/*max_restarts=*/2);
  cfg.streams.push_back(make_stream("doomed", Weather::Daytime, 7000));
  cfg.streams.push_back(make_stream("survivor0", Weather::Daytime, 7010));
  cfg.streams.push_back(make_stream("survivor1", Weather::Daytime, 7020));
  // Crashes on the first frame of each incarnation: budget exhausted
  // immediately, the stream never produces a single frame.
  cfg.streams[0].crash_frames = {1, 1, 1};
  cfg.batcher.max_batch = 3;

  StreamServer batched(*sc, cfg);
  batched.run();  // must not hang on the dead stream's queue

  EXPECT_TRUE(batched.stream_down(0));
  EXPECT_EQ(batched.streams_gave_up(), 1u);
  EXPECT_TRUE(batched.stream(0).health().fail_safe_latched());
  EXPECT_EQ(batched.stream(0).scorecard().decisions(), 0u);

  // The survivors ran to completion and match their own solo reference.
  StreamServerConfig solo = cfg;
  solo.streams.erase(solo.streams.begin());
  solo.streams[0].crash_frames.clear();
  StreamServer reference(*sc, solo);
  reference.run_sequential();
  for (std::size_t i = 1; i < batched.stream_count(); ++i) {
    SCOPED_TRACE(batched.stream(i).config().name);
    EXPECT_EQ(batched.stream(i).frames_run(), cfg.frames);
    const auto& got = batched.stream(i).trace();
    const auto& want = reference.stream(i - 1).trace();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s].predicted_class, want[s].predicted_class);
      EXPECT_EQ(got[s].prob_danger, want[s].prob_danger);
      EXPECT_EQ(got[s].source, want[s].source);
    }
  }
}

TEST(StreamServer, OverloadShedsWithExactAccounting) {
  auto sc = engine_with_models({Weather::Daytime});
  StreamServerConfig cfg;
  cfg.frames = 30 * 40;
  cfg.streams.push_back(make_stream("hot0", Weather::Daytime, 8000));
  cfg.streams.push_back(make_stream("hot1", Weather::Daytime, 8010));
  // A grinding engine (100 ms per batch), tiny queues and an aggressive
  // push timeout force the shedding path.
  cfg.decide_delay_ms = 100.0;
  cfg.queue_capacity = 2;
  cfg.push_timeout_ms = 1.0;
  cfg.shed_on_overload = true;
  cfg.batcher.max_batch = 2;

  // Whether overload actually materialises is a race against the OS
  // scheduler: on a loaded machine the producers themselves can be
  // starved below the consumer's rate and nothing sheds. Retry the
  // scenario a few times for the shed>0 precondition; the conservation
  // invariant is asserted on every attempt regardless.
  std::size_t shed_total = 0;
  std::size_t decisions_total = 0;
  for (int attempt = 0; attempt < 3 && shed_total == 0; ++attempt) {
    StreamServer server(*sc, cfg);
    server.run();
    shed_total = server.windows_shed_total();
    decisions_total = server.total_decisions();
    // Conservation: every produced window was either decided or shed —
    // none vanished, none was double-counted.
    for (std::size_t i = 0; i < server.stream_count(); ++i) {
      SCOPED_TRACE(server.stream(i).config().name);
      EXPECT_EQ(server.stream(i).windows_produced(),
                server.stream(i).scorecard().decisions() + server.windows_shed(i));
    }
  }
  EXPECT_GT(shed_total, 0u) << "overload must shed, not queue unboundedly";
  EXPECT_GT(decisions_total, 0u) << "shedding must not starve the service";
}

}  // namespace
}  // namespace safecross::serving
