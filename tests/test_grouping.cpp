#include "switching/grouping.h"

#include <numeric>

#include <gtest/gtest.h>

namespace safecross::switching {
namespace {

ModelProfile uniform_profile(int layers, std::size_t bytes_each, double compute_each) {
  ModelProfile p;
  p.name = "uniform";
  for (int i = 0; i < layers; ++i) {
    // Built with += rather than operator+: every string operator+ overload
    // trips GCC 12's -Wrestrict false positive at -O3 (PR105651).
    std::string name = "l";
    name += std::to_string(i);
    p.layers.push_back({std::move(name), bytes_each, compute_each, 0.0});
  }
  return p;
}

TEST(Grouping, HelpersCoverAllLayers) {
  const ModelProfile p = uniform_profile(10, 1000, 0.1);
  const auto per_layer = per_layer_grouping(p);
  EXPECT_EQ(std::accumulate(per_layer.begin(), per_layer.end(), 0), 10);
  EXPECT_EQ(whole_model_grouping(p), std::vector<int>{10});
  const auto fixed = fixed_grouping(p, 3);
  EXPECT_EQ(std::accumulate(fixed.begin(), fixed.end(), 0), 10);
  EXPECT_EQ(fixed.back(), 1);  // 3+3+3+1
}

TEST(Grouping, MakespanOfSingleGroupIsSequential) {
  GpuModelConfig gpu;
  gpu.transfer_setup_ms = 0.0;
  gpu.group_sync_ms = 0.0;
  const ModelProfile p = uniform_profile(4, 10'000'000, 2.0);
  const double makespan = pipelined_makespan(p, whole_model_grouping(p), gpu);
  const double expected = transfer_ms(40'000'000, gpu) + 8.0;
  EXPECT_NEAR(makespan, expected, 1e-9);
}

TEST(Grouping, PipeliningBeatsWholeModel) {
  GpuModelConfig gpu;
  const ModelProfile p = uniform_profile(20, 10'000'000, 1.0);
  const double whole = pipelined_makespan(p, whole_model_grouping(p), gpu);
  const double per_layer = pipelined_makespan(p, per_layer_grouping(p), gpu);
  EXPECT_LT(per_layer, whole);
}

TEST(Grouping, OptimalNeverWorseThanBaselines) {
  GpuModelConfig gpu;
  for (const ModelProfile& p :
       {slowfast_r50_profile(), resnet152_profile(), inception_v3_profile(),
        uniform_profile(30, 5'000'000, 0.3)}) {
    const auto opt = optimal_grouping(p, gpu);
    const double best = pipelined_makespan(p, opt, gpu);
    EXPECT_LE(best, pipelined_makespan(p, per_layer_grouping(p), gpu) + 1e-9) << p.name;
    EXPECT_LE(best, pipelined_makespan(p, whole_model_grouping(p), gpu) + 1e-9) << p.name;
    for (int k : {2, 4, 8}) {
      EXPECT_LE(best, pipelined_makespan(p, fixed_grouping(p, k), gpu) + 1e-9)
          << p.name << " vs fixed-" << k;
    }
  }
}

TEST(Grouping, OptimalCoversAllLayers) {
  GpuModelConfig gpu;
  const ModelProfile p = resnet152_profile();
  const auto opt = optimal_grouping(p, gpu);
  EXPECT_EQ(std::accumulate(opt.begin(), opt.end(), 0), static_cast<int>(p.layers.size()));
  for (const int g : opt) EXPECT_GT(g, 0);
}

TEST(Grouping, MaxGroupsRespected) {
  GpuModelConfig gpu;
  const ModelProfile p = uniform_profile(20, 5'000'000, 0.5);
  const auto opt = optimal_grouping(p, gpu, /*max_groups=*/3);
  EXPECT_LE(opt.size(), 3u);
  EXPECT_EQ(std::accumulate(opt.begin(), opt.end(), 0), 20);
}

TEST(Grouping, HighSetupCostMergesGroups) {
  GpuModelConfig cheap;
  cheap.transfer_setup_ms = 0.001;
  GpuModelConfig costly;
  costly.transfer_setup_ms = 5.0;  // DMA calls hurt: prefer fewer groups
  const ModelProfile p = uniform_profile(16, 4'000'000, 0.4);
  const auto g_cheap = optimal_grouping(p, cheap);
  const auto g_costly = optimal_grouping(p, costly);
  EXPECT_LT(g_costly.size(), g_cheap.size());
}

TEST(Grouping, EmptyProfileYieldsEmptyGrouping) {
  GpuModelConfig gpu;
  ModelProfile empty;
  EXPECT_TRUE(optimal_grouping(empty, gpu).empty());
}

TEST(Grouping, OptimalMatchesBruteForceOnSmallProfiles) {
  GpuModelConfig gpu;
  gpu.transfer_setup_ms = 0.3;
  gpu.group_sync_ms = 0.2;
  // Irregular 8-layer profile; brute force all 2^7 boundary subsets.
  ModelProfile p;
  p.name = "irregular";
  const std::size_t bytes[8] = {8'000'000, 1'000'000, 16'000'000, 2'000'000,
                                4'000'000, 12'000'000, 500'000,   20'000'000};
  const double comp[8] = {0.9, 0.1, 1.4, 0.2, 0.5, 1.2, 0.05, 2.0};
  for (int i = 0; i < 8; ++i) p.layers.push_back({"l", bytes[i], comp[i], 0.0});

  double brute_best = 1e18;
  for (int mask = 0; mask < 128; ++mask) {
    std::vector<int> groups;
    int size = 1;
    for (int b = 0; b < 7; ++b) {
      if (mask & (1 << b)) {
        groups.push_back(size);
        size = 1;
      } else {
        ++size;
      }
    }
    groups.push_back(size);
    brute_best = std::min(brute_best, pipelined_makespan(p, groups, gpu));
  }
  const double opt = pipelined_makespan(p, optimal_grouping(p, gpu), gpu);
  EXPECT_NEAR(opt, brute_best, 1e-9);
}

}  // namespace
}  // namespace safecross::switching
