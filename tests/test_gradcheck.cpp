// Numerical gradient checks for every trainable layer and for the full
// model graphs — the single most load-bearing correctness test of the nn
// substrate: a silent backward bug would corrupt every accuracy table.

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "models/c3d.h"
#include "models/slowfast.h"
#include "models/tsn.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace safecross {
namespace {

using nn::Tensor;
using testing::check_gradients;
using testing::random_tensor;

template <typename L>
void check_layer(L& layer, Tensor input, double tol = 5e-2) {
  check_gradients(
      [&](const Tensor& x) { return layer.forward(x, true); },
      [&](const Tensor& g) { return layer.backward(g); }, layer.params(), std::move(input),
      1e-3, tol);
}

TEST(GradCheck, Linear) {
  nn::Linear layer(6, 4);
  Rng rng(1);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({3, 6}, 2));
}

TEST(GradCheck, LinearNoBias) {
  nn::Linear layer(5, 3, /*bias=*/false);
  Rng rng(3);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({2, 5}, 4));
}

TEST(GradCheck, Conv2D) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.padding = 1;
  nn::Conv2D layer(cfg);
  Rng rng(5);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({2, 2, 5, 6}, 6));
}

TEST(GradCheck, Conv2DStridedNoPad) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel = 3;
  cfg.stride = 2;
  cfg.padding = 0;
  nn::Conv2D layer(cfg);
  Rng rng(7);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({1, 1, 7, 9}, 8));
}

TEST(GradCheck, Conv3D) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel_t = 3;
  cfg.kernel_s = 3;
  cfg.pad_t = 1;
  cfg.pad_s = 1;
  nn::Conv3D layer(cfg);
  Rng rng(9);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({1, 2, 4, 5, 5}, 10));
}

TEST(GradCheck, Conv3DTimeStrided) {
  // The SlowFast lateral-connection geometry: kt = stride_t, no padding.
  nn::Conv3DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel_t = 4;
  cfg.kernel_s = 1;
  cfg.stride_t = 4;
  cfg.pad_t = 0;
  cfg.pad_s = 0;
  nn::Conv3D layer(cfg);
  Rng rng(11);
  nn::init_params(layer.params(), rng);
  check_layer(layer, random_tensor({2, 1, 8, 3, 4}, 12));
}

// Backend-pinned gradient checks: the tests above run on the default
// (im2col) backend; these pin each backend explicitly on geometries where
// the im2col range math has the most edge cases.

TEST(GradCheck, Conv2DBackendsOddStridePadding) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel = 5;
  cfg.stride = 3;
  cfg.padding = 2;
  for (const auto backend : {nn::ConvBackend::kDirect, nn::ConvBackend::kIm2col}) {
    cfg.backend = backend;
    nn::Conv2D layer(cfg);
    Rng rng(41);
    nn::init_params(layer.params(), rng);
    check_layer(layer, random_tensor({2, 2, 11, 8}, 42));
  }
}

TEST(GradCheck, Conv3DBackendsOddStridePadding) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel_t = 3;
  cfg.kernel_s = 5;
  cfg.stride_t = 2;
  cfg.stride_s = 3;
  cfg.pad_t = 1;
  cfg.pad_s = 2;
  for (const auto backend : {nn::ConvBackend::kDirect, nn::ConvBackend::kIm2col}) {
    cfg.backend = backend;
    nn::Conv3D layer(cfg);
    Rng rng(43);
    nn::init_params(layer.params(), rng);
    check_layer(layer, random_tensor({1, 2, 5, 9, 7}, 44));
  }
}

TEST(GradCheck, MaxPool2D) {
  nn::MaxPool2D layer(2, 2);
  check_layer(layer, random_tensor({2, 2, 6, 6}, 13));
}

TEST(GradCheck, MaxPool3D) {
  nn::MaxPool3D layer(2, 2, 2, 2);
  // Well-separated values so the +-h perturbation cannot flip an argmax
  // (a genuine kink where central differences are meaningless).
  Tensor input({1, 2, 4, 6, 6});
  Rng rng(14);
  std::vector<std::size_t> order(input.numel());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  shuffle(order, rng);
  for (std::size_t i = 0; i < order.size(); ++i) {
    input[order[i]] = 0.01f * static_cast<float>(i);  // gaps of 0.01 >> 2h
  }
  check_layer(layer, std::move(input));
}

TEST(GradCheck, GlobalAvgPool) {
  nn::GlobalAvgPool layer;
  check_layer(layer, random_tensor({2, 3, 4, 5}, 15));
}

TEST(GradCheck, ReLU) {
  nn::ReLU layer;
  check_layer(layer, random_tensor({3, 7}, 16));
}

TEST(GradCheck, Flatten) {
  nn::Flatten layer;
  check_layer(layer, random_tensor({2, 3, 4}, 17));
}

TEST(GradCheck, BatchNormTrainingMode) {
  nn::BatchNorm layer(3);
  // Batch statistics depend on the whole batch: the weighted-sum loss and
  // central differences capture that coupling too.
  check_layer(layer, random_tensor({4, 3, 5}, 18), /*tol=*/8e-2);
}

TEST(GradCheck, SlowFastWholeModel) {
  models::SlowFastConfig cfg;
  cfg.frames = 8;
  cfg.alpha = 4;
  cfg.slow_channels = 4;
  cfg.fast_channels = 2;
  cfg.dropout = 0.0f;  // keep the graph deterministic for differencing
  models::SlowFast model(cfg);
  check_gradients(
      [&](const Tensor& x) { return model.forward(x, true); },
      [&](const Tensor& g) {
        model.backward(g);
        return Tensor({1}, 0.0f);  // input grads not exposed; params checked
      },
      model.params(), random_tensor({2, 1, 8, 8, 10}, 19), 2e-4, 8e-2, 12);
}

TEST(GradCheck, C3DWholeModel) {
  models::C3DConfig cfg;
  cfg.frames = 8;
  cfg.base_channels = 2;
  models::C3D model(cfg);
  check_gradients(
      [&](const Tensor& x) { return model.forward(x, true); },
      [&](const Tensor& g) {
        model.backward(g);
        return Tensor({1}, 0.0f);
      },
      model.params(), random_tensor({2, 1, 8, 8, 10}, 20), 2e-4, 8e-2, 12);
}

TEST(GradCheck, TSNWholeModel) {
  models::TSNConfig cfg;
  cfg.frames = 8;
  cfg.base_channels = 2;
  models::TSN model(cfg);
  check_gradients(
      [&](const Tensor& x) { return model.forward(x, true); },
      [&](const Tensor& g) {
        model.backward(g);
        return Tensor({1}, 0.0f);
      },
      model.params(), random_tensor({2, 1, 8, 8, 10}, 21), 2e-4, 8e-2, 12);
}

}  // namespace
}  // namespace safecross
