#include "core/weather_detect.h"

#include <gtest/gtest.h>

#include "sim/camera.h"
#include "sim/traffic.h"

namespace safecross::core {
namespace {

WeatherEstimate estimate_for(vision::Weather w, std::uint64_t seed = 42) {
  sim::TrafficSimulator sim(sim::weather_params(w), seed);
  sim::CameraModel cam(sim.intersection().geometry());
  Rng rng(seed ^ 0xBEEF);
  WeatherDetector detector;
  for (int i = 0; i < 20; ++i) {
    sim.step();
    detector.observe(cam.render(sim, rng));
  }
  return detector.estimate();
}

TEST(WeatherDetect, RecognizesDaytime) {
  const WeatherEstimate e = estimate_for(vision::Weather::Daytime);
  EXPECT_TRUE(e.confident);
  EXPECT_EQ(e.weather, vision::Weather::Daytime);
}

TEST(WeatherDetect, RecognizesRain) {
  const WeatherEstimate e = estimate_for(vision::Weather::Rain);
  EXPECT_EQ(e.weather, vision::Weather::Rain);
}

TEST(WeatherDetect, RecognizesSnow) {
  const WeatherEstimate e = estimate_for(vision::Weather::Snow);
  EXPECT_EQ(e.weather, vision::Weather::Snow);
}

TEST(WeatherDetect, PrecipitationHasHigherSpeckleDensity) {
  const WeatherEstimate day = estimate_for(vision::Weather::Daytime);
  const WeatherEstimate rain = estimate_for(vision::Weather::Rain);
  EXPECT_GT(rain.speckle_density, day.speckle_density);
}

TEST(WeatherDetect, RainSpeckleMoreElongatedThanSnow) {
  const WeatherEstimate rain = estimate_for(vision::Weather::Rain);
  const WeatherEstimate snow = estimate_for(vision::Weather::Snow);
  EXPECT_GT(rain.mean_elongation, snow.mean_elongation);
}

TEST(WeatherDetect, RecognizesNight) {
  const WeatherEstimate e = estimate_for(vision::Weather::Night);
  EXPECT_EQ(e.weather, vision::Weather::Night);
  EXPECT_LT(e.mean_brightness, 0.3);
}

TEST(WeatherDetect, RecognizesFog) {
  const WeatherEstimate e = estimate_for(vision::Weather::Fog);
  EXPECT_EQ(e.weather, vision::Weather::Fog);
  EXPECT_GT(e.mean_brightness, 0.42);
}

TEST(WeatherDetect, FogIsBrighterThanDaytimeVeil) {
  const WeatherEstimate day = estimate_for(vision::Weather::Daytime);
  const WeatherEstimate fog = estimate_for(vision::Weather::Fog);
  EXPECT_GT(fog.mean_brightness, day.mean_brightness);
}

TEST(WeatherDetect, NightIsDarkest) {
  const WeatherEstimate night = estimate_for(vision::Weather::Night);
  for (auto w : {vision::Weather::Daytime, vision::Weather::Rain, vision::Weather::Snow,
                 vision::Weather::Fog}) {
    EXPECT_LT(night.mean_brightness, estimate_for(w).mean_brightness);
  }
}

TEST(WeatherDetect, NotConfidentWithoutFrames) {
  WeatherDetector d;
  const WeatherEstimate e = d.estimate();
  EXPECT_FALSE(e.confident);
  EXPECT_EQ(e.weather, vision::Weather::Daytime);
}

TEST(WeatherDetect, ResetClearsState) {
  WeatherDetector d;
  d.observe(vision::Image(32, 32, 0.5f));
  d.observe(vision::Image(32, 32, 0.6f));
  d.reset();
  EXPECT_FALSE(d.estimate().confident);
}

TEST(WeatherDetect, StableOverSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(estimate_for(vision::Weather::Daytime, seed).weather, vision::Weather::Daytime)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace safecross::core
