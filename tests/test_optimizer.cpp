#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace safecross::nn {
namespace {

// Minimize f(x) = (x - 3)^2 with each optimizer; grad = 2 (x - 3).
template <typename Opt, typename... Args>
float minimize_quadratic(int steps, Args&&... args) {
  Param p(Tensor({1}, 0.0f));
  Opt opt({&p}, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  return p.value[0];
}

TEST(SGD, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic<SGD>(200, 0.1f), 3.0f, 1e-4);
}

TEST(SGD, MomentumAcceleratesEarlyProgress) {
  const float plain = minimize_quadratic<SGD>(10, 0.02f, 0.0f);
  const float momentum = minimize_quadratic<SGD>(10, 0.02f, 0.9f);
  EXPECT_GT(momentum, plain);  // closer to 3 after the same steps
}

TEST(SGD, SingleStepMatchesFormula) {
  Param p(Tensor({1}, 1.0f));
  SGD opt({&p}, 0.5f);
  p.grad[0] = 2.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);  // 1 - 0.5*2
}

TEST(SGD, WeightDecayPullsTowardZero) {
  Param p(Tensor({1}, 10.0f));
  SGD opt({&p}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 9.5f);  // 10 - 0.1 * (0.5 * 10)
}

TEST(Adam, ConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic<Adam>(500, 0.05f), 3.0f, 1e-2);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction makes the first update ~lr * sign(grad).
  for (const float g : {0.001f, 1.0f, 1000.0f}) {
    Param p(Tensor({1}, 0.0f));
    Adam opt({&p}, 0.1f);
    p.grad[0] = g;
    opt.step();
    EXPECT_NEAR(p.value[0], -0.1f, 1e-3) << "grad " << g;
  }
}

TEST(Optimizer, ZeroGradClearsGradients) {
  Param p(Tensor({3}, 0.0f));
  p.grad.fill(7.0f);
  SGD opt({&p}, 0.1f);
  opt.zero_grad();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.grad[i], 0.0f);
}

TEST(SGD, MultipleParamsUpdatedIndependently) {
  Param a(Tensor({1}, 1.0f)), b(Tensor({1}, 2.0f));
  SGD opt({&a, &b}, 1.0f);
  a.grad[0] = 0.5f;
  b.grad[0] = -0.5f;
  opt.step();
  EXPECT_FLOAT_EQ(a.value[0], 0.5f);
  EXPECT_FLOAT_EQ(b.value[0], 2.5f);
}

}  // namespace
}  // namespace safecross::nn
