#include "fewshot/trainer.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "models/slowfast.h"

namespace safecross::fewshot {
namespace {

// Shared tiny dataset (generated once; dataset building dominates cost).
const std::vector<VideoSegment>& segments() {
  static const std::vector<VideoSegment> segs = [] {
    dataset::BuildRequest req;
    req.target_segments = 60;
    req.max_sim_hours = 2.0;
    req.seed = 77;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

models::SlowFastConfig tiny_model() {
  models::SlowFastConfig cfg;
  cfg.slow_channels = 4;
  cfg.fast_channels = 2;
  return cfg;
}

TEST(Trainer, SelectPicksByIndex) {
  const auto sel = select(segments(), {0, 2, 4});
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0], &segments()[0]);
  EXPECT_EQ(sel[2], &segments()[4]);
}

TEST(Trainer, MakeBatchShapesAndLabels) {
  const auto sel = select(segments(), {0, 1, 2, 3});
  std::vector<std::size_t> order{0, 1, 2, 3};
  std::vector<int> labels;
  const nn::Tensor batch = make_batch(sel, order, 0, 3, labels);
  EXPECT_EQ(batch.dim(0), 3);
  EXPECT_EQ(batch.dim(2), 32);
  ASSERT_EQ(labels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(labels[i], sel[i]->binary_label());
}

TEST(Trainer, MakeBatchRejectsBadRange) {
  const auto sel = select(segments(), {0, 1});
  std::vector<std::size_t> order{0, 1};
  std::vector<int> labels;
  EXPECT_THROW(make_batch(sel, order, 1, 1, labels), std::invalid_argument);
  EXPECT_THROW(make_batch(sel, order, 0, 5, labels), std::invalid_argument);
}

TEST(Trainer, TrainingReducesLoss) {
  std::vector<const VideoSegment*> train;
  for (const auto& s : segments()) train.push_back(&s);
  models::SlowFast model(tiny_model());
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.seed = 5;
  const float loss1 = train_classifier(model, train, cfg);
  cfg.epochs = 4;
  const float loss2 = train_classifier(model, train, cfg);
  EXPECT_LT(loss2, loss1);
}

TEST(Trainer, EvaluateCountsEverySegment) {
  std::vector<const VideoSegment*> all;
  for (const auto& s : segments()) all.push_back(&s);
  models::SlowFast model(tiny_model());
  const EvalResult r = evaluate(model, all);
  EXPECT_EQ(r.confusion.total(), all.size());
  EXPECT_GE(r.top1(), 0.0);
  EXPECT_LE(r.top1(), 1.0);
}

TEST(Trainer, EmptySetsRejected) {
  models::SlowFast model(tiny_model());
  EXPECT_THROW(train_classifier(model, {}, {}), std::invalid_argument);
  EXPECT_THROW(evaluate(model, {}), std::invalid_argument);
}

TEST(Trainer, HingeLossPathWorks) {
  std::vector<const VideoSegment*> train;
  for (const auto& s : segments()) train.push_back(&s);
  models::SlowFast model(tiny_model());
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.hinge_loss = true;
  const float loss = train_classifier(model, train, cfg);
  EXPECT_GE(loss, 0.0f);
  const EvalResult r = evaluate(model, train, /*hinge_loss=*/true);
  EXPECT_EQ(r.confusion.total(), train.size());
}

}  // namespace
}  // namespace safecross::fewshot
