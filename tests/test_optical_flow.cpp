#include "vision/optical_flow.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

// A textured square (checker fill) so both corner detection and flow have
// gradients to work with.
Image textured_square(int w, int h, int x0, int y0, int size) {
  Image img(w, h, 0.1f);
  for (int y = y0; y < y0 + size && y < h; ++y) {
    for (int x = x0; x < x0 + size && x < w; ++x) {
      img.at(x, y) = ((x + y) % 2 == 0) ? 0.9f : 0.6f;
    }
  }
  return img;
}

TEST(GoodFeatures, FindsCornersOnTexture) {
  const Image img = textured_square(40, 30, 10, 8, 10);
  const auto corners = good_features(img);
  EXPECT_FALSE(corners.empty());
  // Corners should concentrate on/near the textured block.
  for (const auto& c : corners) {
    EXPECT_GE(c.x, 5.0f);
    EXPECT_LE(c.x, 25.0f);
  }
}

TEST(GoodFeatures, FlatImageHasNoCorners) {
  const Image img(32, 32, 0.5f);
  EXPECT_TRUE(good_features(img).empty());
}

TEST(GoodFeatures, RespectsMaxCorners) {
  const Image img = textured_square(64, 48, 4, 4, 40);
  SparseFlowConfig cfg;
  cfg.max_corners = 7;
  EXPECT_LE(good_features(img, cfg).size(), 7u);
}

TEST(GoodFeatures, MinDistanceEnforced) {
  const Image img = textured_square(64, 48, 4, 4, 40);
  SparseFlowConfig cfg;
  cfg.min_distance = 8;
  const auto corners = good_features(img, cfg);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    for (std::size_t j = i + 1; j < corners.size(); ++j) {
      const float dx = corners[i].x - corners[j].x;
      const float dy = corners[i].y - corners[j].y;
      EXPECT_GE(dx * dx + dy * dy, 64.0f);
    }
  }
}

TEST(SparseFlow, RecoversSmallTranslation) {
  const Image prev = textured_square(48, 36, 16, 12, 12);
  const Image next = textured_square(48, 36, 17, 12, 12);  // +1 px in x
  const auto flows = sparse_optical_flow(prev, next);
  ASSERT_FALSE(flows.empty());
  // Average flow among tracked corners should point in +x.
  double mean_u = 0.0, mean_v = 0.0;
  for (const auto& f : flows) {
    mean_u += f.u;
    mean_v += f.v;
  }
  mean_u /= static_cast<double>(flows.size());
  mean_v /= static_cast<double>(flows.size());
  EXPECT_GT(mean_u, 0.2);
  EXPECT_NEAR(mean_v, 0.0, 0.3);
}

TEST(DenseFlow, RecoversTranslationDirection) {
  const Image prev = textured_square(48, 36, 16, 12, 12);
  const Image next = textured_square(48, 36, 17, 12, 12);
  const DenseFlowField flow = dense_optical_flow(prev, next);
  // Flow inside the moving block points +x on average.
  double mean_u = 0.0;
  int n = 0;
  for (int y = 12; y < 24; ++y) {
    for (int x = 16; x < 28; ++x) {
      mean_u += flow.u.at(x, y);
      ++n;
    }
  }
  EXPECT_GT(mean_u / n, 0.05);
}

TEST(DenseFlow, StaticSceneHasNearZeroFlow) {
  const Image img = textured_square(32, 24, 8, 6, 10);
  const DenseFlowField flow = dense_optical_flow(img, img);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_NEAR(flow.u.at(x, y), 0.0f, 1e-4);
      EXPECT_NEAR(flow.v.at(x, y), 0.0f, 1e-4);
    }
  }
}

TEST(DenseFlow, MagnitudeMaskMarksMovingRegion) {
  const Image prev = textured_square(48, 36, 16, 12, 12);
  const Image next = textured_square(48, 36, 18, 12, 12);  // +2 px
  const DenseFlowField flow = dense_optical_flow(prev, next);
  const Image mask = flow.magnitude_mask(0.25f);
  std::size_t inside = 0, outside = 0;
  for (int y = 0; y < 36; ++y) {
    for (int x = 0; x < 48; ++x) {
      if (mask.at(x, y) > 0.5f) {
        if (x >= 12 && x <= 32 && y >= 8 && y <= 28) {
          ++inside;
        } else {
          ++outside;
        }
      }
    }
  }
  EXPECT_GT(inside, outside);
  EXPECT_GT(inside, 0u);
}

TEST(FlowVector, MagnitudeIsEuclidean) {
  FlowVector f{0, 0, 3.0f, 4.0f};
  EXPECT_FLOAT_EQ(f.magnitude(), 5.0f);
}

}  // namespace
}  // namespace safecross::vision
