#include "vision/morphology.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

Image with_block(int w, int h, int x0, int y0, int x1, int y1) {
  Image img(w, h, 0.0f);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) img.at(x, y) = 1.0f;
  }
  return img;
}

TEST(Morphology, ErosionRemovesIsolatedPixel) {
  Image img(7, 7, 0.0f);
  img.at(3, 3) = 1.0f;
  EXPECT_EQ(erode(img).count_above(0.5f), 0u);
}

TEST(Morphology, ErosionShrinksBlock) {
  const Image img = with_block(9, 9, 2, 2, 6, 6);  // 5x5 block
  const Image eroded = erode(img);
  EXPECT_EQ(eroded.count_above(0.5f), 9u);  // 3x3 remains
  EXPECT_FLOAT_EQ(eroded.at(4, 4), 1.0f);
  EXPECT_FLOAT_EQ(eroded.at(2, 2), 0.0f);
}

TEST(Morphology, DilationGrowsBlock) {
  const Image img = with_block(9, 9, 4, 4, 4, 4);  // single pixel
  const Image dilated = dilate(img);
  EXPECT_EQ(dilated.count_above(0.5f), 9u);  // 3x3
}

TEST(Morphology, OpeningRemovesSpeckleKeepsStructure) {
  Image img = with_block(12, 12, 2, 2, 7, 7);  // 6x6 structure
  img.at(10, 10) = 1.0f;                       // speckle
  const Image opened = opening(img);
  EXPECT_FLOAT_EQ(opened.at(10, 10), 0.0f);
  EXPECT_FLOAT_EQ(opened.at(4, 4), 1.0f);
  // A 6x6 block survives opening exactly.
  EXPECT_EQ(opened.count_above(0.5f), 36u);
}

TEST(Morphology, ClosingFillsHole) {
  Image img = with_block(9, 9, 2, 2, 6, 6);
  img.at(4, 4) = 0.0f;  // hole
  const Image closed = closing(img);
  EXPECT_FLOAT_EQ(closed.at(4, 4), 1.0f);
}

TEST(Morphology, BorderTreatedAsBackgroundForErosion) {
  const Image img = with_block(5, 5, 0, 0, 4, 4);  // all set
  const Image eroded = erode(img);
  // Border pixels touch outside-zero, so only the 3x3 interior survives.
  EXPECT_EQ(eroded.count_above(0.5f), 9u);
}

TEST(Morphology, RejectsEvenKernel) {
  const Image img(4, 4, 0.0f);
  EXPECT_THROW(erode(img, 2), std::invalid_argument);
  EXPECT_THROW(dilate(img, 0), std::invalid_argument);
}

TEST(Morphology, Kernel5RemovesSmallBlocks) {
  const Image img = with_block(12, 12, 3, 3, 5, 5);  // 3x3 block
  EXPECT_EQ(opening(img, 5).count_above(0.5f), 0u);
}

}  // namespace
}  // namespace safecross::vision
