#include "fewshot/maml.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "models/slowfast.h"

namespace safecross::fewshot {
namespace {

models::SlowFastConfig tiny_model() {
  models::SlowFastConfig cfg;
  cfg.slow_channels = 4;
  cfg.fast_channels = 2;
  return cfg;
}

const std::vector<VideoSegment>& day_segments() {
  static const std::vector<VideoSegment> segs = [] {
    dataset::BuildRequest req;
    req.target_segments = 50;
    req.max_sim_hours = 2.0;
    req.seed = 88;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

const std::vector<VideoSegment>& snow_segments() {
  static const std::vector<VideoSegment> segs = [] {
    dataset::BuildRequest req;
    req.weather = dataset::Weather::Snow;
    req.target_segments = 30;
    req.max_sim_hours = 2.0;
    req.seed = 89;
    return dataset::build_dataset(req).segments;
  }();
  return segs;
}

std::vector<const VideoSegment*> ptrs(const std::vector<VideoSegment>& v) {
  std::vector<const VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

TEST(Maml, AdaptReturnsIndependentModel) {
  models::SlowFast base(tiny_model());
  const auto support = ptrs(day_segments());
  auto adapted = Maml::adapt(base, support, /*steps=*/2, /*lr=*/0.05f);
  // Adapted weights moved; base unchanged by adaptation.
  bool any_diff = false;
  const auto bp = base.params();
  const auto ap = adapted->params();
  for (std::size_t p = 0; p < bp.size() && !any_diff; ++p) {
    for (std::size_t i = 0; i < bp[p]->value.numel(); ++i) {
      if (bp[p]->value[i] != ap[p]->value[i]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Maml, AdaptRejectsEmptySupport) {
  models::SlowFast base(tiny_model());
  EXPECT_THROW(Maml::adapt(base, {}, 1, 0.1f), std::invalid_argument);
}

TEST(Maml, AdaptationImprovesSupportLoss) {
  models::SlowFast base(tiny_model());
  const auto support = ptrs(day_segments());
  const EvalResult before = evaluate(base, support);
  auto adapted = Maml::adapt(base, support, /*steps=*/8, /*lr=*/0.08f);
  const EvalResult after = evaluate(*adapted, support);
  EXPECT_LT(after.mean_loss, before.mean_loss);
}

TEST(Maml, MetaTrainRunsAndReturnsFiniteLoss) {
  models::SlowFast model(tiny_model());
  Task day_task;
  day_task.name = "daytime";
  day_task.pool = ptrs(day_segments());
  Task snow_task;
  snow_task.name = "snow";
  snow_task.pool = ptrs(snow_segments());

  MamlConfig cfg;
  cfg.meta_iterations = 2;
  cfg.inner_steps = 1;
  cfg.tasks_per_batch = 2;
  cfg.episode.k_shot = 2;
  cfg.episode.query_per_class = 2;
  Maml maml(cfg);
  const float loss = maml.meta_train(model, {day_task, snow_task});
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(Maml, MetaTrainMovesMetaParameters) {
  models::SlowFast model(tiny_model());
  const float before = model.params()[0]->value[0];
  Task task;
  task.name = "daytime";
  task.pool = ptrs(day_segments());
  MamlConfig cfg;
  cfg.meta_iterations = 1;
  cfg.inner_steps = 1;
  cfg.tasks_per_batch = 1;
  cfg.episode.k_shot = 2;
  cfg.episode.query_per_class = 2;
  Maml maml(cfg);
  maml.meta_train(model, {task});
  EXPECT_NE(model.params()[0]->value[0], before);
}

TEST(Maml, MetaTrainRejectsEmptyTaskList) {
  models::SlowFast model(tiny_model());
  Maml maml;
  EXPECT_THROW(maml.meta_train(model, {}), std::invalid_argument);
}

TEST(FewshotTransfer, AdaptedModelBeatsScratchOnTinyPool) {
  // The Table V contrast at miniature scale: train a base on daytime,
  // then adapt to snow with few samples vs train snow from scratch.
  models::SlowFast base(tiny_model());
  TrainConfig base_cfg;
  base_cfg.epochs = 4;
  base_cfg.seed = 11;
  train_classifier(base, ptrs(day_segments()), base_cfg);

  const auto snow = ptrs(snow_segments());
  const std::vector<const VideoSegment*> snow_train(snow.begin(), snow.begin() + snow.size() / 2);
  const std::vector<const VideoSegment*> snow_test(snow.begin() + snow.size() / 2, snow.end());

  TrainConfig fsl_cfg;
  fsl_cfg.epochs = 4;
  fsl_cfg.lr = 0.01f;
  fsl_cfg.seed = 12;
  auto adapted = fewshot_transfer(base, snow_train, fsl_cfg);

  models::SlowFast scratch(tiny_model());
  TrainConfig scratch_cfg;
  scratch_cfg.epochs = 4;
  scratch_cfg.seed = 13;
  train_classifier(scratch, snow_train, scratch_cfg);

  const double adapted_acc = evaluate(*adapted, snow_test).top1();
  const double scratch_acc = evaluate(scratch, snow_test).top1();
  // Transfer should not be (much) worse; typically clearly better.
  EXPECT_GE(adapted_acc + 0.16, scratch_acc);
}

}  // namespace
}  // namespace safecross::fewshot
