#include <algorithm>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "models/c3d.h"
#include "models/slowfast.h"
#include "models/tsn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace safecross::models {
namespace {

using testing::random_tensor;

SlowFastConfig small_slowfast() {
  SlowFastConfig cfg;
  cfg.frames = 16;
  cfg.alpha = 8;
  cfg.slow_channels = 4;
  cfg.fast_channels = 2;
  return cfg;
}

TEST(SlowFast, OutputShape) {
  SlowFast model(small_slowfast());
  const nn::Tensor out = model.forward(random_tensor({3, 1, 16, 12, 18}, 1), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 2}));
}

TEST(SlowFast, RejectsWrongFrameCount) {
  SlowFast model(small_slowfast());
  EXPECT_THROW(model.forward(random_tensor({1, 1, 8, 12, 18}, 2), false), std::invalid_argument);
}

TEST(SlowFast, FramesMustBeMultipleOfAlpha) {
  SlowFastConfig cfg = small_slowfast();
  cfg.frames = 12;  // not divisible by alpha=8
  EXPECT_THROW(SlowFast{cfg}, std::invalid_argument);
}

TEST(SlowFast, LateralAblationChangesParamCount) {
  SlowFastConfig with = small_slowfast();
  SlowFastConfig without = small_slowfast();
  without.use_lateral = false;
  SlowFast a(with), b(without);
  EXPECT_GT(nn::param_count(a.params()), nn::param_count(b.params()));
  // Both still produce valid logits.
  const nn::Tensor out = b.forward(random_tensor({1, 1, 16, 12, 18}, 3), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 2}));
}

TEST(SlowFast, CloneProducesIdenticalOutputs) {
  SlowFast model(small_slowfast());
  auto copy = model.clone();
  const nn::Tensor x = random_tensor({2, 1, 16, 12, 18}, 4);
  const nn::Tensor y1 = model.forward(x, false);
  const nn::Tensor y2 = copy->forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(SlowFast, CloneIsIndependentAfterUpdate) {
  SlowFast model(small_slowfast());
  auto copy = model.clone();
  model.params()[0]->value[0] += 1.0f;
  EXPECT_NE(model.params()[0]->value[0], copy->params()[0]->value[0]);
}

TEST(SlowFast, DifferentSeedsDifferentWeights) {
  SlowFastConfig a = small_slowfast();
  SlowFastConfig b = small_slowfast();
  b.init_seed = 999;
  SlowFast ma(a), mb(b);
  EXPECT_NE(ma.params()[0]->value[0], mb.params()[0]->value[0]);
}

TEST(SlowFast, TrainingReducesLossOnTinyProblem) {
  // Overfit 4 synthetic clips: class by whether the clip is bright.
  SlowFast model(small_slowfast());
  nn::Tensor x({4, 1, 16, 12, 18}, 0.0f);
  std::vector<int> labels{0, 1, 0, 1};
  for (int n = 0; n < 4; ++n) {
    const float v = labels[n] == 1 ? 0.9f : 0.1f;
    for (int i = 0; i < 16 * 12 * 18; ++i) {
      x[static_cast<std::size_t>(n) * 16 * 12 * 18 + i] = v;
    }
  }
  nn::SoftmaxCrossEntropy ce;
  nn::SGD opt(model.params(), 0.05f, 0.9f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    const nn::Tensor scores = model.forward(x, true);
    const float loss = ce.forward(scores, labels);
    if (step == 0) first = loss;
    last = loss;
    model.backward(ce.grad());
    opt.step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(C3D, OutputShapeAndClone) {
  C3DConfig cfg;
  cfg.frames = 16;
  cfg.base_channels = 4;
  C3D model(cfg);
  const nn::Tensor out = model.forward(random_tensor({2, 1, 16, 12, 18}, 5), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{2, 2}));
  auto copy = model.clone();
  const nn::Tensor x = random_tensor({1, 1, 16, 12, 18}, 6);
  const nn::Tensor y1 = model.forward(x, false);
  const nn::Tensor y2 = copy->forward(x, false);
  EXPECT_FLOAT_EQ(y1[0], y2[0]);
}

TEST(C3D, RejectsWrongFrames) {
  C3DConfig cfg;
  cfg.frames = 16;
  C3D model(cfg);
  EXPECT_THROW(model.forward(random_tensor({1, 1, 8, 12, 18}, 7), false), std::invalid_argument);
}

TEST(TSN, SegmentIndicesAreSegmentCenters) {
  const auto idx = TSN::segment_indices(32, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 5);
  EXPECT_EQ(idx[1], 16);
  EXPECT_EQ(idx[2], 26);
}

TEST(TSN, OutputShape) {
  TSNConfig cfg;
  cfg.frames = 16;
  cfg.base_channels = 4;
  TSN model(cfg);
  const nn::Tensor out = model.forward(random_tensor({3, 1, 16, 12, 18}, 8), false);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 2}));
}

TEST(TSN, ConsensusIsAverageOfSegmentScores) {
  // With a single segment, consensus must equal the backbone's output; we
  // verify the averaging by comparing 1-segment and 3-segment variants on
  // a clip whose frames are identical (averaging identical scores is a
  // no-op).
  TSNConfig one;
  one.frames = 16;
  one.segments = 1;
  one.base_channels = 4;
  TSNConfig three = one;
  three.segments = 3;
  TSN m1(one), m3(three);
  nn::copy_param_values(m1.params(), m3.params());
  nn::copy_buffers(m1.buffers(), m3.buffers());
  nn::Tensor x({1, 1, 16, 12, 18}, 0.0f);
  // All frames identical (constant 0.4).
  x.fill(0.4f);
  const nn::Tensor y1 = m1.forward(x, false);
  const nn::Tensor y3 = m3.forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_NEAR(y1[i], y3[i], 1e-5);
}

TEST(TSN, CloneRoundTrip) {
  TSNConfig cfg;
  cfg.frames = 16;
  cfg.base_channels = 4;
  TSN model(cfg);
  auto copy = model.clone();
  EXPECT_EQ(copy->name(), "tsn");
  EXPECT_EQ(nn::param_count(copy->params()), nn::param_count(model.params()));
}

// The serving layer's parity contract rests on every classifier treating
// batch samples independently: forward({x0..xN})[i] must be bit-identical
// to forward({xi}). Audit all three architectures.
template <typename Model>
void expect_batch_invariant(Model& model, int frames) {
  constexpr int kBatch = 3;
  const nn::Tensor batch = random_tensor({kBatch, 1, frames, 12, 18}, 77);
  const nn::Tensor batched_out = model.forward(batch, false);
  ASSERT_EQ(batched_out.dim(0), kBatch);
  const std::size_t sample_elems = batch.numel() / kBatch;
  const std::size_t out_elems = batched_out.numel() / kBatch;
  for (int i = 0; i < kBatch; ++i) {
    nn::Tensor single({1, 1, frames, 12, 18});
    std::copy(batch.data() + i * sample_elems, batch.data() + (i + 1) * sample_elems,
              single.data());
    const nn::Tensor single_out = model.forward(single, false);
    for (std::size_t j = 0; j < out_elems; ++j) {
      ASSERT_EQ(single_out[j], batched_out[i * out_elems + j])
          << model.name() << " sample " << i << " logit " << j
          << ": batching changed the math";
    }
  }
}

TEST(VideoModels, BatchedForwardIsBitIdenticalPerSample) {
  SlowFast slowfast(small_slowfast());
  expect_batch_invariant(slowfast, 16);

  C3DConfig c3d_cfg;
  c3d_cfg.frames = 16;
  c3d_cfg.base_channels = 4;
  C3D c3d(c3d_cfg);
  expect_batch_invariant(c3d, 16);

  TSNConfig tsn_cfg;
  tsn_cfg.frames = 16;
  tsn_cfg.base_channels = 4;
  TSN tsn(tsn_cfg);
  expect_batch_invariant(tsn, 16);
}

TEST(VideoModels, NamesAreDistinct) {
  SlowFast sf(small_slowfast());
  C3DConfig c3;
  c3.frames = 16;
  C3D c(c3);
  TSNConfig t3;
  t3.frames = 16;
  TSN t(t3);
  EXPECT_EQ(sf.name(), "slowfast");
  EXPECT_EQ(c.name(), "c3d");
  EXPECT_EQ(t.name(), "tsn");
}

}  // namespace
}  // namespace safecross::models
