#include "vision/blobs.h"

#include <gtest/gtest.h>

namespace safecross::vision {
namespace {

TEST(Blobs, FindsSingleComponent) {
  Image img(8, 8, 0.0f);
  for (int y = 2; y <= 4; ++y) {
    for (int x = 3; x <= 5; ++x) img.at(x, y) = 1.0f;
  }
  const auto blobs = find_blobs(img);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 9);
  EXPECT_EQ(blobs[0].min_x, 3);
  EXPECT_EQ(blobs[0].max_x, 5);
  EXPECT_EQ(blobs[0].width(), 3);
  EXPECT_EQ(blobs[0].height(), 3);
  EXPECT_FLOAT_EQ(blobs[0].centroid_x, 4.0f);
  EXPECT_FLOAT_EQ(blobs[0].centroid_y, 3.0f);
}

TEST(Blobs, SeparatesDisconnectedComponents) {
  Image img(10, 4, 0.0f);
  img.at(0, 0) = 1.0f;
  img.at(9, 3) = 1.0f;
  const auto blobs = find_blobs(img);
  EXPECT_EQ(blobs.size(), 2u);
}

TEST(Blobs, DiagonalPixelsAreOneComponent) {
  Image img(4, 4, 0.0f);
  img.at(1, 1) = 1.0f;
  img.at(2, 2) = 1.0f;  // 8-connectivity joins diagonals
  const auto blobs = find_blobs(img);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 2);
}

TEST(Blobs, MinAreaFiltersSmallBlobs) {
  Image img(8, 8, 0.0f);
  img.at(0, 0) = 1.0f;  // area 1
  for (int x = 3; x <= 6; ++x) img.at(x, 4) = 1.0f;  // area 4
  const auto blobs = find_blobs(img, 2);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 4);
}

TEST(Blobs, SortedByDecreasingArea) {
  Image img(16, 4, 0.0f);
  img.at(0, 0) = 1.0f;
  for (int x = 4; x <= 8; ++x) img.at(x, 2) = 1.0f;
  for (int x = 11; x <= 12; ++x) img.at(x, 1) = 1.0f;
  const auto blobs = find_blobs(img);
  ASSERT_EQ(blobs.size(), 3u);
  EXPECT_GE(blobs[0].area, blobs[1].area);
  EXPECT_GE(blobs[1].area, blobs[2].area);
}

TEST(Blobs, EmptyMaskYieldsNoBlobs) {
  EXPECT_TRUE(find_blobs(Image(5, 5, 0.0f)).empty());
}

TEST(Blobs, FullMaskIsOneBlob) {
  const auto blobs = find_blobs(Image(6, 5, 1.0f));
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 30);
}

TEST(Blobs, ContainsChecksBoundingBox) {
  Image img(8, 8, 0.0f);
  img.at(2, 2) = img.at(3, 2) = 1.0f;
  const auto blobs = find_blobs(img);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_TRUE(blobs[0].contains(2.5f, 2.0f));
  EXPECT_FALSE(blobs[0].contains(5.0f, 5.0f));
}

}  // namespace
}  // namespace safecross::vision
