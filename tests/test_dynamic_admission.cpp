// Dynamic (watermark-driven) admission hysteresis and the split-brain
// fence on adoption — the ISSUE's boundary pins:
//   * a latency sample exactly AT the degrade watermark flaps nothing:
//     it is in-band and resets BOTH streaks;
//   * Degrade fires only after breach_streak consecutive breaches,
//     Undegrade only after recover_streak consecutive cools (asymmetric:
//     degrade fast, recover slow), capped by max_degraded;
//   * the live sacrifice order never contains a Critical stream;
//   * StreamServer::adopt_stream rejects a hand-off stamped with any
//     ownership epoch other than the one the controller granted this
//     placement — stale OR future, exact match only.

#include "fleet/dynamic_admission.h"

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "models/slowfast.h"
#include "serving/stream_server.h"

namespace safecross::fleet {
namespace {

using Action = DynamicAdmission::Action;
using serving::StreamConfig;

DynamicAdmissionConfig tuned() {
  DynamicAdmissionConfig cfg;
  cfg.enabled = true;
  cfg.degrade_watermark_ms = 100.0;
  cfg.undegrade_watermark_ms = 50.0;
  cfg.breach_streak = 3;
  cfg.recover_streak = 5;
  cfg.max_degraded = 1;
  return cfg;
}

TEST(DynamicAdmission, DisabledNeverActs) {
  DynamicAdmissionConfig cfg = tuned();
  cfg.enabled = false;
  DynamicAdmission dyn(cfg);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(dyn.observe(1e6), Action::None);
  EXPECT_EQ(dyn.degraded(), 0u);
}

TEST(DynamicAdmission, DegradesOnlyAfterTheBreachStreak) {
  DynamicAdmission dyn(tuned());
  EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(150.0), Action::Degrade);
  EXPECT_EQ(dyn.degraded(), 1u);
  EXPECT_EQ(dyn.degrades(), 1u);
}

TEST(DynamicAdmission, ExactlyAtTheWatermarkNeverFlaps) {
  DynamicAdmission dyn(tuned());
  // A shard sitting exactly on the line, forever: no action, ever.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dyn.observe(100.0), Action::None) << "sample " << i;
  }
  EXPECT_EQ(dyn.degraded(), 0u);
  // An at-watermark sample interrupts an escalation in progress...
  EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(100.0), Action::None);  // in-band: both streaks reset
  EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(150.0), Action::None) << "the streak restarted from zero";
  EXPECT_EQ(dyn.observe(150.0), Action::Degrade);
}

TEST(DynamicAdmission, InBandSamplesInterruptRecoveryToo) {
  DynamicAdmission dyn(tuned());
  for (int i = 0; i < 3; ++i) dyn.observe(150.0);  // → degraded
  ASSERT_EQ(dyn.degraded(), 1u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dyn.observe(40.0), Action::None);
  EXPECT_EQ(dyn.observe(75.0), Action::None);  // in-band: recovery streak dies
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dyn.observe(40.0), Action::None) << "cool " << i << " of a fresh streak";
  }
  EXPECT_EQ(dyn.observe(40.0), Action::Undegrade);
  EXPECT_EQ(dyn.degraded(), 0u);
  EXPECT_EQ(dyn.undegrades(), 1u);
}

TEST(DynamicAdmission, RecoveryIsSlowerThanEscalationByConfig) {
  DynamicAdmission dyn(tuned());
  for (int i = 0; i < 3; ++i) dyn.observe(150.0);
  ASSERT_EQ(dyn.degraded(), 1u);
  // At the undegrade watermark counts as cool (at/below).
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dyn.observe(50.0), Action::None);
  EXPECT_EQ(dyn.observe(50.0), Action::Undegrade) << "fifth consecutive cool";
}

TEST(DynamicAdmission, MaxDegradedCapsEscalation) {
  DynamicAdmission dyn(tuned());  // max_degraded = 1
  for (int i = 0; i < 3; ++i) dyn.observe(150.0);
  ASSERT_EQ(dyn.degraded(), 1u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(dyn.observe(150.0), Action::None) << "already at the cap";
  }
  EXPECT_EQ(dyn.degrades(), 1u);
  // After recovery the budget is back.
  for (int i = 0; i < 5; ++i) dyn.observe(40.0);
  ASSERT_EQ(dyn.degraded(), 0u);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(dyn.observe(150.0), Action::None);
  EXPECT_EQ(dyn.observe(150.0), Action::Degrade);
  EXPECT_EQ(dyn.degrades(), 2u);
}

StreamConfig prioritized(const std::string& name, core::StreamPriority p, int stride) {
  StreamConfig sc;
  sc.name = name;
  sc.priority = p;
  sc.decision_stride = stride;  // weight = 8 / stride
  return sc;
}

TEST(DynamicAdmission, SacrificeOrderSparesCriticalAndSortsByTierThenWeight) {
  std::vector<StreamConfig> streams = {
      prioritized("crit", core::StreamPriority::Critical, 4),
      prioritized("std-heavy", core::StreamPriority::Standard, 4),
      prioritized("std-light", core::StreamPriority::Standard, 8),
      prioritized("be-light", core::StreamPriority::BestEffort, 8),
      prioritized("be-b", core::StreamPriority::BestEffort, 4),
      prioritized("be-a", core::StreamPriority::BestEffort, 4),
  };
  const std::vector<std::string> order = degrade_order(streams);
  const std::vector<std::string> want = {"be-a", "be-b", "be-light", "std-heavy",
                                         "std-light"};
  EXPECT_EQ(order, want)
      << "BestEffort first, heaviest first within a tier, name tie-break";
  for (const std::string& name : order) {
    EXPECT_NE(name, "crit") << "Critical streams are never degraded";
  }
}

// --- split-brain fence: adopt_stream epoch exact-match ---

std::unique_ptr<core::SafeCross> tiny_engine() {
  core::SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  auto sc = std::make_unique<core::SafeCross>(cfg);
  models::SlowFastConfig mc = cfg.model;
  mc.init_seed = 100u + static_cast<std::uint64_t>(dataset::Weather::Daytime);
  sc->set_model(dataset::Weather::Daytime, std::make_unique<models::SlowFast>(mc));
  return sc;
}

TEST(EpochFence, AdoptRejectsAnyEpochButTheGrantedOne) {
  auto engine = tiny_engine();
  serving::StreamServerConfig cfg;
  StreamConfig sc;
  sc.name = "cam0";
  sc.owner_epoch = 2;  // the controller granted this placement epoch 2
  cfg.streams.push_back(sc);
  cfg.frames = 8;
  serving::StreamServer server(*engine, cfg);

  serving::StreamHandoff stale;
  stale.config = sc;
  stale.config.owner_epoch = 1;  // a superseded placement's transfer
  stale.state = "bogus";
  EXPECT_THROW(server.adopt_stream(0, stale), std::logic_error)
      << "a stale-epoch hand-off is a duplicated/reordered transfer";

  serving::StreamHandoff future;
  future.config = sc;
  future.config.owner_epoch = 3;  // not granted either: exact match only
  future.state = "bogus";
  EXPECT_THROW(server.adopt_stream(0, future), std::logic_error);

  serving::StreamHandoff wrong_name;
  wrong_name.config = sc;
  wrong_name.config.name = "cam9";
  wrong_name.state = "bogus";
  EXPECT_THROW(server.adopt_stream(0, wrong_name), std::logic_error);
}

}  // namespace
}  // namespace safecross::fleet
