#include "core/monitor.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "fewshot/trainer.h"

namespace safecross::core {
namespace {

SafeCross& trained_framework() {
  static SafeCross* sc = [] {
    dataset::BuildRequest req;
    req.target_segments = 60;
    req.max_sim_hours = 2.0;
    req.seed = 777;
    const auto day = dataset::build_dataset(req);
    SafeCrossConfig cfg;
    cfg.model.slow_channels = 4;
    cfg.model.fast_channels = 2;
    cfg.basic_train.epochs = 3;
    auto* framework = new SafeCross(cfg);
    std::vector<const dataset::VideoSegment*> train;
    for (const auto& s : day.segments) train.push_back(&s);
    framework->train_basic(train);
    return framework;
  }();
  return *sc;
}

TEST(Monitor, NoDecisionsBeforeWindowFills) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 31);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(trained_framework(), sim, cam, MonitorConfig{}, 32);
  for (int i = 0; i < 31; ++i) {  // fewer frames than one window
    const auto tick = monitor.step();
    EXPECT_FALSE(tick.decision_made);
  }
  EXPECT_EQ(monitor.decisions(), 0u);
}

TEST(Monitor, CountersAreConsistent) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 33);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(trained_framework(), sim, cam, MonitorConfig{}, 34);
  std::size_t observed_decisions = 0;
  for (int i = 0; i < 30 * 240; ++i) {
    if (monitor.step().decision_made) ++observed_decisions;
  }
  EXPECT_EQ(monitor.decisions(), observed_decisions);
  EXPECT_EQ(monitor.decisions(),
            monitor.correct() + monitor.missed_threats() + monitor.false_warnings());
  EXPECT_LE(monitor.warnings(), monitor.decisions());
}

TEST(Monitor, DecisionsOnlyWhileSubjectWaits) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 35);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(trained_framework(), sim, cam, MonitorConfig{}, 36);
  for (int i = 0; i < 30 * 240; ++i) {
    const auto tick = monitor.step();
    if (tick.decision_made) {
      EXPECT_TRUE(tick.subject_waiting);
    }
  }
}

TEST(Monitor, DecisionStrideRateLimits) {
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 37);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  cfg.decision_stride = 30;  // at most one decision per second
  RealtimeMonitor monitor(trained_framework(), sim, cam, cfg, 38);
  int since_last = 1000;
  for (int i = 0; i < 30 * 300; ++i) {
    const auto tick = monitor.step();
    ++since_last;
    if (tick.decision_made) {
      EXPECT_GE(since_last, 30);
      since_last = 0;
    }
  }
}

TEST(Monitor, ActivatesFrameworkSceneOnConstruction) {
  SafeCross& sc = trained_framework();
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), 39);
  const sim::CameraModel cam(sim.intersection().geometry());
  RealtimeMonitor monitor(sc, sim, cam, MonitorConfig{}, 40);
  EXPECT_EQ(sc.active_weather(), dataset::Weather::Daytime);
  (void)monitor;
}

}  // namespace
}  // namespace safecross::core
