#include "runtime/fault_injector.h"

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/state_io.h"

namespace safecross::runtime {
namespace {

namespace fs = std::filesystem;

TEST(FaultInjector, DefaultPlanInjectsNothing) {
  FaultInjector inj(FaultPlan{}, 1);
  EXPECT_FALSE(inj.plan().enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.next_frame_fault(), FrameFault::None);
  }
  EXPECT_EQ(inj.frames_dropped(), 0u);
  EXPECT_EQ(inj.frames_frozen(), 0u);
  EXPECT_EQ(inj.noise_bursts(), 0u);
  EXPECT_EQ(inj.blackout_frames_total(), 0u);
  EXPECT_FALSE(inj.next_switch_fails());
}

TEST(FaultInjector, PerturbWithNoFaultLeavesFrameUntouched) {
  FaultInjector inj(FaultPlan{}, 2);
  vision::Image frame(8, 6, 1.0f);
  inj.next_frame_fault();
  inj.perturb(frame);
  for (std::size_t i = 0; i < frame.size(); ++i) EXPECT_EQ(frame.data()[i], 1.0f);
}

TEST(FaultInjector, SameSeedSamePlanSameFaultSequence) {
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.freeze_prob = 0.05;
  plan.noise_prob = 0.05;
  plan.blackout_prob = 0.002;
  FaultInjector a(plan, 42), b(plan, 42);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(a.next_frame_fault(), b.next_frame_fault()) << "frame " << i;
  }
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
  EXPECT_EQ(a.blackout_frames_total(), b.blackout_frames_total());
}

TEST(FaultInjector, DropRateApproximatesPlan) {
  FaultPlan plan;
  plan.drop_prob = 0.2;
  FaultInjector inj(plan, 7);
  const int n = 10000;
  for (int i = 0; i < n; ++i) inj.next_frame_fault();
  const double rate = static_cast<double>(inj.frames_dropped()) / n;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(FaultInjector, AtMostOneFaultPerFrameAndCountersAddUp) {
  FaultPlan plan;
  plan.drop_prob = 0.15;
  plan.freeze_prob = 0.15;
  plan.noise_prob = 0.15;
  plan.blackout_prob = 0.01;
  plan.blackout_frames = 5;
  FaultInjector inj(plan, 11);
  const int n = 5000;
  std::size_t none = 0;
  for (int i = 0; i < n; ++i) {
    if (inj.next_frame_fault() == FrameFault::None) ++none;
  }
  EXPECT_EQ(none + inj.frames_dropped() + inj.frames_frozen() + inj.noise_bursts() +
                inj.blackout_frames_total(),
            static_cast<std::size_t>(n));
  EXPECT_EQ(inj.frames_seen(), static_cast<std::size_t>(n));
}

TEST(FaultInjector, BlackoutRunsForConfiguredFrames) {
  FaultPlan plan;
  plan.blackout_prob = 0.01;
  plan.blackout_frames = 7;
  FaultInjector inj(plan, 13);
  // Find a blackout start and check it persists for exactly 7 frames.
  int i = 0;
  while (inj.next_frame_fault() != FrameFault::Blackout) {
    ASSERT_LT(++i, 100000) << "no blackout in 100k frames at p=0.01";
  }
  for (int k = 1; k < 7; ++k) {
    EXPECT_EQ(inj.next_frame_fault(), FrameFault::Blackout) << "blackout frame " << k;
  }
  // The interval has ended; with p=0.01 the next frame is almost surely
  // clear, but all that is guaranteed is that the forced run is over — so
  // just confirm the injector keeps answering.
  (void)inj.next_frame_fault();
}

TEST(FaultInjector, BlackoutZeroesFrame) {
  FaultPlan plan;
  plan.blackout_prob = 1.0;
  FaultInjector inj(plan, 17);
  ASSERT_EQ(inj.next_frame_fault(), FrameFault::Blackout);
  vision::Image frame(10, 10, 1.0f);
  inj.perturb(frame);
  EXPECT_EQ(frame.count_above(0.0f), 0u);
}

TEST(FaultInjector, NoiseBurstFlipsCellsKeepsOccupancyBinary) {
  FaultPlan plan;
  plan.noise_prob = 1.0;
  plan.noise_density = 0.5f;
  FaultInjector inj(plan, 19);
  ASSERT_EQ(inj.next_frame_fault(), FrameFault::NoiseBurst);
  vision::Image frame(36, 24, 0.0f);
  for (int x = 0; x < 10; ++x) frame.at(x, 3) = 1.0f;  // a "vehicle"
  inj.perturb(frame);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const float v = frame.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
  // ~half the empty cells lit up: the frame must have changed a lot.
  changed = frame.count_above(0.5f);
  EXPECT_GT(changed, 200u);
}

TEST(FaultInjector, SwitchFailureRateFollowsPlan) {
  FaultPlan plan;
  plan.switch_failure_prob = 0.5;
  FaultInjector inj(plan, 23);
  const int n = 2000;
  int fails = 0;
  for (int i = 0; i < n; ++i) {
    if (inj.next_switch_fails()) ++fails;
  }
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.5, 0.05);
  EXPECT_EQ(inj.switch_failures(), static_cast<std::size_t>(fails));
}

struct TempFile {
  fs::path path;
  explicit TempFile(const char* name)
      : path(fs::temp_directory_path() / (std::string("safecross_fi_") +
                                          std::to_string(::getpid()) + "_" + name)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
};

TEST(FaultInjector, TruncateFileKeepsPrefix) {
  TempFile tmp("trunc.bin");
  {
    std::ofstream os(tmp.path, std::ios::binary);
    const char bytes[] = "0123456789abcdef";
    os.write(bytes, 16);
  }
  FaultInjector::truncate_file(tmp.path, 5);
  EXPECT_EQ(fs::file_size(tmp.path), 5u);
  std::ifstream is(tmp.path, std::ios::binary);
  char head[5] = {};
  is.read(head, 5);
  EXPECT_EQ(std::string(head, 5), "01234");

  FaultInjector::truncate_file(tmp.path, 0);
  EXPECT_EQ(fs::file_size(tmp.path), 0u);
}

TEST(FaultInjector, CorruptMagicFlipsHeaderOnly) {
  TempFile tmp("magic.bin");
  {
    std::ofstream os(tmp.path, std::ios::binary);
    const char bytes[] = {0x05, 0x11, 0x22, 0x33, 'T', 'A', 'I', 'L'};
    os.write(bytes, 8);
  }
  FaultInjector::corrupt_magic(tmp.path);
  std::ifstream is(tmp.path, std::ios::binary);
  char bytes[8] = {};
  is.read(bytes, 8);
  EXPECT_EQ(bytes[0], static_cast<char>(~0x05));
  EXPECT_EQ(bytes[1], static_cast<char>(~0x11));
  EXPECT_EQ(std::string(bytes + 4, 4), "TAIL");
}

TEST(FaultInjectorGeometry, EnablingGeometryDoesNotShiftFrameFaultStream) {
  // The geometric stream draws from its own salted RNG; turning it on must
  // leave the drop/freeze/noise/blackout sequence bit-identical, or every
  // committed golden trace with a fault plan would silently shift.
  FaultPlan stream_only;
  stream_only.drop_prob = 0.1;
  stream_only.freeze_prob = 0.05;
  stream_only.noise_prob = 0.05;
  stream_only.blackout_prob = 0.002;
  FaultPlan with_geometry = stream_only;
  with_geometry.geometry.drift_px_per_frame = 0.05;
  with_geometry.geometry.shake_amp_px = 0.5;
  with_geometry.geometry.bump_prob = 0.01;

  FaultInjector a(stream_only, 4242), b(with_geometry, 4242);
  b.set_frame_size(256, 144);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.next_frame_fault(), b.next_frame_fault()) << "frame " << i;
  }
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
  EXPECT_EQ(a.frames_frozen(), b.frames_frozen());
  EXPECT_EQ(a.noise_bursts(), b.noise_bursts());
  EXPECT_EQ(a.blackout_frames_total(), b.blackout_frames_total());
  EXPECT_GT(b.perturbation_drift_px(), 0.0);  // geometry really ran
}

TEST(FaultInjectorGeometry, SameSeedSameViewTrajectory) {
  FaultPlan plan;
  plan.geometry.drift_px_per_frame = 0.03;
  plan.geometry.drift_rot_per_frame = 1e-4;
  plan.geometry.shake_amp_px = 0.8;
  plan.geometry.bump_prob = 0.02;
  FaultInjector a(plan, 99), b(plan, 99);
  a.set_frame_size(256, 144);
  b.set_frame_size(256, 144);
  for (int i = 0; i < 2000; ++i) {
    a.next_frame_fault();
    b.next_frame_fault();
    const auto& ma = a.view_perturbation().matrix();
    const auto& mb = b.view_perturbation().matrix();
    for (int m = 0; m < 9; ++m) ASSERT_EQ(ma[m], mb[m]) << "frame " << i;
  }
  EXPECT_EQ(a.bumps(), b.bumps());
}

TEST(FaultInjectorGeometry, DriftRampsBetweenStartAndStopThenHolds) {
  FaultPlan plan;
  plan.geometry.drift_px_per_frame = 0.1;
  plan.geometry.drift_start_frame = 10;
  plan.geometry.drift_stop_frame = 50;
  FaultInjector inj(plan, 7);
  inj.set_frame_size(256, 144);
  ASSERT_TRUE(inj.geometry_active());
  // Pure unit-direction translation: the mean corner drift IS the ramp.
  for (int f = 1; f <= 10; ++f) {
    inj.next_frame_fault();
    EXPECT_NEAR(inj.perturbation_drift_px(), 0.0, 1e-9) << "frame " << f;
  }
  for (int f = 11; f <= 50; ++f) {
    inj.next_frame_fault();
    EXPECT_NEAR(inj.perturbation_drift_px(), 0.1 * (f - 10), 1e-9) << "frame " << f;
  }
  for (int f = 51; f <= 80; ++f) {
    inj.next_frame_fault();
    EXPECT_NEAR(inj.perturbation_drift_px(), 0.1 * 40, 1e-9) << "frame " << f;
  }
}

TEST(FaultInjectorGeometry, GeometryInactiveWithoutFrameSize) {
  FaultPlan plan;
  plan.geometry.drift_px_per_frame = 0.1;
  FaultInjector inj(plan, 7);
  EXPECT_FALSE(inj.geometry_active());  // no frame size yet
  for (int f = 0; f < 100; ++f) inj.next_frame_fault();
  EXPECT_EQ(inj.perturbation_drift_px(), 0.0);
}

TEST(FaultInjectorGeometry, SaveLoadMidDriftContinuesBitIdentical) {
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.noise_prob = 0.05;
  plan.geometry.drift_px_per_frame = 0.04;
  plan.geometry.shake_amp_px = 0.6;
  plan.geometry.bump_prob = 0.01;
  FaultInjector a(plan, 31337);
  a.set_frame_size(256, 144);
  for (int i = 0; i < 500; ++i) a.next_frame_fault();

  common::StateWriter w;
  a.save_state(w);
  const std::string bytes = w.take();

  // A different seed proves the checkpoint carries the full RNG + geometry
  // state rather than leaning on construction.
  FaultInjector b(plan, 1);
  common::StateReader r(bytes);
  b.load_state(r);

  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a.next_frame_fault(), b.next_frame_fault()) << "frame " << i;
    const auto& ma = a.view_perturbation().matrix();
    const auto& mb = b.view_perturbation().matrix();
    for (int m = 0; m < 9; ++m) ASSERT_EQ(ma[m], mb[m]) << "frame " << i;
  }
  EXPECT_EQ(a.bumps(), b.bumps());
  EXPECT_EQ(a.frames_dropped(), b.frames_dropped());
}

TEST(FaultInjector, WriteGarbageIsDeterministic) {
  TempFile a("garbage_a.bin"), b("garbage_b.bin");
  FaultInjector::write_garbage(a.path, 256, 99);
  FaultInjector::write_garbage(b.path, 256, 99);
  std::ifstream ia(a.path, std::ios::binary), ib(b.path, std::ios::binary);
  std::vector<char> da(256), db(256);
  ia.read(da.data(), 256);
  ib.read(db.data(), 256);
  EXPECT_EQ(da, db);
  EXPECT_EQ(fs::file_size(a.path), 256u);
}

}  // namespace
}  // namespace safecross::runtime
