// RecalibrationLoop state machine, driven by stub estimators so every
// transition is exercised deterministically: drift latch, conservative
// gating through HealthMonitor, solve-latency countdown, the atomic
// apply, failed-estimate retries, and checkpoint round-trips.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/state_io.h"
#include "runtime/recalibration.h"

namespace safecross::runtime {
namespace {

using vision::CalibrationEstimate;
using vision::Homography;

Homography shift(double dx, double dy) {
  return Homography({1, 0, dx, 0, 1, dy, 0, 0, 1});
}

CalibrationEstimate good_estimate(const Homography& view) {
  CalibrationEstimate est;
  est.ok = true;
  est.view = view;
  est.residual_rms = 0.2;
  est.inliers = 30;
  return est;
}

RecalibrationConfig test_config() {
  RecalibrationConfig cfg;
  cfg.enabled = true;
  cfg.check_every_frames = 10;
  cfg.drift_threshold_px = 0.75;
  cfg.solve_latency_frames = 5;
  cfg.frame_width = 256;
  cfg.frame_height = 144;
  return cfg;
}

TEST(ViewDrift, TranslationDriftIsItsMagnitude) {
  EXPECT_NEAR(view_drift_px(shift(3.0, 4.0), Homography(), 256, 144), 5.0, 1e-12);
  EXPECT_NEAR(view_drift_px(Homography(), Homography(), 256, 144), 0.0, 1e-12);
}

TEST(RecalibrationLoop, DriftLatchesThenSwapsAfterSolveLatency) {
  HealthMonitor health{HealthConfig{}};
  Homography drift;  // what the stub estimator currently "sees"
  std::vector<Homography> applied;
  RecalibrationLoop loop(
      test_config(), Homography(), &health,
      [&](const Homography&) { return good_estimate(drift); },
      [&](const Homography& h) { applied.push_back(h); });

  // Calibrated and drift-free: checks run, nothing latches.
  for (std::uint64_t f = 1; f <= 20; ++f) loop.on_frame(f);
  EXPECT_EQ(loop.state(), CalibrationState::Calibrated);
  EXPECT_EQ(loop.checks_run(), 2u);
  EXPECT_FALSE(health.miscalibrated());

  // The camera moves 2 px: the frame-30 check must latch and start the
  // solve in the same call (the detecting estimate is the candidate).
  drift = shift(2.0, 0.0);
  loop.on_frame(30);
  EXPECT_EQ(loop.state(), CalibrationState::Recalibrating);
  EXPECT_TRUE(health.miscalibrated());
  EXPECT_EQ(loop.miscalibration_episodes(), 1u);
  EXPECT_NEAR(loop.last_drift_px(), 2.0, 1e-12);

  // Solve latency: 5 frames of countdown, still latched.
  for (std::uint64_t f = 31; f <= 34; ++f) loop.on_frame(f);
  EXPECT_TRUE(health.miscalibrated());
  ASSERT_TRUE(applied.empty());

  loop.on_frame(35);  // countdown hits zero: swap + unlatch
  EXPECT_EQ(loop.state(), CalibrationState::Calibrated);
  EXPECT_FALSE(health.miscalibrated());
  EXPECT_EQ(loop.recalibrations(), 1u);
  ASSERT_EQ(applied.size(), 1u);
  // Corrected remap = ideal_grid * view^-1: for identity ideal grid and a
  // +2 px x-shift view, the applied matrix sends pixels 2 px back.
  EXPECT_NEAR(applied[0].apply({10.0, 10.0}).x, 8.0, 1e-12);

  const std::vector<RecalibrationEntry> completed = loop.take_completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].frame, 35u);
  EXPECT_EQ(completed[0].attempts, 1u);
  EXPECT_TRUE(loop.take_completed().empty());  // drained
}

TEST(RecalibrationLoop, FailedEstimateKeepsWarningUntilASolveLands) {
  HealthMonitor health{HealthConfig{}};
  Homography drift = shift(2.0, 0.0);
  bool estimator_up = true;
  int calls = 0;
  RecalibrationLoop loop(
      test_config(), Homography(), &health,
      [&](const Homography&) {
        ++calls;
        CalibrationEstimate est;
        if (estimator_up) est = good_estimate(drift);
        else est.error = "too few corner tracks";
        return est;
      },
      [](const Homography&) {});

  // Latch normally, then make the estimator fail before the solve lands:
  // that can only happen on the *next* episode, so first complete one.
  loop.on_frame(10);
  for (std::uint64_t f = 11; f <= 15; ++f) loop.on_frame(f);
  ASSERT_EQ(loop.state(), CalibrationState::Calibrated);

  // Second episode: detection sees more drift, but then the estimator
  // goes down — the detecting estimate still starts a solve. To pin the
  // Miscalibrated-with-retries path, fail the *detection* estimate's
  // successor: drift again and cut the estimator right after the latch.
  drift = shift(4.5, 0.0);
  loop.on_frame(20);
  ASSERT_EQ(loop.state(), CalibrationState::Recalibrating);
  for (std::uint64_t f = 21; f <= 25; ++f) loop.on_frame(f);
  ASSERT_EQ(loop.state(), CalibrationState::Calibrated);

  // Third episode with a flaky estimator: the drift check itself fails, so
  // nothing latches (single-attempt detection is deliberate); once it
  // recovers, the latch fires and a solve starts.
  drift = shift(7.0, 0.0);
  estimator_up = false;
  loop.on_frame(30);
  EXPECT_EQ(loop.state(), CalibrationState::Calibrated);
  EXPECT_GT(loop.estimates_rejected(), 0u);
  estimator_up = true;
  loop.on_frame(40);
  EXPECT_EQ(loop.state(), CalibrationState::Recalibrating);
  EXPECT_TRUE(health.miscalibrated());
  EXPECT_GT(calls, 3);
}

TEST(RecalibrationLoop, MiscalibratedRetriesUnderBackoffBudget) {
  HealthMonitor health{HealthConfig{}};
  // Phase 0: detection "succeeds" but with a degenerate (rank-2) view, so
  // start_solve cannot invert it — the only path into the Miscalibrated
  // holding state. Phase 1: every estimate fails outright. Phase 2: the
  // first two attempts fail, the third lands.
  int phase = 0;
  int attempts_in_check = 0;
  RecalibrationLoop loop(
      test_config(), Homography(), &health,
      [&](const Homography&) {
        CalibrationEstimate est;
        if (phase == 0) {
          est.ok = true;
          est.view = Homography({1, 0, 5, 0, 0, 0, 0, 0, 1});  // det == 0
          return est;
        }
        if (phase == 1) {
          est.error = "too few corner tracks";
          return est;
        }
        if (++attempts_in_check < 3) {
          est.error = "degenerate inlier fit";
          return est;
        }
        return good_estimate(shift(3.0, 0.0));
      },
      [](const Homography&) {});

  // Degenerate candidate: drift latches but no solve starts.
  loop.on_frame(10);
  EXPECT_EQ(loop.state(), CalibrationState::Miscalibrated);
  EXPECT_TRUE(health.miscalibrated());
  EXPECT_EQ(loop.miscalibration_episodes(), 1u);
  EXPECT_EQ(loop.estimates_rejected(), 1u);

  // Retry budget exhausted this check: warnings persist, no state change.
  phase = 1;
  loop.on_frame(20);
  EXPECT_EQ(loop.state(), CalibrationState::Miscalibrated);
  EXPECT_TRUE(health.miscalibrated());
  EXPECT_EQ(loop.estimates_rejected(), 2u);

  // Third attempt of the next check lands; the record counts all three.
  phase = 2;
  loop.on_frame(30);
  ASSERT_EQ(loop.state(), CalibrationState::Recalibrating);
  for (std::uint64_t f = 31; f <= 35; ++f) loop.on_frame(f);
  EXPECT_EQ(loop.state(), CalibrationState::Calibrated);
  EXPECT_FALSE(health.miscalibrated());
  EXPECT_EQ(loop.recalibrations(), 1u);
  const std::vector<RecalibrationEntry> completed = loop.take_completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].attempts, 3u);
}

TEST(RecalibrationLoop, DisabledLoopNeverCallsTheEstimator) {
  HealthMonitor health{HealthConfig{}};
  int calls = 0;
  RecalibrationConfig cfg = test_config();
  cfg.enabled = false;
  RecalibrationLoop loop(
      cfg, Homography(), &health,
      [&](const Homography&) {
        ++calls;
        return good_estimate(Homography());
      },
      [](const Homography&) {});
  for (std::uint64_t f = 1; f <= 100; ++f) loop.on_frame(f);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(loop.checks_run(), 0u);
}

TEST(RecalibrationLoop, CheckpointRoundTripsMidCountdown) {
  HealthMonitor health{HealthConfig{}};
  Homography drift = shift(1.5, -1.0);
  std::vector<Homography> applied_a;
  RecalibrationLoop a(
      test_config(), Homography(), &health,
      [&](const Homography&) { return good_estimate(drift); },
      [&](const Homography& h) { applied_a.push_back(h); });
  a.on_frame(10);  // latch + start solve
  a.on_frame(11);
  a.on_frame(12);  // mid-countdown
  ASSERT_EQ(a.state(), CalibrationState::Recalibrating);

  common::StateWriter w;
  a.save_state(w);
  health.save_state(w);
  const std::string bytes = w.take();

  HealthMonitor health_b{HealthConfig{}};
  std::vector<Homography> applied_b;
  RecalibrationLoop b(
      test_config(), Homography(), &health_b,
      [&](const Homography&) { return good_estimate(drift); },
      [&](const Homography& h) { applied_b.push_back(h); });
  common::StateReader r(bytes);
  b.load_state(r);
  health_b.load_state(r);

  for (std::uint64_t f = 13; f <= 15; ++f) {
    a.on_frame(f);
    b.on_frame(f);
  }
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.recalibrations(), b.recalibrations());
  ASSERT_EQ(applied_a.size(), 1u);
  ASSERT_EQ(applied_b.size(), 1u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(applied_a[0].matrix()[i], applied_b[0].matrix()[i]);
  }
  const auto ca = a.take_completed();
  const auto cb = b.take_completed();
  ASSERT_EQ(ca.size(), 1u);
  ASSERT_EQ(cb.size(), 1u);
  EXPECT_EQ(ca[0].frame, cb[0].frame);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(ca[0].image_to_grid[i], cb[0].image_to_grid[i]);
}

}  // namespace
}  // namespace safecross::runtime
