#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace safecross {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSmallNFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<int> hits(3, 0);  // unsynchronized: must still be safe serially
  pool.parallel_for(3, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, ThrowingTaskDoesNotTerminateAndRethrowsFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool is idle and clean afterwards.
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, FirstExceptionWinsOthersDropped) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // all captured errors cleared by the first rethrow
}

TEST(ThreadPool, PoolStaysUsableAfterThrowingTask) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForRethrowsWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t i) {
                          if (i == 500) throw std::runtime_error("index boom");
                        }),
      std::runtime_error);
  // The pool must not be poisoned: a later parallel_for still works.
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSerialFallbackPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(2,  // below the parallel threshold
                                 [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ThreadPool, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // parallel_for from inside parallel_for: the caller helps drain its own
  // chunk bag, so inner loops make progress even when every pool thread
  // is already parked inside an outer iteration. This is the GEMM-inside-
  // parallel_for shape (batched classify calls into sgemm's tile loop).
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.parallel_for(64, [&](std::size_t outer) {
    pool.parallel_for(64, [&](std::size_t inner) {
      hits[outer * 64 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t outer) {
                                   pool.parallel_for(100, [&](std::size_t inner) {
                                     if (outer == 3 && inner == 50) {
                                       throw std::runtime_error("inner boom");
                                     }
                                   });
                                 }),
               std::runtime_error);
  // Not poisoned afterwards.
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForFromWorkerOfSamePool) {
  // A submitted task (running on a worker thread) issuing parallel_for on
  // its own pool: the worker must help rather than wait on itself.
  ThreadPool pool(1);  // single worker: deadlocks without helping
  std::atomic<int> total{0};
  pool.submit([&] {
    pool.parallel_for(128, [&](std::size_t) { total.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(total.load(), 128);
}

}  // namespace
}  // namespace safecross
