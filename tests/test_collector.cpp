#include "dataset/collector.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"

namespace safecross::dataset {
namespace {

TEST(Collector, CollectsSegmentsWithCorrectLength) {
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 3);
  sim::CameraModel cam(sim.intersection().geometry());
  CollectorConfig cfg;
  SegmentCollector collector(sim, cam, cfg, 9);
  while (collector.segments().size() < 5 && sim.time() < 1200.0) collector.step();
  ASSERT_GE(collector.segments().size(), 5u);
  for (const VideoSegment& s : collector.segments()) {
    EXPECT_EQ(s.frames.size(), 32u);
    for (const auto& f : s.frames) {
      EXPECT_EQ(f.width(), cfg.grid_w);
      EXPECT_EQ(f.height(), cfg.grid_h);
    }
    EXPECT_EQ(s.weather, Weather::Daytime);
  }
}

TEST(Collector, ProducesBothClasses) {
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 4);
  sim::CameraModel cam(sim.intersection().geometry());
  SegmentCollector collector(sim, cam, {}, 10);
  while (collector.segments().size() < 40 && sim.time() < 3600.0) collector.step();
  std::size_t danger = 0, safe = 0;
  for (const VideoSegment& s : collector.segments()) {
    (s.binary_label() == 0 ? danger : safe)++;
  }
  EXPECT_GT(danger, 0u);
  EXPECT_GT(safe, 0u);
}

TEST(Collector, FramesAreBinaryOccupancy) {
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 5);
  sim::CameraModel cam(sim.intersection().geometry());
  SegmentCollector collector(sim, cam, {}, 11);
  while (collector.segments().size() < 2 && sim.time() < 1200.0) collector.step();
  ASSERT_GE(collector.segments().size(), 1u);
  for (const auto& f : collector.segments()[0].frames) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_TRUE(f.data()[i] == 0.0f || f.data()[i] == 1.0f);
    }
  }
}

TEST(Collector, RainFramesNoisierThanDaytime) {
  auto noise_cells = [](Weather w) {
    sim::TrafficSimulator sim(sim::weather_params(w), 6);
    sim::CameraModel cam(sim.intersection().geometry());
    SegmentCollector collector(sim, cam, {}, 12);
    std::size_t cells = 0;
    for (int i = 0; i < 200; ++i) {
      collector.step();
      cells += collector.last_frame().count_above(0.5f);
    }
    return cells;
  };
  EXPECT_GT(noise_cells(Weather::Rain), noise_cells(Weather::Daytime));
}

TEST(Collector, FullVPPipelineProducesSegments) {
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 7);
  sim::CameraModel cam(sim.intersection().geometry());
  CollectorConfig cfg;
  cfg.mode = PipelineMode::FullVP;
  SegmentCollector collector(sim, cam, cfg, 13);
  while (collector.segments().size() < 1 && sim.time() < 600.0) collector.step();
  ASSERT_GE(collector.segments().size(), 1u);
  EXPECT_EQ(collector.segments()[0].frames.size(), 32u);
}

TEST(Collector, TakeSegmentsDrains) {
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 8);
  sim::CameraModel cam(sim.intersection().geometry());
  SegmentCollector collector(sim, cam, {}, 14);
  while (collector.segments().size() < 2 && sim.time() < 1200.0) collector.step();
  const auto taken = collector.take_segments();
  EXPECT_GE(taken.size(), 2u);
  EXPECT_TRUE(collector.segments().empty());
}

TEST(Collector, BlackoutAcrossWindowEdgeStaysContiguousButStale) {
  // A blackout delivers Corrupted frames: slots are filled (no temporal
  // gap), but their content is untrustworthy. Straddle the 32-frame
  // window edge with a corrupted burst and check the two properties the
  // fail-safe gates rely on: contiguity survives, freshness degrades.
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 21);
  sim::CameraModel cam(sim.intersection().geometry());
  CollectorConfig cfg;
  SegmentCollector collector(sim, cam, cfg, 22);
  // Fill most of the first window, then black out across its edge:
  // 8 corrupted frames before slot 32 and 8 after.
  for (int i = 0; i < 24; ++i) collector.step();
  EXPECT_FALSE(collector.window_contiguous()) << "window not full yet";
  for (int i = 0; i < 16; ++i) collector.step(FrameStatus::Corrupted);
  EXPECT_EQ(collector.frames_corrupted(), 16u);
  EXPECT_TRUE(collector.window_contiguous())
      << "corrupted slots are filled slots: no temporal gap";
  // The window now holds 16 corrupted frames out of 32 — stale by any
  // reasonable freshness floor.
  EXPECT_EQ(collector.window().size(), 32u);
  EXPECT_EQ(collector.stale_in_window(), 16u);
  EXPECT_EQ(collector.fresh_in_window(), 16u);
  // Fresh frames roll the corruption out of the window one slot at a time.
  for (int i = 0; i < 16; ++i) collector.step();
  EXPECT_EQ(collector.stale_in_window(), 16u) << "burst still inside the window";
  for (int i = 0; i < 16; ++i) {
    collector.step();
    EXPECT_EQ(collector.stale_in_window(), static_cast<std::size_t>(15 - i));
  }
  EXPECT_EQ(collector.fresh_in_window(), 32u);
  EXPECT_TRUE(collector.window_contiguous());
}

TEST(Collector, DropInsideCorruptedBurstBreaksContiguity) {
  // Contrast case to the blackout test: a *dropped* slot inside the same
  // burst does open a gap, and contiguity only returns after a full
  // window of filled slots.
  sim::TrafficSimulator sim(sim::weather_params(Weather::Daytime), 23);
  sim::CameraModel cam(sim.intersection().geometry());
  SegmentCollector collector(sim, cam, {}, 24);
  for (int i = 0; i < 40; ++i) collector.step();
  ASSERT_TRUE(collector.window_contiguous());
  collector.step(FrameStatus::Corrupted);
  EXPECT_TRUE(collector.window_contiguous());
  collector.step(FrameStatus::Dropped);
  EXPECT_FALSE(collector.window_contiguous());
  for (int i = 0; i < 31; ++i) {
    collector.step();
    EXPECT_FALSE(collector.window_contiguous()) << "gap still inside the window";
  }
  collector.step();  // 32nd filled slot since the gap
  EXPECT_TRUE(collector.window_contiguous());
}

TEST(Builder, ReachesTargetOrTimeCap) {
  BuildRequest req;
  req.weather = Weather::Daytime;
  req.target_segments = 10;
  req.max_sim_hours = 0.5;
  req.seed = 15;
  const BuiltDataset ds = build_dataset(req);
  EXPECT_GE(ds.segments.size(), 10u);
  EXPECT_GT(ds.frames, 0u);
}

TEST(Builder, PaperTableOneConstants) {
  EXPECT_EQ(paper_segment_count(Weather::Daytime), 1966u);
  EXPECT_EQ(paper_segment_count(Weather::Rain), 34u);
  EXPECT_EQ(paper_segment_count(Weather::Snow), 855u);
  EXPECT_DOUBLE_EQ(paper_time_span_hours(Weather::Daytime), 6.0);
  EXPECT_DOUBLE_EQ(paper_time_span_hours(Weather::Rain), 1.0);
  EXPECT_DOUBLE_EQ(paper_time_span_hours(Weather::Snow), 3.0);
}

TEST(Builder, TurnSegmentsEndAtKeyframe) {
  // A turned segment's last frames should show the subject moving through
  // the junction box; we check the weaker invariant that turn segments
  // exist and carry the turned flag.
  BuildRequest req;
  req.target_segments = 30;
  req.max_sim_hours = 1.0;
  req.seed = 16;
  const BuiltDataset ds = build_dataset(req);
  bool any_turned = false;
  for (const auto& s : ds.segments) any_turned |= s.turned;
  EXPECT_TRUE(any_turned);
}

}  // namespace
}  // namespace safecross::dataset
