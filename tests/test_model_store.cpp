#include "core/model_store.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "fewshot/trainer.h"

namespace safecross::core {
namespace {

namespace fs = std::filesystem;

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 2;
  cfg.fsl_train.epochs = 2;
  return cfg;
}

std::vector<const dataset::VideoSegment*> ptrs(const std::vector<dataset::VideoSegment>& v) {
  std::vector<const dataset::VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() / ("safecross_store_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ModelStore, SaveLoadRoundTripPreservesDecisions) {
  dataset::BuildRequest req;
  req.target_segments = 40;
  req.max_sim_hours = 2.0;
  req.seed = 91;
  const auto day = dataset::build_dataset(req);

  SafeCross original(tiny_config());
  original.train_basic(ptrs(day.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(original);
  EXPECT_TRUE(fs::exists(store.path_for(dataset::Weather::Daytime)));

  SafeCross restored(tiny_config());
  const auto loaded = store.load(restored, tiny_config());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], dataset::Weather::Daytime);

  // Identical decisions, including BatchNorm running statistics.
  original.on_scene_change(dataset::Weather::Daytime);
  restored.on_scene_change(dataset::Weather::Daytime);
  for (std::size_t i = 0; i < 10 && i < day.segments.size(); ++i) {
    const auto a = original.classify(day.segments[i].frames);
    const auto b = restored.classify(day.segments[i].frames);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_FLOAT_EQ(a.prob_danger, b.prob_danger);
  }
}

TEST(ModelStore, SavesEveryTrainedWeather) {
  dataset::BuildRequest req;
  req.target_segments = 30;
  req.max_sim_hours = 2.0;
  req.seed = 92;
  const auto day = dataset::build_dataset(req);
  req.weather = dataset::Weather::Snow;
  req.seed = 93;
  const auto snow = dataset::build_dataset(req);

  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));
  sc.adapt_weather(dataset::Weather::Snow, ptrs(snow.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);
  const auto avail = store.available();
  ASSERT_EQ(avail.size(), 2u);
  EXPECT_EQ(avail[0], dataset::Weather::Daytime);
  EXPECT_EQ(avail[1], dataset::Weather::Snow);
}

TEST(ModelStore, EmptyDirectoryLoadsNothing) {
  TempDir tmp;
  ModelStore store(tmp.path);
  EXPECT_TRUE(store.available().empty());
  SafeCross sc(tiny_config());
  EXPECT_TRUE(store.load(sc, tiny_config()).empty());
}

TEST(ModelStore, MismatchedArchitectureRejected) {
  dataset::BuildRequest req;
  req.target_segments = 25;
  req.max_sim_hours = 2.0;
  req.seed = 94;
  const auto day = dataset::build_dataset(req);
  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));
  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);

  SafeCrossConfig other = tiny_config();
  other.model.slow_channels = 8;  // different graph
  SafeCross fresh(other);
  EXPECT_THROW(store.load(fresh, other), std::runtime_error);
}

}  // namespace
}  // namespace safecross::core
