#include "core/model_store.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "dataset/builder.h"
#include "fewshot/trainer.h"
#include "runtime/fault_injector.h"

namespace safecross::core {
namespace {

namespace fs = std::filesystem;

SafeCrossConfig tiny_config() {
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 2;
  cfg.fsl_train.epochs = 2;
  return cfg;
}

std::vector<const dataset::VideoSegment*> ptrs(const std::vector<dataset::VideoSegment>& v) {
  std::vector<const dataset::VideoSegment*> out;
  for (const auto& s : v) out.push_back(&s);
  return out;
}

struct TempDir {
  fs::path path;
  TempDir() : path(fs::temp_directory_path() / ("safecross_store_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ModelStore, SaveLoadRoundTripPreservesDecisions) {
  dataset::BuildRequest req;
  req.target_segments = 40;
  req.max_sim_hours = 2.0;
  req.seed = 91;
  const auto day = dataset::build_dataset(req);

  SafeCross original(tiny_config());
  original.train_basic(ptrs(day.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(original);
  EXPECT_TRUE(fs::exists(store.path_for(dataset::Weather::Daytime)));

  SafeCross restored(tiny_config());
  const auto loaded = store.load(restored, tiny_config());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], dataset::Weather::Daytime);

  // Identical decisions, including BatchNorm running statistics.
  original.on_scene_change(dataset::Weather::Daytime);
  restored.on_scene_change(dataset::Weather::Daytime);
  for (std::size_t i = 0; i < 10 && i < day.segments.size(); ++i) {
    const auto a = original.classify(day.segments[i].frames);
    const auto b = restored.classify(day.segments[i].frames);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_FLOAT_EQ(a.prob_danger, b.prob_danger);
  }
}

TEST(ModelStore, SavesEveryTrainedWeather) {
  dataset::BuildRequest req;
  req.target_segments = 30;
  req.max_sim_hours = 2.0;
  req.seed = 92;
  const auto day = dataset::build_dataset(req);
  req.weather = dataset::Weather::Snow;
  req.seed = 93;
  const auto snow = dataset::build_dataset(req);

  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));
  sc.adapt_weather(dataset::Weather::Snow, ptrs(snow.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);
  const auto avail = store.available();
  ASSERT_EQ(avail.size(), 2u);
  EXPECT_EQ(avail[0], dataset::Weather::Daytime);
  EXPECT_EQ(avail[1], dataset::Weather::Snow);
}

TEST(ModelStore, EmptyDirectoryLoadsNothing) {
  TempDir tmp;
  ModelStore store(tmp.path);
  EXPECT_TRUE(store.available().empty());
  SafeCross sc(tiny_config());
  EXPECT_TRUE(store.load(sc, tiny_config()).empty());
}

TEST(ModelStore, MismatchedArchitectureSkippedWithError) {
  dataset::BuildRequest req;
  req.target_segments = 25;
  req.max_sim_hours = 2.0;
  req.seed = 94;
  const auto day = dataset::build_dataset(req);
  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));
  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);

  SafeCrossConfig other = tiny_config();
  other.model.slow_channels = 8;  // different graph
  SafeCross fresh(other);
  const auto report = store.load_report(fresh, other);
  EXPECT_TRUE(report.loaded.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].weather, dataset::Weather::Daytime);
  EXPECT_FALSE(report.errors[0].message.empty());
  EXPECT_FALSE(fresh.has_model(dataset::Weather::Daytime));  // no half-loaded graph serves
}

// A roadside unit rebooting after a power cut may find one checkpoint
// truncated mid-write. The store must report the bad file and still bring
// up every healthy model — not abort the whole load.
TEST(ModelStore, TruncatedWeatherFileSkippedHealthyOnesLoad) {
  dataset::BuildRequest req;
  req.target_segments = 30;
  req.max_sim_hours = 2.0;
  req.seed = 95;
  const auto day = dataset::build_dataset(req);
  req.weather = dataset::Weather::Rain;
  req.seed = 96;
  const auto rain = dataset::build_dataset(req);

  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));
  sc.adapt_weather(dataset::Weather::Rain, ptrs(rain.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);

  // Truncate the rain checkpoint to half its size (lost tail of a write).
  const auto rain_path = store.path_for(dataset::Weather::Rain);
  const auto full_size = fs::file_size(rain_path);
  runtime::FaultInjector::truncate_file(rain_path, full_size / 2);

  SafeCross restored(tiny_config());
  const auto report = store.load_report(restored, tiny_config());
  ASSERT_EQ(report.loaded.size(), 1u);
  EXPECT_EQ(report.loaded[0], dataset::Weather::Daytime);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].weather, dataset::Weather::Rain);
  EXPECT_TRUE(restored.has_model(dataset::Weather::Daytime));
  EXPECT_FALSE(restored.has_model(dataset::Weather::Rain));

  // The healthy daytime model must decide identically to the original.
  sc.on_scene_change(dataset::Weather::Daytime);
  restored.on_scene_change(dataset::Weather::Daytime);
  for (std::size_t i = 0; i < 5 && i < day.segments.size(); ++i) {
    const auto a = sc.classify(day.segments[i].frames);
    const auto b = restored.classify(day.segments[i].frames);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_FLOAT_EQ(a.prob_danger, b.prob_danger);
  }
}

TEST(ModelStore, ZeroByteAndBadMagicFilesSkipped) {
  dataset::BuildRequest req;
  req.target_segments = 25;
  req.max_sim_hours = 2.0;
  req.seed = 97;
  const auto day = dataset::build_dataset(req);
  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);

  // Fabricate a zero-byte snow checkpoint and a garbage fog checkpoint.
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Snow), 0, 1);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Fog), 4096, 2);
  // And flip the magic on a copy of the healthy daytime file as night.
  fs::copy_file(store.path_for(dataset::Weather::Daytime),
                store.path_for(dataset::Weather::Night));
  runtime::FaultInjector::corrupt_magic(store.path_for(dataset::Weather::Night));

  SafeCross restored(tiny_config());
  const auto report = store.load_report(restored, tiny_config());
  ASSERT_EQ(report.loaded.size(), 1u);
  EXPECT_EQ(report.loaded[0], dataset::Weather::Daytime);
  EXPECT_EQ(report.errors.size(), 3u);
  for (const auto& err : report.errors) {
    EXPECT_NE(err.weather, dataset::Weather::Daytime);
    EXPECT_FALSE(err.message.empty());
  }
  // load() is the forgiving wrapper: loaded weathers only.
  SafeCross again(tiny_config());
  EXPECT_EQ(store.load(again, tiny_config()),
            std::vector<dataset::Weather>{dataset::Weather::Daytime});
}

// The structural checks (magic, size) cannot see a bit flip deep inside
// the tensor data — the CRC32 footer can. The corrupted checkpoint must
// be rejected by checksum before any weights deserialize.
TEST(ModelStore, MidFileBitFlipCaughtByChecksum) {
  dataset::BuildRequest req;
  req.target_segments = 25;
  req.max_sim_hours = 2.0;
  req.seed = 98;
  const auto day = dataset::build_dataset(req);
  SafeCross sc(tiny_config());
  sc.train_basic(ptrs(day.segments));

  TempDir tmp;
  ModelStore store(tmp.path);
  store.save(sc);

  const auto path = store.path_for(dataset::Weather::Daytime);
  common::flip_byte(path, fs::file_size(path) / 2);

  runtime::BackoffPolicy policy;
  policy.initial_ms = 0.1;
  policy.max_restarts = 0;
  store.set_retry_policy(policy);

  SafeCross restored(tiny_config());
  const auto report = store.load_report(restored, tiny_config());
  EXPECT_TRUE(report.loaded.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].message, "checkpoint checksum mismatch");
  EXPECT_FALSE(restored.has_model(dataset::Weather::Daytime));
}

// A checkpoint that fails persistently is retried with bounded backoff
// (a stat/open failure could be an NFS blip) and only then declared bad —
// with the attempt count surfaced so operators can tell "file is corrupt"
// from "file vanished on the first read".
TEST(ModelStore, PersistentlyBadCheckpointExhaustsRetryBudget) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  ModelStore store(tmp.path);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Snow), 4096, 5);

  runtime::BackoffPolicy policy;
  policy.initial_ms = 0.1;  // keep the test fast
  policy.max_ms = 0.5;
  policy.max_restarts = 2;
  store.set_retry_policy(policy);

  SafeCross sc(tiny_config());
  const auto report = store.load_report(sc, tiny_config());
  EXPECT_TRUE(report.loaded.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].weather, dataset::Weather::Snow);
  EXPECT_EQ(report.errors[0].attempts, 1 + policy.max_restarts);
  EXPECT_FALSE(report.errors[0].message.empty());
  EXPECT_FALSE(sc.has_model(dataset::Weather::Snow));
}

TEST(ModelStore, RetryBudgetIsConfigurable) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  ModelStore store(tmp.path);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Fog), 64, 6);

  runtime::BackoffPolicy policy = store.retry_policy();
  policy.initial_ms = 0.1;
  policy.max_restarts = 0;  // fail fast: exactly one attempt
  store.set_retry_policy(policy);

  SafeCross sc(tiny_config());
  const auto report = store.load_report(sc, tiny_config());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].attempts, 1);
}

// The warm-up manifest orders checkpoints by on-disk size descending
// (costliest cold loads first), truncates to the cache capacity, and
// breaks size ties in the stable weather enumeration order.
TEST(ModelStore, WarmManifestOrdersBySizeAndTruncatesToCapacity) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  ModelStore store(tmp.path);
  // Fabricated checkpoints: the manifest reads sizes only, never content.
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Daytime), 100, 1);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Rain), 300, 2);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Snow), 200, 3);
  runtime::FaultInjector::write_garbage(store.path_for(dataset::Weather::Fog), 300, 4);

  const auto all = store.warm_manifest();
  ASSERT_EQ(all.size(), 4u);
  // Rain and Fog tie at 300 bytes: enumeration order (Rain before Fog).
  EXPECT_EQ(all[0], dataset::Weather::Rain);
  EXPECT_EQ(all[1], dataset::Weather::Fog);
  EXPECT_EQ(all[2], dataset::Weather::Snow);
  EXPECT_EQ(all[3], dataset::Weather::Daytime);

  const auto top2 = store.warm_manifest(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], dataset::Weather::Rain);
  EXPECT_EQ(top2[1], dataset::Weather::Fog);

  // Capacity larger than the inventory keeps everything.
  EXPECT_EQ(store.warm_manifest(16).size(), 4u);
}

TEST(ModelStore, WarmManifestOnEmptyDirectoryIsEmpty) {
  TempDir tmp;
  fs::create_directories(tmp.path);
  ModelStore store(tmp.path);
  EXPECT_TRUE(store.warm_manifest().empty());
  EXPECT_TRUE(store.warm_manifest(3).empty());
}

}  // namespace
}  // namespace safecross::core
