#include "switching/gpu_model.h"

#include <gtest/gtest.h>

#include "switching/grouping.h"

namespace safecross::switching {
namespace {

ModelProfile small_profile() {
  ModelProfile p;
  p.name = "small";
  p.framework_load_ms = 100.0;
  p.layers.push_back({"a", 8'000'000, 1.0, 10.0});
  p.layers.push_back({"b", 4'000'000, 0.5, 5.0});
  p.layers.push_back({"c", 12'000'000, 1.5, 15.0});
  return p;
}

TEST(GpuModel, TransferTimeMatchesBandwidth) {
  GpuModelConfig gpu;
  gpu.pcie_gbps = 10.0;
  EXPECT_NEAR(transfer_ms(10'000'000'000ull, gpu), 1000.0, 1e-6);
}

TEST(GpuModel, StopAndStartIncludesAllColdCosts) {
  GpuModelConfig gpu;
  gpu.cuda_context_init_ms = 1000.0;
  gpu.transfer_setup_ms = 0.0;
  const ModelProfile p = small_profile();
  const SwitchResult r = simulate_stop_and_start(p, gpu);
  const double expected = 1000.0 + 100.0 + transfer_ms(p.total_bytes(), gpu) +
                          p.total_compute_ms() + p.total_cold_extra_ms();
  EXPECT_NEAR(r.completion_ms, expected, 1e-6);
  EXPECT_NEAR(r.switching_delay_ms(), expected - p.total_compute_ms(), 1e-6);
}

TEST(GpuModel, PipeSwitchSkipsContextAndColdCosts) {
  GpuModelConfig gpu;
  const ModelProfile p = small_profile();
  const SwitchResult ss = simulate_stop_and_start(p, gpu);
  const SwitchResult ps = simulate_pipeswitch(p, per_layer_grouping(p), gpu);
  EXPECT_LT(ps.completion_ms, ss.completion_ms / 50.0);
}

TEST(GpuModel, PipeSwitchRejectsBadGrouping) {
  GpuModelConfig gpu;
  const ModelProfile p = small_profile();
  EXPECT_THROW(simulate_pipeswitch(p, {1, 1}, gpu), std::invalid_argument);
}

TEST(GpuModel, PipeSwitchComputeWaitsForTransfer) {
  GpuModelConfig gpu;
  gpu.group_sync_ms = 0.0;
  gpu.transfer_setup_ms = 0.0;
  const ModelProfile p = small_profile();
  const SwitchResult r = simulate_pipeswitch(p, per_layer_grouping(p), gpu);
  // Each compute entry must start at/after its transfer ended.
  double xfer_end[3] = {};
  double comp_start[3] = {};
  int xi = 0, ci = 0;
  for (const auto& e : r.timeline) {
    if (e.engine == TimelineEntry::Engine::Transfer) xfer_end[xi++] = e.end_ms;
    if (e.engine == TimelineEntry::Engine::Compute) comp_start[ci++] = e.start_ms;
  }
  ASSERT_EQ(xi, 3);
  ASSERT_EQ(ci, 3);
  for (int i = 0; i < 3; ++i) EXPECT_GE(comp_start[i] + 1e-9, xfer_end[i]);
}

TEST(GpuModel, PipeSwitchComputeIsOrdered) {
  GpuModelConfig gpu;
  const ModelProfile p = small_profile();
  const SwitchResult r = simulate_pipeswitch(p, per_layer_grouping(p), gpu);
  double prev_end = -1.0;
  for (const auto& e : r.timeline) {
    if (e.engine != TimelineEntry::Engine::Compute) continue;
    EXPECT_GE(e.start_ms + 1e-9, prev_end);
    prev_end = e.end_ms;
  }
}

TEST(GpuModel, TableSixShape) {
  // The reproduction's core claim: stop-and-start is seconds, PipeSwitch
  // single-digit milliseconds, for all three Table VI workloads.
  GpuModelConfig gpu;
  for (const ModelProfile& p :
       {slowfast_r50_profile(), resnet152_profile(), inception_v3_profile()}) {
    const double ss = simulate_stop_and_start(p, gpu).switching_delay_ms();
    const double ps =
        simulate_pipeswitch(p, optimal_grouping(p, gpu), gpu).switching_delay_ms();
    EXPECT_GT(ss, 3000.0) << p.name;
    EXPECT_LT(ss, 7000.0) << p.name;
    EXPECT_LT(ps, 10.0) << p.name;  // the paper's "<10 ms" claim
    EXPECT_GT(ps, 0.0) << p.name;
  }
}

TEST(GpuModel, SlowfastIsSlowestStopAndStart) {
  GpuModelConfig gpu;
  const double sf = simulate_stop_and_start(slowfast_r50_profile(), gpu).switching_delay_ms();
  const double rn = simulate_stop_and_start(resnet152_profile(), gpu).switching_delay_ms();
  const double iv = simulate_stop_and_start(inception_v3_profile(), gpu).switching_delay_ms();
  EXPECT_GT(sf, rn);
  EXPECT_GT(rn, iv);
}

}  // namespace
}  // namespace safecross::switching
