#pragma once
// Numerical gradient checking for layers and whole models.
//
// Central differences on a scalar loss L = sum(w_i * out_i) with fixed
// random weights w: analytic gradients (via backward) must match
// (L(x+h) - L(x-h)) / 2h within tolerance, both for inputs and for every
// parameter.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layer.h"

namespace safecross::testing {

/// Weighted-sum "loss" over a tensor with deterministic weights.
inline double weighted_sum(const nn::Tensor& t, const std::vector<float>& weights) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) s += static_cast<double>(t[i]) * weights[i];
  return s;
}

inline std::vector<float> make_weights(std::size_t n, safecross::Rng& rng) {
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return w;
}

/// Check d(sum w*f(x))/dx and d/dparams for a forward/backward pair.
/// `forward` must be deterministic (run layers in eval=false only if they
/// are deterministic, e.g. no dropout).
inline void check_gradients(const std::function<nn::Tensor(const nn::Tensor&)>& forward,
                            const std::function<nn::Tensor(const nn::Tensor&)>& backward,
                            std::vector<nn::Param*> params, nn::Tensor input, double h = 1e-3,
                            double tol = 5e-2, std::size_t max_checks = 40) {
  safecross::Rng rng(1234);
  nn::Tensor out = forward(input);
  const std::vector<float> w = make_weights(out.numel(), rng);

  // Analytic gradients.
  for (nn::Param* p : params) p->zero_grad();
  nn::Tensor grad_out(out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) grad_out[i] = w[i];
  const nn::Tensor grad_in = backward(grad_out);

  // Numeric input gradients on a sample of coordinates. Skipped when the
  // backward under test does not expose input gradients (whole models
  // return a dummy tensor — only parameter gradients are checked there).
  const bool check_input = grad_in.numel() == input.numel();
  const std::size_t stride_in = std::max<std::size_t>(1, input.numel() / max_checks);
  for (std::size_t i = 0; check_input && i < input.numel(); i += stride_in) {
    const float orig = input[i];
    input[i] = orig + static_cast<float>(h);
    const double lp = weighted_sum(forward(input), w);
    input[i] = orig - static_cast<float>(h);
    const double lm = weighted_sum(forward(input), w);
    input[i] = orig;
    const double numeric = (lp - lm) / (2 * h);
    EXPECT_NEAR(grad_in[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input grad mismatch at flat index " << i;
  }

  // Numeric parameter gradients.
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    nn::Param* p = params[pi];
    const std::size_t stride_p = std::max<std::size_t>(1, p->value.numel() / max_checks);
    for (std::size_t i = 0; i < p->value.numel(); i += stride_p) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(h);
      const double lp = weighted_sum(forward(input), w);
      p->value[i] = orig - static_cast<float>(h);
      const double lm = weighted_sum(forward(input), w);
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2 * h);
      EXPECT_NEAR(p->grad[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
          << "param " << pi << " grad mismatch at flat index " << i;
    }
  }
}

/// Random tensor in [-1, 1].
inline nn::Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  safecross::Rng rng(seed);
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

}  // namespace safecross::testing
