#!/usr/bin/env bash
# Run the google-benchmark micro-bench binaries and write one JSON file
# per binary (BENCH_<name>.json) into the current directory. Also runs
# the robustness fault sweep (bench_robustness_faults) and the staged-
# pipeline sweep (bench_pipeline_robustness), which write
# BENCH_robustness.json / BENCH_pipeline.json themselves.
#
# Usage:
#   bench/run_benches.sh [--smoke] [build-dir]
#
#   --smoke    CI mode: only conv/GEMM benches plus a short fault sweep,
#              one repetition at a tiny min-time — a "does it still run"
#              guard, not a perf gate.
#   build-dir  defaults to ./build
#
# Note: the installed google-benchmark wants a bare number for
# --benchmark_min_time (no "s" suffix).
set -euo pipefail

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi
build_dir="${1:-build}"

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: '$build_dir/bench' not found — build the project first" >&2
  exit 1
fi

# Fail fast on a typo'd kernel selection: a misspelled value would
# otherwise throw from the first sgemm call deep inside a bench run.
# (sgemm's own resolver throws too — this just surfaces it up front.)
case "${SAFECROSS_GEMM_KERNEL:-auto}" in
  auto|micro|scalar|fp16) ;;
  *)
    echo "error: SAFECROSS_GEMM_KERNEL='${SAFECROSS_GEMM_KERNEL}' is not one of" \
         "auto|micro|scalar|fp16" >&2
    exit 2
    ;;
esac

extra_args=()
glob="bench_micro_*"
if [[ $smoke -eq 1 ]]; then
  # Only bench_micro_nn has Conv/Gemm benchmarks; skip the rest entirely
  # instead of writing empty JSON files.
  glob="bench_micro_nn"
  # Three repetitions: the perf gate compares medians, and a single
  # sample at a tiny min-time is too noisy on shared runners to gate on.
  extra_args+=(--benchmark_filter='Conv|Gemm' --benchmark_min_time=0.01 --benchmark_repetitions=3)
else
  extra_args+=(--benchmark_min_time=0.2)
fi

ran=0
for bin in "$build_dir"/bench/$glob; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name="$(basename "$bin")"
  out="BENCH_${name#bench_}.json"
  if [[ $smoke -eq 1 && "$name" == "bench_micro_nn" ]]; then
    # Smoke covers both compute kernels: a quick scalar-fallback pass
    # (the sanitizer-build configuration) to a side file, then the
    # default microkernel pass, which is what the perf gate reads.
    echo "== $name [SAFECROSS_GEMM_KERNEL=scalar] -> BENCH_micro_nn_scalar.json"
    SAFECROSS_GEMM_KERNEL=scalar "$bin" --benchmark_out=BENCH_micro_nn_scalar.json \
      --benchmark_out_format=json "${extra_args[@]}"
  fi
  echo "== $name -> $out"
  "$bin" --benchmark_out="$out" --benchmark_out_format=json "${extra_args[@]}"
  ran=$((ran + 1))
done

if [[ $ran -eq 0 ]]; then
  echo "error: no bench_micro_* binaries in '$build_dir/bench'" >&2
  exit 1
fi

# Fault-injection sweep: availability / missed-threat / false-warning per
# fault rate, baseline vs fail-safe policy. Not a google-benchmark binary;
# it writes its JSON itself and exits non-zero on any uncaught exception.
robustness_bin="$build_dir/bench/bench_robustness_faults"
if [[ -x "$robustness_bin" ]]; then
  robustness_args=(--json BENCH_robustness.json)
  if [[ $smoke -eq 1 ]]; then
    robustness_args+=(--frames 1800)  # one simulated minute per arm
  fi
  echo "== bench_robustness_faults -> BENCH_robustness.json"
  "$robustness_bin" "${robustness_args[@]}"
  ran=$((ran + 1))
fi

# Geometric drift sweep: uncorrected camera decay vs the self-healing
# recalibration loop, per drift rate. Writes its JSON itself; exits
# non-zero on uncaught exceptions or if the zero-drift/no-recalib arm
# diverges from a plain run (the geometry machinery must be free when
# disabled).
drift_bin="$build_dir/bench/bench_drift"
if [[ -x "$drift_bin" ]]; then
  drift_args=(--json BENCH_drift.json)
  if [[ $smoke -eq 1 ]]; then
    drift_args+=(--frames 1800)  # one simulated minute per arm
  fi
  echo "== bench_drift -> BENCH_drift.json"
  "$drift_bin" "${drift_args[@]}"
  ran=$((ran + 1))
fi

# Staged-pipeline sweep: sync reference vs supervised pipeline under
# injected stage crashes and decide-stage overload. Writes its JSON itself;
# exits non-zero on uncaught exceptions or a fault-free pipelined run that
# diverges from the sync scorecard.
pipeline_bin="$build_dir/bench/bench_pipeline_robustness"
if [[ -x "$pipeline_bin" ]]; then
  pipeline_args=(--json BENCH_pipeline.json)
  if [[ $smoke -eq 1 ]]; then
    pipeline_args+=(--frames 1800)  # one simulated minute per arm
  fi
  echo "== bench_pipeline_robustness -> BENCH_pipeline.json"
  "$pipeline_bin" "${pipeline_args[@]}"
  ran=$((ran + 1))
fi

# Multi-stream serving sweep: batched StreamServer vs sequential reference
# over stream counts {1,2,4,8}. Writes its JSON itself; exits non-zero if
# the batched verdicts diverge bit-for-bit from the sequential reference.
multistream_bin="$build_dir/bench/bench_multistream"
if [[ -x "$multistream_bin" ]]; then
  multistream_args=(--json BENCH_multistream.json)
  if [[ $smoke -eq 1 ]]; then
    multistream_args+=(--reps 3)  # median-of-3 is enough for a smoke guard
  fi
  echo "== bench_multistream -> BENCH_multistream.json"
  "$multistream_bin" "${multistream_args[@]}"
  ran=$((ran + 1))
fi

# Switch-storm sweep: pipelined serving-path switching vs the stop-and-
# start ablation under staggered weather flips. Writes its JSON itself;
# exits non-zero if either batched arm's verdicts diverge bit-for-bit
# (lineage included) from the switch-free sequential oracle.
switch_bin="$build_dir/bench/bench_switch_storm"
if [[ -x "$switch_bin" ]]; then
  switch_args=(--json BENCH_switch.json)
  if [[ $smoke -eq 1 ]]; then
    switch_args+=(--frames 2400 --reps 2)  # ~80 simulated seconds per stream
  fi
  echo "== bench_switch_storm -> BENCH_switch.json"
  "$switch_bin" "${switch_args[@]}"
  ran=$((ran + 1))
fi

# Fleet sweep: K streams x S shards, no-kill vs one-kill-failover with a
# planned mid-journal shard kill. Writes its JSON itself; exits non-zero
# if any killed-and-failed-over fleet's merged decision sequences diverge
# from the uninterrupted run.
fleet_bin="$build_dir/bench/bench_fleet"
if [[ -x "$fleet_bin" ]]; then
  fleet_args=(--json BENCH_fleet.json)
  if [[ $smoke -eq 1 ]]; then
    # Ten simulated seconds, one rep, skip the 256-stream tail: a "does
    # failover still hold parity" guard, not a perf measurement.
    fleet_args+=(--frames 300 --reps 1 --max-streams 64)
  fi
  echo "== bench_fleet -> BENCH_fleet.json"
  "$fleet_bin" "${fleet_args[@]}"
  ran=$((ran + 1))
fi

# Partition-tolerance sweep: control-plane fault rate x failure detector
# (hard-threshold vs phi-accrual suspicion), partition-heal and one-kill
# arms. Writes its JSON itself; exits non-zero if any faulted arm's
# merged decision sequences diverge from the perfect-network run or the
# epoch audit finds a decision journaled under a stale ownership epoch.
partition_bin="$build_dir/bench/bench_partition"
if [[ -x "$partition_bin" ]]; then
  partition_args=(--json BENCH_partition.json)
  if [[ $smoke -eq 1 ]]; then
    # Half a simulated minute, one reference rep: a "do both detectors
    # still hold parity and fencing" guard, not a perf measurement.
    partition_args+=(--frames 900 --reps 1)
  fi
  echo "== bench_partition -> BENCH_partition.json"
  "$partition_bin" "${partition_args[@]}"
  ran=$((ran + 1))
fi

# Durability sweep: snapshot interval x journal fsync policy, steady-state
# overhead vs recovery time. Writes its JSON itself; exits non-zero if a
# killed-and-recovered run diverges from the uninterrupted baseline.
recovery_bin="$build_dir/bench/bench_recovery"
if [[ -x "$recovery_bin" ]]; then
  recovery_args=(--json BENCH_recovery.json)
  if [[ $smoke -eq 1 ]]; then
    recovery_args+=(--frames 1800 --reps 1)  # one simulated minute per arm
  fi
  echo "== bench_recovery -> BENCH_recovery.json"
  "$recovery_bin" "${recovery_args[@]}"
  ran=$((ran + 1))
fi

echo "wrote $ran JSON result file(s)"
