// Extension beyond the paper (§VI-B "simultaneous warning in four
// directions"): guard BOTH left-turn approaches of the east-west road
// with per-approach models cut from the same camera feed. Each side's
// waiters are the other side's blockers, so one roadside unit doubles its
// protected turns.

#include "bench_common.h"

#include "models/slowfast.h"
#include "sim/camera.h"

using namespace safecross;

namespace {

std::vector<dataset::VideoSegment> collect(sim::Approach approach, std::size_t target,
                                           std::uint64_t seed) {
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), seed);
  const sim::CameraModel cam(sim.intersection().geometry());
  dataset::CollectorConfig cfg;
  cfg.approach = approach;
  dataset::SegmentCollector collector(sim, cam, cfg, seed ^ 0xA99);
  while (collector.segments().size() < target && sim.time() < 24.0 * 3600.0) collector.step();
  return collector.take_segments();
}

}  // namespace

int main() {
  bench::quiet_logs();
  bench::print_header("Extension: two-direction blind-area warnings (daytime)");

  std::printf("  %-16s %10s %10s %9s %9s %12s\n", "approach", "segments", "turns/h", "Top1",
              "MeanCls", "blind-share");
  for (const auto approach : {sim::Approach::EastboundLeft, sim::Approach::WestboundLeft}) {
    const auto segments = collect(approach, bench::scaled(260), 881);
    const auto holdout = collect(approach, 80, 991);
    if (segments.size() < 40 || holdout.size() < 20) {
      std::printf("  %-16s insufficient data (%zu/%zu)\n", sim::approach_name(approach),
                  segments.size(), holdout.size());
      continue;
    }

    models::SlowFast model{models::SlowFastConfig{}};
    fewshot::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 77;
    std::vector<const dataset::VideoSegment*> train;
    for (const auto& s : segments) train.push_back(&s);
    fewshot::train_classifier(model, train, cfg);
    std::vector<const dataset::VideoSegment*> test;
    for (const auto& s : holdout) test.push_back(&s);
    const auto eval = fewshot::evaluate(model, test);

    std::size_t turned = 0, blind = 0;
    double span_h = segments.back().sim_time / 3600.0;
    for (const auto& s : segments) {
      turned += s.turned ? 1 : 0;
      blind += s.blind_area ? 1 : 0;
    }
    std::printf("  %-16s %10zu %10.0f %9.4f %9.4f %11.1f%%\n", sim::approach_name(approach),
                segments.size(), static_cast<double>(turned) / span_h, eval.top1(),
                eval.mean_class(), 100.0 * static_cast<double>(blind) / segments.size());
  }

  std::printf("\n  shape check: the westbound approach — whose blockers are the (mostly car)\n"
              "  eastbound turners — reaches comparable accuracy from the same feed: the\n"
              "  framework generalizes across directions with no new infrastructure.\n");
  return 0;
}
