// Table II + Fig. 8 — detection methods comparison.
//
// Reconstructs the paper's probe scenario: a subject waits to turn left,
// a big vehicle blocks its view, and a through vehicle approaches inside
// the blind area. Each candidate detection method (background
// subtraction, sparse optical flow, dense optical flow, YOLO-style CNN)
// is run on the same camera frame; we report per-frame execution time and
// whether the method found the vehicle in the danger zone.
//
// The YOLO-lite detector is trained on frames from a *different* seed's
// traffic (the paper retrained YOLOv3's weights and still failed on the
// far, skewed, low-quality view).

#include <array>
#include <deque>
#include <optional>

#include "bench_common.h"
#include "common/timer.h"
#include "models/yolo_lite.h"
#include "nn/optimizer.h"
#include "vision/background_subtraction.h"
#include "vision/blobs.h"
#include "vision/optical_flow.h"

using namespace safecross;

namespace {

struct Scenario {
  vision::Image prev;
  vision::Image frame;
  std::vector<vision::Image> warmup;  // frames preceding `prev` (bg model)
  float threat_min_x, threat_min_y, threat_max_x, threat_max_y;  // image bbox
};

// Image-space bounding box of a vehicle.
std::array<float, 4> image_bbox(const sim::CameraModel& cam, const sim::TrafficSimulator& sim,
                                const sim::Vehicle& v) {
  const auto quad = cam.vehicle_quad_image(sim, v);
  float min_x = 1e9f, min_y = 1e9f, max_x = -1e9f, max_y = -1e9f;
  for (const auto& p : quad) {
    min_x = std::min(min_x, static_cast<float>(p.x));
    min_y = std::min(min_y, static_cast<float>(p.y));
    max_x = std::max(max_x, static_cast<float>(p.x));
    max_y = std::max(max_y, static_cast<float>(p.y));
  }
  return {min_x, min_y, max_x, max_y};
}

// Find the paper's probe frame: blind area present, threat inside the
// danger zone, far from the camera.
std::optional<Scenario> find_scenario(std::uint64_t seed) {
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), seed);
  // Probe at higher resolution than the dataset path: the paper's feed is
  // 1376x776; at 256x144 the far threat is 2 px tall and every method
  // fails trivially.
  sim::CameraConfig cc;
  cc.width = 512;
  cc.height = 288;
  const sim::CameraModel cam(sim.intersection().geometry(), cc);
  Rng render_rng(seed ^ 0xF00D);
  std::deque<vision::Image> history;
  for (int i = 0; i < 30 * 1200; ++i) {
    sim.step();
    history.push_back(cam.render(sim, render_rng));
    if (history.size() > 42) history.pop_front();
    if (history.size() < 42) continue;
    if (!sim.blind_area_present() || !sim.dangerous_to_turn()) continue;
    if (sim.subject() == nullptr) continue;
    // Locate the threat: the nearest oncoming through vehicle still
    // upstream of the conflict point, deep in the scene.
    const sim::Vehicle* threat = nullptr;
    for (const auto& v : sim.vehicles()) {
      if (v.route != sim::RouteId::WestboundThrough) continue;
      const double x = sim.position(v).x;
      if (x < sim.conflict_x() + 18.0 || x > 112.0) continue;
      if (v.speed < 6.0) continue;
      if (threat == nullptr || x < sim.position(*threat).x) threat = &v;
    }
    if (threat == nullptr) continue;
    Scenario sc;
    sc.frame = history.back();
    sc.prev = history[history.size() - 2];
    sc.warmup.assign(history.begin(), history.end() - 2);
    const auto bb = image_bbox(cam, sim, *threat);
    sc.threat_min_x = bb[0] - 2;
    sc.threat_min_y = bb[1] - 2;
    sc.threat_max_x = bb[2] + 2;
    sc.threat_max_y = bb[3] + 2;
    return sc;
  }
  return std::nullopt;
}

bool bbox_hit(const Scenario& sc, float x, float y) {
  return x >= sc.threat_min_x && x <= sc.threat_max_x && y >= sc.threat_min_y &&
         y <= sc.threat_max_y;
}

models::YoloLite train_yolo(std::uint64_t seed) {
  models::YoloLiteConfig cfg;
  cfg.base_channels = 16;
  models::YoloLite model(cfg);
  models::YoloLoss loss(cfg);
  nn::Adam opt(model.params(), 0.004f);

  // Train at the canonical 256x144 resolution (cheap); the detector is
  // fully convolutional and is probed at the scenario's 512x288.
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), seed);
  const sim::CameraModel cam(sim.intersection().geometry());
  Rng rng(seed ^ 0xCAFE);

  // Collect training frames + ground-truth boxes.
  std::vector<nn::Tensor> frames;
  std::vector<std::vector<models::YoloBox>> boxes;
  const std::size_t target = bench::scaled(60);
  while (frames.size() < target) {
    for (int i = 0; i < 12; ++i) sim.step();
    const vision::Image img = cam.render(sim, rng);
    std::vector<models::YoloBox> gt;
    for (const auto& v : sim.vehicles()) {
      const auto bb = image_bbox(cam, sim, v);
      const float w = bb[2] - bb[0];
      const float h = bb[3] - bb[1];
      if (w < 2.0f || h < 2.0f) continue;
      if (bb[0] < 0 || bb[1] < 0 || bb[2] >= img.width() || bb[3] >= img.height()) continue;
      gt.push_back({(bb[0] + bb[2]) / 2, (bb[1] + bb[3]) / 2, w, h, 1.0f});
    }
    if (gt.empty()) continue;
    nn::Tensor t({1, 1, cfg.in_height, cfg.in_width});
    std::copy(img.data(), img.data() + img.size(), t.data());
    frames.push_back(std::move(t));
    boxes.push_back(std::move(gt));
  }

  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      for (nn::Param* p : model.params()) p->zero_grad();
      const nn::Tensor pred = model.forward(frames[i], true);
      loss.forward(pred, {boxes[i]});
      model.backward(loss.grad());
      opt.step();
    }
  }
  return model;
}

}  // namespace

int main() {
  bench::quiet_logs();
  bench::print_header("Table II: execution time of various detection methods");

  const auto scenario = find_scenario(4242);
  if (!scenario) {
    std::printf("  ERROR: no probe scenario found\n");
    return 1;
  }
  const Scenario& sc = *scenario;

  struct Row {
    const char* name;
    double ms;
    bool detected;
    double paper_ms;
    bool paper_detected;
  };
  std::vector<Row> rows;

  // --- Background subtraction (the paper's pick) ---
  {
    vision::RunningAverageBackground bg;
    for (const auto& f : sc.warmup) bg.apply(f);
    bg.apply(sc.prev);
    // Time the steady-state per-frame cost (identical model state each
    // rep; copies made outside the timed region).
    const int reps = 40;
    std::vector<vision::RunningAverageBackground> warm(reps, bg);
    vision::Image mask;
    Timer t;
    for (int i = 0; i < reps; ++i) mask = warm[static_cast<std::size_t>(i)].apply(sc.frame);
    const double ms = t.elapsed_ms() / reps;
    bool detected = false;
    for (const auto& b : vision::find_blobs(mask, 3)) {
      if (bbox_hit(sc, b.centroid_x, b.centroid_y)) detected = true;
    }
    rows.push_back({"Background subtraction", ms, detected, 0.74, true});

    std::printf("\n  Fig. 8e equivalent — BGS foreground mask (threat bbox x:[%.0f,%.0f] y:[%.0f,%.0f]):\n",
                sc.threat_min_x, sc.threat_max_x, sc.threat_min_y, sc.threat_max_y);
    std::printf("%s\n", mask.to_ascii(96).c_str());
  }

  // --- Sparse optical flow ---
  {
    std::vector<vision::FlowVector> flows;
    Timer t;
    const int reps = 10;
    for (int i = 0; i < reps; ++i) flows = vision::sparse_optical_flow(sc.prev, sc.frame);
    const double ms = t.elapsed_ms() / reps;
    // Measured jitter floor: noise/texture corners show apparent flows up
    // to ~1.3 px on this feed, so anything below 1.5 px is
    // indistinguishable from noise — the paper's sparse-flow failure mode.
    bool detected = false;
    for (const auto& f : flows) {
      if (f.magnitude() > 1.5f && bbox_hit(sc, f.x, f.y)) detected = true;
    }
    rows.push_back({"Sparse optical flow", ms, detected, 6.43, false});
  }

  // --- Dense optical flow ---
  {
    vision::DenseFlowField flow;
    Timer t;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) flow = vision::dense_optical_flow(sc.prev, sc.frame);
    const double ms = t.elapsed_ms() / reps;
    // Horn-Schunck noise floor on this feed is ~0.001 px mean; 0.08 px is
    // far above it while coherent vehicle motion reaches ~0.1-0.3 px.
    const vision::Image mask = flow.magnitude_mask(0.08f);
    bool detected = false;
    for (const auto& b : vision::find_blobs(mask, 3)) {
      if (bbox_hit(sc, b.centroid_x, b.centroid_y)) detected = true;
    }
    rows.push_back({"Dense optical flow", ms, detected, 224.20, true});
  }

  // --- YOLO-lite ---
  {
    models::YoloLite yolo = train_yolo(777);
    std::vector<models::YoloBox> dets;
    Timer t;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) dets = yolo.detect(sc.frame, 0.4f);
    const double ms = t.elapsed_ms() / reps;
    bool detected = false;
    for (const auto& d : dets) {
      if (bbox_hit(sc, d.cx, d.cy)) detected = true;
    }
    rows.push_back({"YOLO-lite (YOLOv3 stand-in)", ms, detected, 256.40, false});
  }

  std::printf("  %-30s %12s %10s %14s %10s\n", "method", "ours ms", "detected", "paper ms",
              "paper-det");
  for (const auto& r : rows) {
    std::printf("  %-30s %12.2f %10s %14.2f %10s\n", r.name, r.ms, r.detected ? "Yes" : "No",
                r.paper_ms, r.paper_detected ? "Yes" : "No");
  }
  std::printf("\n  shape check: BGS is fastest and detects; dense flow detects at ~2 orders\n"
              "  of magnitude higher cost; sparse flow and the CNN detector miss the far,\n"
              "  low-contrast threat.\n");
  return 0;
}
