// Table III — accuracy of the per-scene video classification models.
//
// Train the SlowFast basic model on daytime data (from scratch), then
// derive the snow and rain models by few-shot transfer from the basic
// model (the paper's FL module). Report Top-1 and mean-class accuracy per
// scene. Rain keeps the paper's 34-segment pool — its low accuracy IS the
// finding; evaluation uses a held-out pool from a fresh seed so the tiny
// test split doesn't quantize the numbers.

#include "bench_common.h"

#include "common/timer.h"
#include "fewshot/maml.h"
#include "models/slowfast.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Table III: accuracy of different scenes video classification");

  Timer wall;

  // Daytime basic model.
  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 21);
  const auto day_split = dataset::split_811(day.segments.size(), 4242);
  const auto day_train = fewshot::select(day.segments, day_split.train);
  const auto day_test = fewshot::select(day.segments, day_split.test);

  models::SlowFast basic{models::SlowFastConfig{}};
  fewshot::TrainConfig basic_cfg;
  basic_cfg.epochs = 8;
  basic_cfg.seed = 31;
  fewshot::train_classifier(basic, day_train, basic_cfg);
  const auto day_eval = fewshot::evaluate(basic, day_test);

  // Few-shot adapted weather models (snow has more data than rain, as in
  // the paper: 855 vs 34 source segments).
  fewshot::TrainConfig fsl_cfg;
  fsl_cfg.epochs = 8;
  fsl_cfg.lr = 0.008f;
  fsl_cfg.seed = 32;

  const auto snow = bench::build(dataset::Weather::Snow,
                                 bench::default_segments(dataset::Weather::Snow), 22);
  auto snow_model = fewshot::fewshot_transfer(basic, bench::ptrs(snow.segments), fsl_cfg);
  const auto snow_holdout = bench::build(dataset::Weather::Snow, 80, 122);
  const auto snow_eval = fewshot::evaluate(*snow_model, bench::ptrs(snow_holdout.segments));

  const auto rain = bench::build(dataset::Weather::Rain, 34, 23);
  auto rain_model = fewshot::fewshot_transfer(basic, bench::ptrs(rain.segments), fsl_cfg);
  const auto rain_holdout = bench::build(dataset::Weather::Rain, 80, 123);
  const auto rain_eval = fewshot::evaluate(*rain_model, bench::ptrs(rain_holdout.segments));

  std::printf("  %-10s %12s %12s %14s %14s\n", "type", "Top1 (ours)", "Top1 (paper)",
              "MeanCls (ours)", "MeanCls (paper)");
  std::printf("  %-10s %12.4f %12.4f %14.4f %14.4f\n", "daytime", day_eval.top1(), 0.9630,
              day_eval.mean_class(), 0.9667);
  std::printf("  %-10s %12.4f %12.4f %14.4f %14.4f\n", "snow", snow_eval.top1(), 0.9416,
              snow_eval.mean_class(), 0.9510);
  std::printf("  %-10s %12.4f %12.4f %14.4f %14.4f\n", "rain", rain_eval.top1(), 0.8518,
              rain_eval.mean_class(), 0.8636);
  std::printf("\n  shape check: daytime >= snow > rain (data volume + weather noise order).\n");
  std::printf("  total wall time %.1fs (train sets: %zu day / %zu snow / %zu rain)\n",
              wall.elapsed_ms() / 1000.0, day_train.size(), snow.segments.size(),
              rain.segments.size());
  return 0;
}
