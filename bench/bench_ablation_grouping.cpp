// Ablation: PipeSwitch layer-grouping policy (paper §III-E-3).
//
// Per-layer upload maximizes overlap but pays a DMA-setup + sync cost per
// group; whole-model upload has zero overlap. The pruned/optimal search
// should beat both and every fixed group size.

#include "bench_common.h"

#include "switching/grouping.h"

using namespace safecross;
using namespace safecross::switching;

int main() {
  bench::quiet_logs();
  bench::print_header("Ablation: PipeSwitch grouping policies (switching delay, ms)");

  const GpuModelConfig gpu;
  const ModelProfile profiles[] = {slowfast_r50_profile(), resnet152_profile(),
                                   inception_v3_profile()};

  std::printf("  %-20s %10s %10s %9s %9s %9s %11s %7s\n", "model", "per-layer", "whole",
              "fixed-4", "fixed-16", "fixed-64", "optimal", "groups");
  for (const ModelProfile& p : profiles) {
    const double compute = p.total_compute_ms();
    const auto delay = [&](const std::vector<int>& g) {
      return pipelined_makespan(p, g, gpu) - compute;
    };
    const auto opt = optimal_grouping(p, gpu);
    std::printf("  %-20s %10.2f %10.2f %9.2f %9.2f %9.2f %11.2f %7zu\n", p.name.c_str(),
                delay(per_layer_grouping(p)), delay(whole_model_grouping(p)),
                delay(fixed_grouping(p, 4)), delay(fixed_grouping(p, 16)),
                delay(fixed_grouping(p, 64)), delay(opt), opt.size());
  }

  bench::print_header("Sensitivity: optimal grouping vs DMA setup cost (ResNet152)");
  const ModelProfile rn = resnet152_profile();
  std::printf("  %-18s %12s %9s\n", "setup ms/group", "delay ms", "groups");
  for (const double setup : {0.005, 0.02, 0.1, 0.5, 2.0}) {
    GpuModelConfig g = gpu;
    g.transfer_setup_ms = setup;
    const auto opt = optimal_grouping(rn, g);
    std::printf("  %-18.3f %12.2f %9zu\n", setup,
                pipelined_makespan(rn, opt, g) - rn.total_compute_ms(), opt.size());
  }
  std::printf("\n  shape check: optimal <= every baseline; group count shrinks as per-group\n"
              "  overhead grows (the paper's motivation for model-aware grouping).\n");
  return 0;
}
