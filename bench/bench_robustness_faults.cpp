// Robustness sweep — the fault-injection harness applied to the live
// warning pipeline. For each fault rate the same seeded fault sequence is
// replayed against two policy arms:
//   * baseline  — fail-silent (the pre-robustness monitor): a gapped or
//     corrupted window is classified like any other, or silently skipped;
//   * fail-safe — the graceful-degradation runtime: untrustworthy windows
//     produce a conservative warn tagged with a DecisionSource code.
// Reports availability, missed-threat rate and false-warning rate per arm
// and writes the sweep as JSON (default BENCH_robustness.json).
//
// Usage: bench_robustness_faults [--frames N] [--json PATH]

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

using namespace safecross;
using namespace safecross::core;

namespace {

struct RunResult {
  std::string policy;
  double fault_rate = 0.0;
  std::size_t frames = 0;
  std::size_t decisions = 0;
  std::size_t opportunities = 0;
  std::size_t model_decisions = 0;
  std::size_t fail_safe = 0;
  std::size_t warnings = 0;
  std::size_t missed_threats = 0;
  std::size_t false_warnings = 0;
  std::size_t frames_dropped = 0;
  std::size_t switch_failures = 0;
  int uncaught_exceptions = 0;

  double availability() const {
    return opportunities == 0 ? 1.0
                              : static_cast<double>(decisions) / static_cast<double>(opportunities);
  }
  double model_availability() const {
    return opportunities == 0
               ? 1.0
               : static_cast<double>(model_decisions) / static_cast<double>(opportunities);
  }
  double missed_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(missed_threats) / static_cast<double>(decisions);
  }
  double false_warning_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(false_warnings) / static_cast<double>(decisions);
  }
};

runtime::FaultPlan plan_for_rate(double rate) {
  runtime::FaultPlan plan;
  plan.drop_prob = rate;
  plan.freeze_prob = rate / 2.0;
  plan.noise_prob = rate / 2.0;
  plan.blackout_prob = rate / 100.0;  // rare but long: 45 blind frames
  plan.blackout_frames = 45;
  return plan;
}

RunResult run_arm(SafeCross& sc, bool fail_safe_policy, double fault_rate,
                  const runtime::FaultPlan& plan, int frames, std::uint64_t sim_seed) {
  RunResult r;
  r.policy = fail_safe_policy ? "fail-safe" : "baseline";
  r.fault_rate = fault_rate;
  r.frames = static_cast<std::size_t>(frames);
  try {
    sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), sim_seed);
    const sim::CameraModel cam(sim.intersection().geometry());
    // Same injector seed in both arms: the fault sequence is replayed
    // bit-for-bit, so any scorecard difference is the policy's doing.
    runtime::FaultInjector injector(plan, /*seed=*/0xFA17u);
    MonitorConfig cfg;
    cfg.fail_safe_policy = fail_safe_policy;
    RealtimeMonitor monitor(sc, sim, cam, cfg, /*seed=*/sim_seed + 1,
                            plan.enabled() ? &injector : nullptr);
    for (int i = 0; i < frames; ++i) monitor.step();
    r.decisions = monitor.decisions();
    r.opportunities = monitor.decision_opportunities();
    r.model_decisions = monitor.model_decisions();
    r.fail_safe = monitor.fail_safe_decisions();
    r.warnings = monitor.warnings();
    r.missed_threats = monitor.missed_threats();
    r.false_warnings = monitor.false_warnings();
    r.frames_dropped = injector.frames_dropped();
    r.switch_failures = injector.switch_failures();
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s, rate %.2f): %s\n", r.policy.c_str(), fault_rate,
                e.what());
  }
  return r;
}

void print_result(const RunResult& r) {
  std::printf("  %5.2f  %-9s %10zu %7.3f %7.3f %11zu %9.4f %9.4f %6d\n", r.fault_rate,
              r.policy.c_str(), r.decisions, r.availability(), r.model_availability(), r.fail_safe,
              r.missed_rate(), r.false_warning_rate(), r.uncaught_exceptions);
}

void json_result(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"fault_rate\": %.4f, \"policy\": \"%s\", \"frames\": %zu, "
               "\"decisions\": %zu, \"opportunities\": %zu, \"model_decisions\": %zu, "
               "\"fail_safe_decisions\": %zu, \"warnings\": %zu, \"missed_threats\": %zu, "
               "\"false_warnings\": %zu, \"availability\": %.6f, \"model_availability\": %.6f, "
               "\"missed_threat_rate\": %.6f, \"false_warning_rate\": %.6f, "
               "\"frames_dropped\": %zu, \"switch_failures\": %zu, \"uncaught_exceptions\": %d}%s\n",
               r.fault_rate, r.policy.c_str(), r.frames, r.decisions, r.opportunities,
               r.model_decisions, r.fail_safe, r.warnings, r.missed_threats, r.false_warnings,
               r.availability(), r.model_availability(), r.missed_rate(), r.false_warning_rate(),
               r.frames_dropped, r.switch_failures, r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  int frames = 30 * 180;  // three simulated minutes per arm
  std::string json_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Robustness: training the daytime model");
  dataset::BuildRequest req;
  req.target_segments = bench::scaled(60);
  req.max_sim_hours = 4.0;
  req.seed = 2022;
  const auto day = dataset::build_dataset(req);
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 3;
  SafeCross sc(cfg);
  sc.train_basic(bench::ptrs(day.segments));
  std::printf("  trained on %zu daytime segments, %d frames per monitor arm\n",
              day.segments.size(), frames);

  bench::print_header("Fault-rate sweep: fail-silent baseline vs fail-safe policy");
  std::printf("  %5s  %-9s %10s %7s %7s %11s %9s %9s %6s\n", "rate", "policy", "decisions",
              "avail", "mavail", "fail-safe", "missed", "false-w", "exc");
  const double rates[] = {0.0, 0.05, 0.10, 0.20};
  std::vector<RunResult> results;
  for (const double rate : rates) {
    const auto plan = plan_for_rate(rate);
    const auto baseline = run_arm(sc, /*fail_safe_policy=*/false, rate, plan, frames, 4242);
    const auto failsafe = run_arm(sc, /*fail_safe_policy=*/true, rate, plan, frames, 4242);
    print_result(baseline);
    print_result(failsafe);
    results.push_back(baseline);
    results.push_back(failsafe);
  }

  bench::print_header("Model-switch failure: 10% drops + every swap attempt dies");
  auto hard_plan = plan_for_rate(0.10);
  hard_plan.switch_failure_prob = 1.0;
  const auto switch_run =
      run_arm(sc, /*fail_safe_policy=*/true, 0.10, hard_plan, frames, 4242);
  print_result(switch_run);
  results.push_back(switch_run);
  std::printf("  every decision above ran fail-safe: the intersection kept its warning\n"
              "  service (availability %.3f) with zero uncaught exceptions.\n",
              switch_run.availability());

  int total_exceptions = 0;
  std::size_t shrunk = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    total_exceptions += results[i].uncaught_exceptions + results[i + 1].uncaught_exceptions;
    if (results[i + 1].missed_rate() <= results[i].missed_rate() + 1e-9) ++shrunk;
  }
  total_exceptions += switch_run.uncaught_exceptions;
  std::printf("\n  verdict: %d uncaught exceptions across all arms; fail-safe missed-threat\n"
              "  rate <= baseline in %zu/%zu sweep points.\n",
              total_exceptions, shrunk, results.size() / 2);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"robustness_faults\",\n  \"frames_per_run\": %d,\n", frames);
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n  \"runs\": [\n", total_exceptions);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_result(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return total_exceptions == 0 ? 0 : 1;
}
