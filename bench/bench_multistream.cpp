// Multi-stream serving sweep — aggregate throughput of the batched
// StreamServer vs serving the same cameras without it.
//
// For each K in {1,2,4,8} the same K-camera workload is run three ways:
//   * oracle    — StreamServer::run_sequential(): the single-threaded
//     parity reference (no queues, no threads). Not a deployment mode;
//     it defines the correct verdicts.
//   * solo x K  — K single-stream StreamServer instances run back to
//     back: the "1 stream x K sequential" baseline, i.e. one serving
//     process per camera with no cross-stream batching.
//   * batched   — one StreamServer::run() over all K streams: producer
//     threads feed the deadline-aware micro-batcher, which groups ready
//     windows by weather model and scatters verdicts back per stream.
// Batched and solo verdicts must agree bit-for-bit with the oracle —
// any divergence is a hard failure (nonzero exit), because the parity
// contract is what makes the throughput numbers comparable at all.
//
// Reports wall time, aggregate frames/sec, windows, decisions, batch
// shape stats and engine switches per arm; writes the sweep as JSON
// (default BENCH_multistream.json).
//
// Usage: bench_multistream [--frames N] [--reps R] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serving/stream_server.h"

using namespace safecross;
using namespace safecross::serving;

namespace {

struct RunResult {
  std::string mode;
  std::size_t streams = 0;
  std::size_t frames_total = 0;
  std::size_t windows = 0;
  std::size_t decisions = 0;
  std::size_t model_decisions = 0;
  std::size_t batches = 0;
  double avg_batch = 0.0;
  std::size_t engine_switches = 0;
  std::size_t shed = 0;
  double wall_ms = 0.0;
  int uncaught_exceptions = 0;

  double fps() const { return wall_ms <= 0.0 ? 0.0 : 1000.0 * frames_total / wall_ms; }
};

core::SafeCrossConfig tiny_config() {
  core::SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

StreamServerConfig config_for(std::size_t streams, std::size_t frames) {
  StreamServerConfig cfg;
  cfg.frames = frames;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;  // parity runs must lose nothing
  for (std::size_t i = 0; i < streams; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = dataset::Weather::Daytime;
    s.sim_seed = 9000 + 10 * i;
    s.collector_seed = 9001 + 10 * i;
    cfg.streams.push_back(std::move(s));
  }
  return cfg;
}

void absorb(RunResult& r, const StreamServer& server) {
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    r.frames_total += server.stream(i).frames_run();
    r.windows += server.stream(i).windows_produced();
    r.model_decisions += server.stream(i).scorecard().model_decisions();
  }
  r.decisions += server.total_decisions();
  r.batches += server.batch_log().size();
  r.engine_switches += server.engine_switches();
  r.shed += server.windows_shed_total();
}

/// One arm: `mode` selects oracle (run_sequential on the whole config),
/// solo (a fresh single-stream server per camera, run back to back), or
/// batched (one threaded server over all K streams). Each arm runs
/// `reps` times (a server instance runs once, so every rep builds fresh
/// servers) and reports the MEDIAN wall time — single runs on a busy
/// box are too noisy to compare arms. `keep` receives the final rep's
/// servers so the caller can parity-check their traces; determinism
/// makes every rep's verdicts identical, so checking one rep checks all.
RunResult measure(core::SafeCross& sc, const StreamServerConfig& cfg, const std::string& mode,
                  std::size_t reps, std::vector<std::unique_ptr<StreamServer>>& keep) {
  RunResult r;
  r.mode = mode;
  r.streams = cfg.streams.size();
  std::vector<double> walls;
  try {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      keep.clear();
      const auto t0 = std::chrono::steady_clock::now();
      if (mode == "solo") {
        for (const StreamConfig& stream : cfg.streams) {
          StreamServerConfig solo = cfg;
          solo.streams.assign(1, stream);
          keep.push_back(std::make_unique<StreamServer>(sc, solo));
          keep.back()->run();
        }
      } else {
        keep.push_back(std::make_unique<StreamServer>(sc, cfg));
        if (mode == "batched") {
          keep.back()->run();
        } else {
          keep.back()->run_sequential();
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      walls.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(walls.begin(), walls.end());
    r.wall_ms = walls[walls.size() / 2];
    std::size_t windows_batched = 0;
    for (const auto& server : keep) {
      absorb(r, *server);
      windows_batched += server->windows_batched();
    }
    r.avg_batch = r.batches == 0 ? 0.0 : static_cast<double>(windows_batched) / r.batches;
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s, %zu streams): %s\n", mode.c_str(),
                cfg.streams.size(), e.what());
  }
  return r;
}

/// Bitwise parity of stream i of server a against stream j of server b.
bool streams_agree(const StreamServer& a, std::size_t i, const StreamServer& b, std::size_t j) {
  {
    const auto& at = a.stream(i).trace();
    const auto& bt = b.stream(j).trace();
    if (at.size() != bt.size()) return false;
    for (std::size_t s = 0; s < at.size(); ++s) {
      if (at[s].frame != bt[s].frame || at[s].predicted_class != bt[s].predicted_class ||
          at[s].prob_danger != bt[s].prob_danger || at[s].warn != bt[s].warn ||
          at[s].source != bt[s].source) {
        return false;
      }
    }
  }
  const auto& as = a.stream(i).scorecard();
  const auto& bs = b.stream(j).scorecard();
  return as.decisions() == bs.decisions() && as.warnings() == bs.warnings() &&
         as.missed_threats() == bs.missed_threats() &&
         as.false_warnings() == bs.false_warnings() &&
         as.fail_safe_decisions() == bs.fail_safe_decisions();
}

/// Every stream of `arm` (one K-stream server, or K solo servers in
/// stream order) must match the oracle bit-for-bit.
bool arm_matches_oracle(const std::vector<std::unique_ptr<StreamServer>>& arm,
                        const StreamServer& oracle) {
  std::size_t next = 0;
  for (const auto& server : arm) {
    for (std::size_t i = 0; i < server->stream_count(); ++i, ++next) {
      if (next >= oracle.stream_count() || !streams_agree(*server, i, oracle, next)) return false;
    }
  }
  return next == oracle.stream_count();
}

void print_result(const RunResult& r) {
  std::printf("  %-10s %4zu %9zu %8zu %7zu %7zu %6.2f %5zu %5zu %9.1f %9.1f %4d\n",
              r.mode.c_str(), r.streams, r.frames_total, r.windows, r.decisions, r.batches,
              r.avg_batch, r.engine_switches, r.shed, r.wall_ms, r.fps(),
              r.uncaught_exceptions);
}

void json_result(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"mode\": \"%s\", \"streams\": %zu, \"frames_total\": %zu, "
               "\"windows\": %zu, \"decisions\": %zu, \"model_decisions\": %zu, "
               "\"batches\": %zu, \"avg_batch\": %.3f, \"engine_switches\": %zu, "
               "\"windows_shed\": %zu, \"wall_ms\": %.2f, \"fps_aggregate\": %.2f, "
               "\"uncaught_exceptions\": %d}%s\n",
               r.mode.c_str(), r.streams, r.frames_total, r.windows, r.decisions,
               r.model_decisions, r.batches, r.avg_batch, r.engine_switches, r.shed, r.wall_ms,
               r.fps(), r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 30 * 30;  // half a simulated minute per stream
  std::size_t reps = 5;          // median-of-N wall time per arm
  std::string json_path = "BENCH_multistream.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--reps R] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Multi-stream serving: batched server vs sequential reference");
  // Untrained but deterministically initialised model: the bench measures
  // serving throughput and parity, not verdict quality.
  auto sc = std::make_unique<core::SafeCross>(tiny_config());
  sc->set_model(dataset::Weather::Daytime,
                std::make_unique<models::SlowFast>(tiny_config().model));
  std::printf("  %zu frames per stream, median of %zu reps, shared daytime engine\n", frames,
              reps);
  std::printf("  %-10s %4s %9s %8s %7s %7s %6s %5s %5s %9s %9s %4s\n", "mode", "K", "frames",
              "windows", "decis", "batch", "avgB", "swch", "shed", "wall-ms", "fps", "exc");

  std::vector<RunResult> results;
  bool parity_ok = true;
  double solo8_fps = 0.0, bat8_fps = 0.0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const StreamServerConfig cfg = config_for(k, frames);
    std::vector<std::unique_ptr<StreamServer>> oracle, solo, batched;
    results.push_back(measure(*sc, cfg, "oracle", reps, oracle));
    print_result(results.back());
    results.push_back(measure(*sc, cfg, "solo", reps, solo));
    print_result(results.back());
    const RunResult& solo_r = results.back();
    results.push_back(measure(*sc, cfg, "batched", reps, batched));
    print_result(results.back());
    const RunResult& bat_r = results.back();

    for (const auto* arm : {&solo, &batched}) {
      if (!arm_matches_oracle(*arm, *oracle.front())) {
        parity_ok = false;
        std::printf("  !! PARITY FAILURE at %zu streams (%s): verdicts diverge from the\n"
                    "     sequential oracle — the throughput numbers are meaningless.\n",
                    k, arm == &solo ? "solo" : "batched");
      }
    }
    if (k == 8) {
      solo8_fps = solo_r.fps();
      bat8_fps = bat_r.fps();
    }
  }

  int total_exceptions = 0;
  for (const auto& r : results) total_exceptions += r.uncaught_exceptions;
  const double speedup8 = solo8_fps > 0.0 ? bat8_fps / solo8_fps : 0.0;
  std::printf("\n  verdict: parity %s; 8-stream batched aggregate %.1f fps vs %.1f fps\n"
              "  solo (1 stream x 8 back-to-back) — %.2fx.\n",
              parity_ok ? "holds bit-for-bit" : "FAILED", bat8_fps, solo8_fps, speedup8);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"multistream\",\n  \"frames_per_stream\": %zu,\n  \"reps\": %zu,\n",
               frames, reps);
  std::fprintf(f, "  \"parity_ok\": %s,\n", parity_ok ? "true" : "false");
  std::fprintf(f, "  \"speedup_8stream_vs_solo_sequential\": %.4f,\n", speedup8);
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n  \"runs\": [\n", total_exceptions);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_result(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return (parity_ok && total_exceptions == 0) ? 0 : 1;
}
