// Extension beyond the paper (§VI-B "increase the number of extreme
// scenes"): Night and Fog conditions through the full pipeline —
// weather-specific physics, rendering (headlights / fog veil), few-shot
// adaptation from the daytime basic model, detection from raw frames, and
// PipeSwitch swapping across all five per-scene models.

#include "bench_common.h"

#include "core/safecross.h"
#include "core/weather_detect.h"
#include "fewshot/maml.h"
#include "sim/camera.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Extension: Night & Fog scenes (beyond the paper's Table III)");

  // Basic model + four adapted weather models.
  core::SafeCrossConfig cfg;
  cfg.basic_train.epochs = 8;
  cfg.fsl_train.epochs = 8;
  core::SafeCross sc(cfg);

  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 501);
  sc.train_basic(bench::ptrs(day.segments));

  std::printf("  %-10s %12s %14s %10s %16s\n", "scene", "Top1", "MeanCls", "switch-ms",
              "detected-as");
  for (const auto w : {dataset::Weather::Daytime, dataset::Weather::Night, dataset::Weather::Fog}) {
    if (w != dataset::Weather::Daytime) {
      const auto pool = bench::build(w, bench::default_segments(w), 502 + static_cast<int>(w));
      sc.adapt_weather(w, bench::ptrs(pool.segments));
    }
    const double switch_ms = sc.on_scene_change(w);
    const auto holdout = bench::build(w, 80, 602 + static_cast<int>(w));
    const auto eval =
        fewshot::evaluate(sc.model_for(w), bench::ptrs(holdout.segments));

    // Does the frame-level detector identify the scene?
    sim::TrafficSimulator sim(sim::weather_params(w), 700 + static_cast<int>(w));
    const sim::CameraModel cam(sim.intersection().geometry());
    Rng rng(9);
    core::WeatherDetector detector;
    for (int i = 0; i < 20; ++i) {
      sim.step();
      detector.observe(cam.render(sim, rng));
    }
    std::printf("  %-10s %12.4f %14.4f %10.2f %16s\n", vision::weather_name(w), eval.top1(),
                eval.mean_class(), switch_ms,
                vision::weather_name(detector.estimate().weather));
  }

  std::printf("\n  shape check: night/fog models adapted from the daytime weights stay\n"
              "  well above chance despite headlight blooms / fog extinction; the\n"
              "  detector identifies all scenes; every switch stays in PipeSwitch's\n"
              "  millisecond regime.\n");
  return 0;
}
