#pragma once
// Shared helpers for the table-reproduction benches: scaled dataset
// generation, pretty table printing, and the paper's reference numbers.
//
// SAFECROSS_SCALE (env, default 1.0) scales training-set sizes: 1.0 is
// calibrated so the whole bench suite finishes in minutes on one core;
// larger values buy accuracy closer to saturation.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dataset/builder.h"
#include "fewshot/trainer.h"

namespace safecross::bench {

inline double env_scale() {
  const char* s = std::getenv("SAFECROSS_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const double v = static_cast<double>(base) * env_scale();
  return static_cast<std::size_t>(v < 4.0 ? 4.0 : v);
}

/// Default *scaled* training-set sizes. Rain stays at the paper's 34 —
/// its scarcity is the point of the FL experiments.
inline std::size_t default_segments(dataset::Weather w) {
  switch (w) {
    case dataset::Weather::Daytime: return scaled(420);
    case dataset::Weather::Rain: return 34;
    case dataset::Weather::Snow: return scaled(180);
    case dataset::Weather::Night: return scaled(120);  // extension scenes
    case dataset::Weather::Fog: return scaled(120);
  }
  return 0;
}

inline dataset::BuiltDataset build(dataset::Weather w, std::size_t segments, std::uint64_t seed) {
  dataset::BuildRequest req;
  req.weather = w;
  req.target_segments = segments;
  req.max_sim_hours = 24.0;
  req.seed = seed;
  return dataset::build_dataset(req);
}

inline std::vector<const dataset::VideoSegment*> ptrs(
    const std::vector<dataset::VideoSegment>& v) {
  std::vector<const dataset::VideoSegment*> out;
  out.reserve(v.size());
  for (const auto& s : v) out.push_back(&s);
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::string& label, double ours, double paper,
                      const char* unit = "") {
  std::printf("  %-38s ours %8.4f%s   paper %8.4f%s\n", label.c_str(), ours, unit, paper, unit);
}

inline void quiet_logs() { set_log_level(LogLevel::Warn); }

}  // namespace safecross::bench
