// Table IV — accuracy of different classification methods on the daytime
// dataset: SlowFast vs C3D (linear-SVM head, hinge loss) vs TSN.
//
// The expected shape: C3D and SlowFast close on Top-1, SlowFast best on
// mean-class accuracy, TSN clearly behind both (it discards temporal
// detail that the turn/no-turn label depends on).

#include "bench_common.h"

#include "common/timer.h"
#include "models/c3d.h"
#include "models/slowfast.h"
#include "models/tsn.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Table IV: accuracy of classification methods on the daytime dataset");

  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 41);
  const auto split = dataset::split_811(day.segments.size(), 99);
  const auto train = fewshot::select(day.segments, split.train);
  const auto test = fewshot::select(day.segments, split.test);

  struct Row {
    std::string name;
    double top1, mean_class, paper_top1, paper_mean, secs;
  };
  std::vector<Row> rows;

  {
    Timer t;
    models::SlowFast model{models::SlowFastConfig{}};
    fewshot::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 51;
    fewshot::train_classifier(model, train, cfg);
    const auto e = fewshot::evaluate(model, test);
    rows.push_back({"slowfast_r50_4x16 (scaled)", e.top1(), e.mean_class(), 0.9630, 0.9667,
                    t.elapsed_ms() / 1000.0});
  }
  {
    Timer t;
    models::C3D model{models::C3DConfig{}};
    fewshot::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 52;
    cfg.hinge_loss = true;  // C3D classifies with a linear SVM
    fewshot::train_classifier(model, train, cfg);
    const auto e = fewshot::evaluate(model, test, /*hinge_loss=*/true);
    rows.push_back({"c3d_sports1m_16x1 (scaled)", e.top1(), e.mean_class(), 0.9644, 0.9340,
                    t.elapsed_ms() / 1000.0});
  }
  {
    Timer t;
    models::TSN model{models::TSNConfig{}};
    fewshot::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 53;
    fewshot::train_classifier(model, train, cfg);
    const auto e = fewshot::evaluate(model, test);
    rows.push_back({"tsn_r50_1x1x3 (scaled)", e.top1(), e.mean_class(), 0.8855, 0.7538,
                    t.elapsed_ms() / 1000.0});
  }

  std::printf("  %-28s %11s %11s %13s %13s %8s\n", "model", "Top1", "paper", "MeanCls",
              "paper", "train-s");
  for (const auto& r : rows) {
    std::printf("  %-28s %11.4f %11.4f %13.4f %13.4f %8.1f\n", r.name.c_str(), r.top1,
                r.paper_top1, r.mean_class, r.paper_mean, r.secs);
  }
  std::printf("\n  shape check: slowfast & c3d comparable on Top-1; slowfast best MeanCls;\n"
              "  tsn worst on both (sparse frame sampling loses the approach motion).\n");
  return 0;
}
