// Fleet scale and failover sweep — K streams x S shards, with and
// without a mid-run shard kill.
//
// For every (streams, shards) point the same skewed workload (every
// third stream decides twice as often, priorities cycle) is run two
// ways:
//   * no-kill  — plain fleet run, median wall time over --reps: the
//     scale-out cost of the control plane itself (placement, heartbeat
//     watch loop, merged aggregation).
//   * one-kill — durability on, one planned MidJournalAppend kill
//     halfway through the busiest shard's journal appends. The
//     controller must detect the death by missed heartbeats, recover the
//     durable dir, and re-place the orphans; detection and recovery are
//     reported separately from the end-to-end wall time.
// Every killed-and-failed-over run's merged per-stream decision
// sequences must be bit-identical to the same-config no-kill run — any
// divergence is a hard failure (nonzero exit), because a failover that
// changes verdicts has no business being fast.
//
// Reports per-point wall times, failover detect/recover times, streams
// moved and recovery damage; writes the sweep as JSON (default
// BENCH_fleet.json).
//
// Usage: bench_fleet [--frames N] [--reps R] [--max-streams K] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/controller.h"

using namespace safecross;
using namespace safecross::fleet;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

ShardSpec tiny_spec() {
  ShardSpec spec;
  spec.engine.model.slow_channels = 4;
  spec.engine.model.fast_channels = 2;
  spec.weathers = {dataset::Weather::Daytime, dataset::Weather::Rain};
  return spec;
}

/// K streams with skewed traffic: every third stream runs a 2x decision
/// rate, weathers alternate, priorities cycle through the three tiers.
std::vector<serving::StreamConfig> make_streams(std::size_t k) {
  std::vector<serving::StreamConfig> streams;
  for (std::size_t i = 0; i < k; ++i) {
    serving::StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i % 2 == 0 ? dataset::Weather::Daytime : dataset::Weather::Rain;
    s.sim_seed = 95000 + 10 * i;
    s.collector_seed = 95001 + 10 * i;
    s.fault_seed = 95002 + 10 * i;
    s.decision_stride = i % 3 == 0 ? 4 : 8;
    s.priority = static_cast<core::StreamPriority>(i % 3);
    streams.push_back(std::move(s));
  }
  return streams;
}

FleetConfig fleet_config(std::size_t k, std::size_t shards, std::size_t frames) {
  FleetConfig cfg;
  cfg.streams = make_streams(k);
  cfg.shards = shards;
  cfg.shard = tiny_spec();
  cfg.serving.frames = frames;
  cfg.serving.queue_capacity = 4;
  cfg.serving.snapshot_every_decisions = 16;
  cfg.serving.heartbeat_interval_ms = 1.0;
  cfg.watch_interval_ms = 2.0;
  return cfg;
}

struct PointResult {
  std::size_t streams = 0;
  std::size_t shards = 0;
  std::size_t decisions = 0;
  double nokill_wall_ms = 0.0;
  double kill_wall_ms = 0.0;
  double detect_ms = 0.0;   // crash instant -> declared dead (missed beats)
  double recover_ms = 0.0;  // recover() + drain_streams() wall time
  std::size_t streams_moved = 0;
  std::size_t replayed_pending = 0;
  std::size_t kills_fired = 0;
  bool parity_ok = false;
  int uncaught_exceptions = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "bench_fleet_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

bool traces_agree(const FleetReport& got, const FleetReport& want) {
  if (got.streams.size() != want.streams.size()) return false;
  for (std::size_t i = 0; i < got.streams.size(); ++i) {
    const auto& gt = got.streams[i].trace;
    const auto& wt = want.streams[i].trace;
    if (gt.size() != wt.size()) return false;
    for (std::size_t s = 0; s < gt.size(); ++s) {
      if (gt[s].frame != wt[s].frame || gt[s].predicted_class != wt[s].predicted_class ||
          gt[s].prob_danger != wt[s].prob_danger || gt[s].warn != wt[s].warn ||
          gt[s].source != wt[s].source) {
        return false;
      }
    }
  }
  return true;
}

/// The launched-slot index (rank among stream-hosting shards, id order)
/// and reference decision count of the busiest shard — the only victim
/// guaranteed to reach a mid-journal kill ordinal.
std::pair<std::size_t, std::size_t> busiest_slot(const FleetController& ref,
                                                 std::size_t shards) {
  std::vector<std::size_t> decisions(shards, 0);
  std::vector<bool> hosts(shards, false);
  const auto& assignment = ref.placement();
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    hosts[assignment[i]] = true;
    decisions[assignment[i]] += ref.report().streams[i].decisions;
  }
  std::size_t slot = 0, best_slot = 0, best = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    if (!hosts[shard]) continue;
    if (decisions[shard] > best) {
      best = decisions[shard];
      best_slot = slot;
    }
    ++slot;
  }
  return {best_slot, best};
}

PointResult measure_point(std::size_t k, std::size_t s, std::size_t frames,
                          std::size_t reps) {
  PointResult r;
  r.streams = k;
  r.shards = s;
  // Built with += : GCC 12's -Wrestrict false-positives on operator+ chains.
  std::string tag = "k";
  tag += std::to_string(k);
  tag += "_s";
  tag += std::to_string(s);
  try {
    // No-kill arm: median wall over reps; the last run doubles as the
    // parity reference and the placement the kill plan is derived from.
    std::vector<double> walls;
    std::unique_ptr<FleetController> reference;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      reference = std::make_unique<FleetController>(fleet_config(k, s, frames));
      const auto t0 = Clock::now();
      reference->run();
      walls.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    }
    r.nokill_wall_ms = median(walls);
    r.decisions = reference->report().decisions_total;

    // One-kill arm: MidJournalAppend halfway through the busiest shard's
    // appends, then the end-to-end run including detection + failover.
    const auto [victim, victim_decisions] = busiest_slot(*reference, s);
    ScratchDir scratch(tag);
    FleetConfig cfg = fleet_config(k, s, frames);
    cfg.durability_root = scratch.path;
    cfg.fault.enabled = true;
    FleetController fleet(cfg);
    fleet.fault().set_plan({{.wave = 0,
                             .victim = victim,
                             .point = runtime::CrashPoint::MidJournalAppend,
                             .nth = std::max<std::size_t>(1, victim_decisions / 2)}});
    const auto t0 = Clock::now();
    fleet.run();
    r.kill_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    r.kills_fired = fleet.kills_fired();
    const FleetReport& report = fleet.report();
    for (const FailoverEvent& ev : report.failovers) {
      r.detect_ms = std::max(r.detect_ms, ev.detect_ms);
      r.recover_ms = std::max(r.recover_ms, ev.recover_ms);
      r.streams_moved += ev.streams_moved;
    }
    r.replayed_pending = static_cast<std::size_t>(report.damage.journal_pending);
    r.parity_ok = r.kills_fired == 1 && report.failovers.size() == 1 &&
                  report.reconciled() && traces_agree(report, reference->report());
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s): %s\n", tag.c_str(), e.what());
  }
  return r;
}

void print_point(const PointResult& r) {
  std::printf("  %7zu %6zu %6zu %10.1f %10.1f %9.1f %9.2f %5zu %5zu %6s %4d\n",
              r.streams, r.shards, r.decisions, r.nokill_wall_ms, r.kill_wall_ms,
              r.detect_ms, r.recover_ms, r.streams_moved, r.replayed_pending,
              r.parity_ok ? "ok" : "FAIL", r.uncaught_exceptions);
}

void json_point(std::FILE* f, const PointResult& r, bool last) {
  std::fprintf(f,
               "    {\"streams\": %zu, \"shards\": %zu, \"decisions\": %zu, "
               "\"nokill_wall_ms\": %.2f, \"kill_wall_ms\": %.2f, "
               "\"detect_ms\": %.3f, \"recover_ms\": %.3f, "
               "\"streams_moved\": %zu, \"replayed_pending\": %zu, "
               "\"kills_fired\": %zu, \"parity_ok\": %s, "
               "\"uncaught_exceptions\": %d}%s\n",
               r.streams, r.shards, r.decisions, r.nokill_wall_ms, r.kill_wall_ms,
               r.detect_ms, r.recover_ms, r.streams_moved, r.replayed_pending,
               r.kills_fired, r.parity_ok ? "true" : "false", r.uncaught_exceptions,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 30 * 30;    // thirty simulated seconds per stream
  std::size_t reps = 3;            // median-of-N wall time per no-kill arm
  std::size_t max_streams = 256;   // CI smoke trims the heavy tail
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--max-streams") == 0 && i + 1 < argc) {
      max_streams = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--reps R] [--max-streams K] [--json PATH]\n",
                  argv[0]);
      return 2;
    }
  }

  bench::print_header("Fleet: scale-out cost and one-kill failover");
  std::printf("  %zu frames per stream, median of %zu reps (no-kill arm)\n", frames, reps);
  std::printf("  %7s %6s %6s %10s %10s %9s %9s %5s %5s %6s %4s\n", "streams", "shards",
              "decis", "nokill-ms", "kill-ms", "detect-ms", "recov-ms", "moved", "pend",
              "parity", "exc");

  std::vector<PointResult> results;
  bool all_parity = true;
  int total_exceptions = 0;
  double detect_ms_max = 0.0;
  double recover_ms_max = 0.0;
  for (const std::size_t k : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    if (k > max_streams) continue;
    for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      results.push_back(measure_point(k, s, frames, reps));
      print_point(results.back());
      all_parity = all_parity && results.back().parity_ok;
      total_exceptions += results.back().uncaught_exceptions;
      detect_ms_max = std::max(detect_ms_max, results.back().detect_ms);
      recover_ms_max = std::max(recover_ms_max, results.back().recover_ms);
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet\",\n  \"frames_per_stream\": %zu,\n  \"reps\": %zu,\n",
               frames, reps);
  std::fprintf(f, "  \"parity_ok\": %s,\n", all_parity ? "true" : "false");
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n", total_exceptions);
  std::fprintf(f, "  \"failover_detect_ms_max\": %.3f,\n", detect_ms_max);
  std::fprintf(f, "  \"failover_recover_ms_max\": %.3f,\n  \"points\": [\n", recover_ms_max);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_point(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());

  std::error_code ec;
  fs::remove_all(fs::current_path() / "bench_fleet_scratch", ec);
  if (!all_parity) {
    std::printf("  !! PARITY FAILURE: a killed-and-failed-over fleet diverged from the\n"
                "     uninterrupted run — the timings above are meaningless.\n");
    return 1;
  }
  return total_exceptions == 0 ? 0 : 1;
}
