// Ablation: resolution of the 2-D top-down representation (Fig. 3c).
//
// The paper argues for "reduc[ing] the number of pixels in the processed
// image while still maintaining the objects' structure". This sweep
// quantifies the trade: coarser grids train faster but lose far-field
// vehicles (a car is ~1 cell at 18x12); finer grids cost quadratically
// with no accuracy return once vehicle structure is resolved.

#include "bench_common.h"

#include "common/timer.h"
#include "models/slowfast.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Ablation: top-down grid resolution (daytime)");

  std::printf("  %-12s %9s %11s %10s %12s\n", "grid", "Top1", "MeanCls", "train-s",
              "cells/frame");
  for (const auto& [gw, gh] : {std::pair{18, 12}, {27, 18}, {36, 24}, {54, 36}}) {
    dataset::BuildRequest req;
    req.weather = dataset::Weather::Daytime;
    req.target_segments = bench::scaled(300);
    req.max_sim_hours = 24.0;
    req.seed = 651;
    req.collector.grid_w = gw;
    req.collector.grid_h = gh;
    const auto ds = dataset::build_dataset(req);
    const auto split = dataset::split_811(ds.segments.size(), 9);
    const auto train = fewshot::select(ds.segments, split.train);
    const auto test = fewshot::select(ds.segments, split.test);

    Timer t;
    models::SlowFast model{models::SlowFastConfig{}};
    fewshot::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.seed = 652;
    fewshot::train_classifier(model, train, cfg);
    const auto eval = fewshot::evaluate(model, test);
    std::printf("  %3dx%-8d %9.4f %11.4f %10.1f %12d\n", gw, gh, eval.top1(), eval.mean_class(),
                t.elapsed_ms() / 1000.0, gw * gh);
  }
  std::printf("\n  shape check: accuracy saturates once a car spans >= ~2 cells; cost\n"
              "  grows with cell count. The default 36x24 sits at the knee.\n");
  return 0;
}
