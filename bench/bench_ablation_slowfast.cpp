// Ablation: SlowFast architecture choices on SafeCross data.
//
//  (a) lateral connections on/off — the fusion that lets the slow pathway
//      see the fast pathway's motion features;
//  (b) alpha (slow-pathway temporal stride) sweep — how much temporal
//      resolution the slow pathway needs.

#include "bench_common.h"

#include "common/timer.h"
#include "models/slowfast.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Ablation: SlowFast design choices (daytime data)");

  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 91);
  const auto split = dataset::split_811(day.segments.size(), 7);
  const auto train = fewshot::select(day.segments, split.train);
  const auto test = fewshot::select(day.segments, split.test);

  struct Variant {
    std::string name;
    models::SlowFastConfig cfg;
  };
  std::vector<Variant> variants;
  {
    models::SlowFastConfig base;
    variants.push_back({"full (lateral on, alpha=8)", base});
    models::SlowFastConfig no_lat = base;
    no_lat.use_lateral = false;
    variants.push_back({"no lateral connections", no_lat});
    models::SlowFastConfig a4 = base;
    a4.alpha = 4;
    variants.push_back({"alpha=4 (denser slow path)", a4});
    models::SlowFastConfig a16 = base;
    a16.alpha = 16;
    variants.push_back({"alpha=16 (sparser slow path)", a16});
  }

  std::printf("  %-32s %9s %11s %9s %9s\n", "variant", "Top1", "MeanCls", "params", "train-s");
  for (auto& v : variants) {
    Timer t;
    models::SlowFast model(v.cfg);
    fewshot::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.seed = 92;
    fewshot::train_classifier(model, train, cfg);
    const auto e = fewshot::evaluate(model, test);
    std::printf("  %-32s %9.4f %11.4f %9zu %9.1f\n", v.name.c_str(), e.top1(), e.mean_class(),
                nn::param_count(model.params()), t.elapsed_ms() / 1000.0);
  }
  std::printf(
      "\n  note: at this reproduction scale the daytime task is easy enough that the\n"
      "  variants land within one test-split quantum of each other — the table's\n"
      "  value is the cost side: lateral fusion adds ~1/3 of the parameters and\n"
      "  ~40%% of the training time, and alpha directly trades slow-pathway\n"
      "  temporal resolution against compute (alpha=4 costs ~2x alpha=16).\n");
  return 0;
}
