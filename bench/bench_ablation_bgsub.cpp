// Ablation: the VP module's design choices.
//
//  (a) dynamic vs static background under illumination drift — the reason
//      the paper uses a "constantly updated" background;
//  (b) morphological opening on/off under weather noise — the reason the
//      paper applies erosion-then-dilation.
// Metric: foreground IoU against the ground-truth moving-vehicle mask.

#include "bench_common.h"

#include "sim/camera.h"
#include "vision/background_subtraction.h"

using namespace safecross;

namespace {

// Ground-truth moving-vehicle mask in camera space.
vision::Image truth_mask(const sim::TrafficSimulator& sim, const sim::CameraModel& cam) {
  vision::Image mask(cam.config().width, cam.config().height, 0.0f);
  for (const auto& v : sim.vehicles()) {
    if (v.speed < 0.5) continue;
    sim::fill_convex_quad(mask, cam.vehicle_quad_image(sim, v), 1.0f);
  }
  return mask;
}

struct PixelScore {
  std::size_t tp = 0, fp = 0, fn = 0;

  void add(const vision::Image& mask, const vision::Image& truth) {
    for (std::size_t i = 0; i < mask.size(); ++i) {
      const bool m = mask.data()[i] > 0.5f;
      const bool t = truth.data()[i] > 0.5f;
      tp += m && t;
      fp += m && !t;
      fn += !m && t;
    }
  }
  double precision() const { return tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0; }
  double recall() const { return tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0; }
  double iou() const { return tp + fp + fn ? static_cast<double>(tp) / (tp + fp + fn) : 1.0; }
};

struct Arm {
  const char* name;
  bool dynamic_bg;
  bool opening;
  bool drift;          // slow global illumination ramp (dawn)
  vision::Weather weather;
};

PixelScore run_arm(const Arm& arm) {
  sim::TrafficSimulator sim(sim::weather_params(arm.weather), 4711);
  const sim::CameraModel cam(sim.intersection().geometry());
  Rng rng(99);
  vision::BackgroundSubtractionConfig cfg;
  cfg.apply_opening = arm.opening;
  std::unique_ptr<vision::BackgroundSubtractor> bg;
  if (arm.dynamic_bg) {
    bg = std::make_unique<vision::RunningAverageBackground>(cfg);
  } else {
    bg = std::make_unique<vision::StaticBackground>(cfg);
  }

  PixelScore score;
  for (int i = 0; i < 30 * 90; ++i) {  // 90 sim-seconds
    sim.step();
    vision::Image frame = cam.render(sim, rng);
    if (arm.drift) {
      // Dawn: +0.25 brightness over the run — well past the foreground
      // threshold, so a frozen background must fail.
      const float lift = 0.25f * static_cast<float>(i) / (30.0f * 90.0f);
      for (std::size_t p = 0; p < frame.size(); ++p) {
        frame.data()[p] = std::min(1.0f, frame.data()[p] + lift);
      }
    }
    const vision::Image mask = bg->apply(frame);
    if (i < 60) continue;  // warm-up
    if (i % 10 != 0) continue;
    score.add(mask, truth_mask(sim, cam));
  }
  return score;
}

}  // namespace

int main() {
  bench::quiet_logs();
  bench::print_header(
      "Ablation: background-subtraction design choices (foreground pixel scores)");

  const Arm arms[] = {
      {"dynamic bg + opening, daytime", true, true, false, vision::Weather::Daytime},
      {"dynamic bg + opening, daytime+drift", true, true, true, vision::Weather::Daytime},
      {"STATIC bg + opening, daytime+drift", false, true, true, vision::Weather::Daytime},
      {"dynamic bg + opening, snow", true, true, false, vision::Weather::Snow},
      {"dynamic bg, NO opening, snow", true, false, false, vision::Weather::Snow},
      {"dynamic bg + opening, rain", true, true, false, vision::Weather::Rain},
      {"dynamic bg, NO opening, rain", true, false, false, vision::Weather::Rain},
  };

  std::printf("  %-40s %10s %10s %10s\n", "configuration", "precision", "recall", "IoU");
  for (const Arm& arm : arms) {
    const PixelScore s = run_arm(arm);
    std::printf("  %-40s %10.4f %10.4f %10.4f\n", arm.name, s.precision(), s.recall(), s.iou());
  }
  std::printf("\n  shape check: the static background collapses under illumination drift\n"
              "  (precision -> ~0 as the whole frame turns foreground); removing the\n"
              "  opening floods the mask with weather speckle (precision drops hard in\n"
              "  rain/snow) at a modest recall gain on small far vehicles.\n");
  return 0;
}
