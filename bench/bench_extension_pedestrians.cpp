// Extension beyond the paper (§VI-B "blind spot pedestrian warning"):
// pedestrians on the exit crosswalks, hidden from the committed turner by
// the junction geometry, are visible to the roadside camera. A
// crosswalk-zone occupancy check on the VP output (the same machinery as
// the vehicular danger zone) yields the warning; we score it against the
// simulator's ground-truth conflict flag.

#include "bench_common.h"

#include "sim/camera.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Extension: blind-spot pedestrian warning (crosswalk-zone check)");

  std::printf("  %-10s %10s %10s %10s %10s %10s\n", "weather", "samples", "conflicts",
              "precision", "recall", "accuracy");
  for (const auto w : {vision::Weather::Daytime, vision::Weather::Snow}) {
    sim::TrafficConfig tc;
    tc.pedestrian_rate = 0.08;
    sim::TrafficSimulator sim(sim::weather_params(w), 2026, {}, tc);
    const sim::CameraModel cam(sim.intersection().geometry());

    // Fine grid so walkers register (the vehicular pipeline's 36x24 cells
    // are 3.3 m — a walker is sub-cell there).
    const int gw = 54, gh = 36;
    const auto& g = sim.intersection().geometry();
    const double exit_x = g.center_x + 0.5 * g.lane_width;
    const int zone_x0 = static_cast<int>((exit_x - 2.5) / g.world_width * gw);
    const int zone_x1 = static_cast<int>((exit_x + 2.5) / g.world_width * gw);
    const int zone_y = static_cast<int>(sim.crosswalk_y(0) / g.world_height * gh);

    std::size_t tp = 0, fp = 0, fn = 0, tn = 0, conflicts = 0;
    for (int i = 0; i < 30 * 1200; ++i) {
      sim.step();
      if (i % 5 != 0) continue;
      const vision::Image grid = cam.rasterize_topdown(sim, gw, gh);
      bool warned = false;
      for (int x = zone_x0; x <= zone_x1; ++x) {
        for (int y = zone_y - 1; y <= zone_y + 1; ++y) {
          if (x >= 0 && y >= 0 && x < gw && y < gh && grid.at(x, y) > 0.5f) warned = true;
        }
      }
      const bool truth = sim.pedestrian_conflict(sim::Approach::EastboundLeft);
      conflicts += truth ? 1 : 0;
      tp += warned && truth;
      fp += warned && !truth;
      fn += !warned && truth;
      tn += !warned && !truth;
    }
    const std::size_t total = tp + fp + fn + tn;
    std::printf("  %-10s %10zu %10zu %10.4f %10.4f %10.4f\n", vision::weather_name(w), total,
                conflicts, tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0,
                tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0,
                static_cast<double>(tp + tn) / total);
  }
  std::printf("\n  shape check: the roadside view catches crosswalk pedestrians the turning\n"
              "  driver cannot see; occasional false warnings come from turning vehicles\n"
              "  crossing the zone cells themselves.\n");
  return 0;
}
