// Table I — dataset overview.
//
// Generates the full paper-sized dataset from the simulator (the
// substitution for the Belarus surveillance feed): 1966 daytime, 34 rain,
// 855 snow segments of 32 frames at 30 Hz, labeled turn-left /
// no-turn-left, and prints the Table I summary plus the four-category
// breakdown the labeling rules produce.

#include "bench_common.h"

#include "common/timer.h"

int main() {
  using namespace safecross;
  bench::quiet_logs();
  bench::print_header("Table I: overview of dataset (simulated substitute)");

  std::printf("  %-10s %10s %10s %12s %10s %12s %12s\n", "scenario", "segments", "paper",
              "sim-hours", "paper-h", "class0/danger", "class1/safe");

  std::size_t cat_totals[4] = {0, 0, 0, 0};
  for (const auto w :
       {dataset::Weather::Daytime, dataset::Weather::Rain, dataset::Weather::Snow}) {
    Timer t;
    const auto ds = bench::build(w, dataset::paper_segment_count(w), 1000 + static_cast<int>(w));
    std::size_t danger = 0, safe = 0;
    for (const auto& s : ds.segments) (s.binary_label() == 0 ? danger : safe)++;
    const auto hist = dataset::category_histogram(ds.segments);
    for (int c = 0; c < 4; ++c) cat_totals[c] += hist[static_cast<std::size_t>(c)];
    std::printf("  %-10s %10zu %10zu %11.2fh %9.1fh %13zu %12zu   (%.1fs wall)\n",
                vision::weather_name(w), ds.segments.size(), dataset::paper_segment_count(w),
                ds.sim_hours, dataset::paper_time_span_hours(w), danger, safe,
                t.elapsed_ms() / 1000.0);
  }

  std::printf("\n  segment length: 32 frames @ 30 Hz (paper: 32 frames @ 30 Hz)\n");
  std::printf("  classes: turn left & no turn left (paper: same)\n");
  std::printf("  four-category breakdown across all weathers:\n");
  for (int c = 0; c < 4; ++c) {
    std::printf("    %-22s %zu\n",
                dataset::category_name(static_cast<dataset::SegmentCategory>(c)),
                cat_totals[c]);
  }
  std::printf("  note: the paper's time spans reflect footage availability (180 days of\n"
              "  recording); our simulator reaches the same segment counts in the hours\n"
              "  shown because arrivals are continuous.\n");
  return 0;
}
