// Ablation: danger-zone sizing (paper §III, problem statement).
//
// "If we arbitrarily define a very large danger zone, then we would not
// be helping traffic throughput; ... a very small zone ... does not
// ensure safety." We sweep a scale factor on the physics-derived zone
// reach and measure, over simulated traffic with ground truth:
//   * missed threats — a threat arrives at the conflict point within the
//     critical gap while the zone said "clear" (safety failures);
//   * false holds — zone occupied although no threat arrives in time
//     (lost throughput).
// Also prints the per-weather physics reach (friction -> zone growth).

#include "bench_common.h"

#include "vision/danger_zone.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Ablation: danger-zone sizing (ground-truth sweep)");

  std::printf("  physics-derived zone reach by weather:\n");
  for (const auto w : {vision::Weather::Daytime, vision::Weather::Rain, vision::Weather::Snow}) {
    const auto params = vision::DangerZoneModel::for_weather(w);
    std::printf("    %-8s friction %.2f -> reach %6.1f m\n", vision::weather_name(w),
                params.friction, vision::danger_zone_reach_m(params));
  }

  std::printf("\n  %-12s %14s %14s %12s\n", "zone scale", "missed threats", "false holds",
              "samples");
  // A stretched approach (240 m world) so the visible lane holds vehicles
  // both inside and outside the critical gap — otherwise every visible
  // oncoming vehicle is already a threat and large zones cost nothing.
  sim::IntersectionGeometry wide;
  wide.world_width = 240.0;
  wide.center_x = 120.0;
  for (const double scale : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), 1234, wide);
    const auto params = vision::DangerZoneModel::for_weather(vision::Weather::Daytime);
    const double reach = vision::danger_zone_reach_m(params) * scale;

    std::size_t missed = 0, false_holds = 0, samples = 0;
    for (int i = 0; i < 30 * 1800; ++i) {  // 30 sim-minutes
      sim.step();
      if (i % 5 != 0) continue;
      if (sim.subject() == nullptr) continue;
      // Zone verdict from pure geometry: any oncoming vehicle within
      // `reach` metres upstream of the conflict point.
      bool occupied = false;
      for (const auto& v : sim.vehicles()) {
        if (v.route != sim::RouteId::WestboundThrough) continue;
        const double x = sim.position(v).x;
        if (x >= sim.conflict_x() - 3.0 && x <= sim.conflict_x() + reach) occupied = true;
      }
      const bool danger = sim.dangerous_to_turn();  // time-based ground truth
      ++samples;
      if (danger && !occupied) ++missed;
      if (!danger && occupied) ++false_holds;
    }
    std::printf("  %-12.2f %14.4f %14.4f %12zu\n", scale,
                static_cast<double>(missed) / samples,
                static_cast<double>(false_holds) / samples, samples);
  }
  std::printf("\n  shape check: small zones miss threats (unsafe); large zones hold safe\n"
              "  turns (throughput loss); the physics-derived reach (scale 1.0) should\n"
              "  drive misses to ~0 with modest false holds.\n");
  return 0;
}
