// Microbenchmarks (google-benchmark) of the vision substrate — the
// per-frame costs behind Table II's end-to-end numbers.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sim/camera.h"
#include "sim/traffic.h"
#include "vision/background_subtraction.h"
#include "vision/blobs.h"
#include "vision/homography.h"
#include "vision/morphology.h"
#include "vision/optical_flow.h"

namespace {

using namespace safecross;

// A realistic pair of consecutive camera frames with traffic.
struct Frames {
  vision::Image prev;
  vision::Image cur;
  vision::Image mask;  // a plausible foreground mask
};

const Frames& frames() {
  static const Frames f = [] {
    sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), 5);
    const sim::CameraModel cam(sim.intersection().geometry());
    Rng rng(6);
    for (int i = 0; i < 30 * 40; ++i) sim.step();
    Frames out;
    out.prev = cam.render(sim, rng);
    sim.step();
    out.cur = cam.render(sim, rng);
    out.mask = vision::Image::absdiff(out.cur, out.prev).threshold(0.1f);
    return out;
  }();
  return f;
}

void BM_BackgroundSubtraction(benchmark::State& state) {
  vision::RunningAverageBackground bg;
  bg.apply(frames().prev);
  for (int i = 0; i < 12; ++i) bg.apply(frames().prev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bg.apply(frames().cur));
  }
}
BENCHMARK(BM_BackgroundSubtraction)->Unit(benchmark::kMillisecond);

void BM_MorphologyOpening(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::opening(frames().mask));
  }
}
BENCHMARK(BM_MorphologyOpening)->Unit(benchmark::kMillisecond);

void BM_FindBlobs(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::find_blobs(frames().mask, 3));
  }
}
BENCHMARK(BM_FindBlobs)->Unit(benchmark::kMillisecond);

void BM_SparseOpticalFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::sparse_optical_flow(frames().prev, frames().cur));
  }
}
BENCHMARK(BM_SparseOpticalFlow)->Unit(benchmark::kMillisecond);

void BM_DenseOpticalFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::dense_optical_flow(frames().prev, frames().cur));
  }
}
BENCHMARK(BM_DenseOpticalFlow)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_HomographyWarpToGrid(benchmark::State& state) {
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), 5);
  const sim::CameraModel cam(sim.intersection().geometry());
  const vision::Homography h = cam.image_to_grid(36, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.warp(frames().mask, 36, 24));
  }
}
BENCHMARK(BM_HomographyWarpToGrid)->Unit(benchmark::kMillisecond);

void BM_CameraRender(benchmark::State& state) {
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Snow), 7);
  const sim::CameraModel cam(sim.intersection().geometry());
  Rng rng(8);
  for (int i = 0; i < 600; ++i) sim.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.render(sim, rng));
  }
}
BENCHMARK(BM_CameraRender)->Unit(benchmark::kMillisecond);

void BM_SimulatorStep(benchmark::State& state) {
  sim::TrafficSimulator sim(sim::weather_params(vision::Weather::Daytime), 9);
  for (int i = 0; i < 30 * 120; ++i) sim.step();
  for (auto _ : state) {
    sim.step();
    benchmark::DoNotOptimize(sim.vehicles().size());
  }
}
BENCHMARK(BM_SimulatorStep)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
