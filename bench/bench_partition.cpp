// Partition-tolerance sweep — control-plane fault rate x failure
// detector, measuring what each detector pays and what it saves.
//
// For every fault rate r (a seeded NetFaultPlan mixing drop/dup/delay/
// reorder scaled by r) and each detector in {hard-threshold, suspicion}
// the same 4-stream x 2-shard workload is run two ways:
//   * partition arm — the faulty fabric plus a full two-way partition
//     window that heals mid-wave, no crash. The hard-threshold detector
//     false-declares the silent shard (reconciliation saves the run);
//     the phi-accrual suspicion detector rides the window out. Reported:
//     false deaths, failovers, partition-window drops.
//   * kill arm — the faulty fabric plus one planned MidJournalAppend
//     kill halfway through the busiest shard's appends. Reported:
//     detection wall (crash instant → declared dead) and recovery wall
//     per detector — the price suspicion pays for its partition calm.
// Every arm's merged per-stream decision sequences must be bit-identical
// to the same-config perfect-network run, and the post-run epoch audit
// must prove no decision was journaled under a stale ownership epoch —
// either failure is hard (nonzero exit): a control plane that changes
// verdicts has no business being benchmarked.
//
// Writes the sweep as JSON (default BENCH_partition.json); the perf gate
// (compare_benches.py) hard-fails on parity/audit violations and on
// suspicion false deaths, and ceilings the detection walls.
//
// Usage: bench_partition [--frames N] [--reps R] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/controller.h"

using namespace safecross;
using namespace safecross::fleet;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using runtime::NetFaultPlan;
using runtime::NetPartition;

ShardSpec tiny_spec() {
  ShardSpec spec;
  spec.engine.model.slow_channels = 4;
  spec.engine.model.fast_channels = 2;
  spec.weathers = {dataset::Weather::Daytime, dataset::Weather::Rain};
  return spec;
}

FleetConfig fleet_config(std::size_t frames) {
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.shard = tiny_spec();
  cfg.serving.frames = frames;
  cfg.serving.queue_capacity = 2;
  cfg.serving.snapshot_every_decisions = 8;
  cfg.serving.heartbeat_interval_ms = 1.0;
  cfg.watch_interval_ms = 2.0;
  for (std::size_t i = 0; i < 4; ++i) {
    serving::StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i % 2 == 0 ? dataset::Weather::Daytime : dataset::Weather::Rain;
    s.sim_seed = 81000 + 10 * i;
    s.collector_seed = 81001 + 10 * i;
    s.fault_seed = 81002 + 10 * i;
    s.decision_stride = i % 3 == 0 ? 4 : 8;
    s.priority = static_cast<core::StreamPriority>(i % 3);
    cfg.streams.push_back(std::move(s));
  }
  return cfg;
}

/// The seeded per-message fault mix at sweep rate r. Partition windows
/// are added per-arm.
NetFaultPlan fault_mix(double rate) {
  NetFaultPlan plan;
  plan.seed = 0xBE9C'0001ull;
  plan.drop_prob = rate;
  plan.dup_prob = rate / 2.0;
  plan.delay_prob = rate / 2.0;
  plan.reorder_prob = rate / 4.0;
  plan.delay_min_ms = 1.0;
  plan.delay_max_ms = 4.0;
  return plan;
}

void apply_detector(FleetConfig& cfg, DetectorKind kind) {
  cfg.detector = kind;
  if (kind == DetectorKind::Suspicion) {
    // Tuned so the 100 ms partition window below stays under threshold
    // (phi(140 ms) ~ 2.3) while a genuinely dead shard is declared after
    // ~240 ms of silence — the detect-wall price the kill arm measures.
    cfg.suspicion.bootstrap_gap_ms = 60.0;
    cfg.suspicion.threshold = 4.0;
    cfg.suspicion.confirm_ticks = 2;
  }
}

struct PointResult {
  double fault_rate = 0.0;
  DetectorKind detector = DetectorKind::HardThreshold;
  std::size_t decisions = 0;
  // partition arm
  double partition_wall_ms = 0.0;
  std::size_t false_deaths = 0;
  std::size_t partition_failovers = 0;
  std::uint64_t partition_drops = 0;  // transport drops owed to the window
  // kill arm
  double kill_wall_ms = 0.0;
  double detect_ms = 0.0;
  double recover_ms = 0.0;
  std::size_t kills_fired = 0;
  bool parity_ok = false;
  bool audit_ok = false;
  int uncaught_exceptions = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "bench_partition_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

bool traces_agree(const FleetReport& got, const FleetReport& want) {
  if (got.streams.size() != want.streams.size()) return false;
  for (std::size_t i = 0; i < got.streams.size(); ++i) {
    const auto& gt = got.streams[i].trace;
    const auto& wt = want.streams[i].trace;
    if (gt.size() != wt.size()) return false;
    for (std::size_t s = 0; s < gt.size(); ++s) {
      if (gt[s].frame != wt[s].frame || gt[s].predicted_class != wt[s].predicted_class ||
          gt[s].prob_danger != wt[s].prob_danger || gt[s].warn != wt[s].warn ||
          gt[s].source != wt[s].source) {
        return false;
      }
    }
  }
  return true;
}

/// The launched-slot index (rank among stream-hosting shards, id order)
/// and reference decision count of the busiest shard — the only victim
/// guaranteed to reach a mid-journal kill ordinal.
std::pair<std::size_t, std::size_t> busiest_slot(const FleetController& ref,
                                                 std::size_t shards) {
  std::vector<std::size_t> decisions(shards, 0);
  std::vector<bool> hosts(shards, false);
  const auto& assignment = ref.placement();
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    hosts[assignment[i]] = true;
    decisions[assignment[i]] += ref.report().streams[i].decisions;
  }
  std::size_t slot = 0, best_slot = 0, best = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    if (!hosts[shard]) continue;
    if (decisions[shard] > best) {
      best = decisions[shard];
      best_slot = slot;
    }
    ++slot;
  }
  return {best_slot, best};
}

PointResult measure_point(const FleetController& reference, double rate,
                          DetectorKind kind, std::size_t frames) {
  PointResult r;
  r.fault_rate = rate;
  r.detector = kind;
  r.decisions = reference.report().decisions_total;
  std::string tag = detector_kind_name(kind);
  tag += "_r";
  tag += std::to_string(static_cast<int>(rate * 100));
  bool parity = true;
  bool audit = true;
  try {
    // Partition arm: faulty fabric + a full two-way window that heals
    // mid-wave. No crash is planned, so any failover here is a false
    // declaration that escaped reconciliation.
    {
      ScratchDir scratch(tag + "_partition");
      FleetConfig cfg = fleet_config(frames);
      cfg.durability_root = scratch.path;
      cfg.net_fault = fault_mix(rate);
      cfg.net_fault.partitions.push_back(
          NetPartition{.from_ms = 40.0, .until_ms = 140.0});
      apply_detector(cfg, kind);
      FleetController fleet(cfg);
      const auto t0 = Clock::now();
      fleet.run();
      r.partition_wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      const FleetReport& report = fleet.report();
      r.false_deaths = report.false_deaths;
      r.partition_failovers = report.failovers.size();
      r.partition_drops = report.transport.partitioned;
      parity = parity && report.reconciled() && report.windows_shed_total == 0 &&
               traces_agree(report, reference.report());
      audit = audit && fleet.epoch_audit().ok();
    }

    // Kill arm: same fabric, one planned mid-journal kill at the busiest
    // shard — the detection/recovery wall per detector.
    {
      const auto [victim, victim_decisions] = busiest_slot(reference, 2);
      ScratchDir scratch(tag + "_kill");
      FleetConfig cfg = fleet_config(frames);
      cfg.durability_root = scratch.path;
      cfg.net_fault = fault_mix(rate);
      cfg.fault.enabled = true;
      apply_detector(cfg, kind);
      FleetController fleet(cfg);
      fleet.fault().set_plan(
          {{.wave = 0,
            .victim = victim,
            .point = runtime::CrashPoint::MidJournalAppend,
            .nth = std::max<std::size_t>(1, victim_decisions / 2)}});
      const auto t0 = Clock::now();
      fleet.run();
      r.kill_wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      r.kills_fired = fleet.kills_fired();
      const FleetReport& report = fleet.report();
      for (const FailoverEvent& ev : report.failovers) {
        r.detect_ms = std::max(r.detect_ms, ev.detect_ms);
        r.recover_ms = std::max(r.recover_ms, ev.recover_ms);
      }
      parity = parity && r.kills_fired == 1 && report.failovers.size() == 1 &&
               report.reconciled() && traces_agree(report, reference.report());
      audit = audit && fleet.epoch_audit().ok();
    }
    r.parity_ok = parity;
    r.audit_ok = audit;
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s): %s\n", tag.c_str(), e.what());
  }
  return r;
}

void print_point(const PointResult& r) {
  std::printf("  %5.2f %10s %6zu %9.1f %6zu %6zu %8llu %9.1f %9.1f %9.2f %6s %5s %4d\n",
              r.fault_rate, detector_kind_name(r.detector), r.decisions,
              r.partition_wall_ms, r.false_deaths, r.partition_failovers,
              static_cast<unsigned long long>(r.partition_drops), r.kill_wall_ms,
              r.detect_ms, r.recover_ms, r.parity_ok ? "ok" : "FAIL",
              r.audit_ok ? "ok" : "FAIL", r.uncaught_exceptions);
}

void json_point(std::FILE* f, const PointResult& r, bool last) {
  std::fprintf(f,
               "    {\"fault_rate\": %.2f, \"detector\": \"%s\", \"decisions\": %zu, "
               "\"partition_wall_ms\": %.2f, \"false_deaths\": %zu, "
               "\"partition_failovers\": %zu, \"partition_drops\": %llu, "
               "\"kill_wall_ms\": %.2f, \"detect_ms\": %.3f, \"recover_ms\": %.3f, "
               "\"kills_fired\": %zu, \"parity_ok\": %s, \"audit_ok\": %s, "
               "\"uncaught_exceptions\": %d}%s\n",
               r.fault_rate, detector_kind_name(r.detector), r.decisions,
               r.partition_wall_ms, r.false_deaths, r.partition_failovers,
               static_cast<unsigned long long>(r.partition_drops), r.kill_wall_ms,
               r.detect_ms, r.recover_ms, r.kills_fired, r.parity_ok ? "true" : "false",
               r.audit_ok ? "true" : "false", r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 30 * 60;  // one simulated minute per stream
  std::size_t reps = 2;          // median-of-N wall for the reference arm
  std::string json_path = "BENCH_partition.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--reps R] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Partition tolerance: fault rate x failure detector");
  std::printf("  %zu frames per stream, 4 streams x 2 shards\n", frames);

  // Perfect-network reference: the parity oracle for every arm, and the
  // placement the kill plans are derived from.
  std::vector<double> walls;
  std::unique_ptr<FleetController> reference;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    reference = std::make_unique<FleetController>(fleet_config(frames));
    const auto t0 = Clock::now();
    reference->run();
    walls.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  const double reference_wall_ms = median(walls);
  std::printf("  reference: %zu decisions, %.1f ms\n",
              reference->report().decisions_total, reference_wall_ms);

  std::printf("  %5s %10s %6s %9s %6s %6s %8s %9s %9s %9s %6s %5s %4s\n", "rate",
              "detector", "decis", "part-ms", "false", "fails", "pdrops", "kill-ms",
              "detect-ms", "recov-ms", "parity", "audit", "exc");

  std::vector<PointResult> results;
  bool all_parity = true;
  bool all_audit = true;
  int total_exceptions = 0;
  std::size_t suspicion_false_deaths = 0;
  std::size_t hard_false_deaths = 0;
  double suspicion_detect_max = 0.0;
  double hard_detect_max = 0.0;
  for (const double rate : {0.0, 0.1, 0.25}) {
    for (const DetectorKind kind :
         {DetectorKind::HardThreshold, DetectorKind::Suspicion}) {
      results.push_back(measure_point(*reference, rate, kind, frames));
      const PointResult& r = results.back();
      print_point(r);
      all_parity = all_parity && r.parity_ok;
      all_audit = all_audit && r.audit_ok;
      total_exceptions += r.uncaught_exceptions;
      if (kind == DetectorKind::Suspicion) {
        suspicion_false_deaths += r.false_deaths;
        suspicion_detect_max = std::max(suspicion_detect_max, r.detect_ms);
      } else {
        hard_false_deaths += r.false_deaths;
        hard_detect_max = std::max(hard_detect_max, r.detect_ms);
      }
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"partition\",\n  \"frames_per_stream\": %zu,\n"
               "  \"reference_wall_ms\": %.2f,\n",
               frames, reference_wall_ms);
  std::fprintf(f, "  \"parity_ok\": %s,\n", all_parity ? "true" : "false");
  std::fprintf(f, "  \"audit_ok\": %s,\n", all_audit ? "true" : "false");
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n", total_exceptions);
  std::fprintf(f, "  \"suspicion_false_deaths_total\": %zu,\n", suspicion_false_deaths);
  std::fprintf(f, "  \"hard_false_deaths_total\": %zu,\n", hard_false_deaths);
  std::fprintf(f, "  \"suspicion_detect_ms_max\": %.3f,\n", suspicion_detect_max);
  std::fprintf(f, "  \"hard_detect_ms_max\": %.3f,\n  \"points\": [\n", hard_detect_max);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_point(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());

  std::error_code ec;
  fs::remove_all(fs::current_path() / "bench_partition_scratch", ec);
  if (!all_parity || !all_audit) {
    std::printf("  !! %s FAILURE: a faulted fleet diverged from the perfect-network\n"
                "     run or journaled under a stale epoch — timings are meaningless.\n",
                all_parity ? "EPOCH AUDIT" : "PARITY");
    return 1;
  }
  return total_exceptions == 0 ? 0 : 1;
}
