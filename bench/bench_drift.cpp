// Drift sweep — geometric camera faults against the self-healing
// calibration loop. For each drift rate the same seeded geometric fault
// sequence (slow extrinsic drift + jitter) is replayed against two arms:
//   * no-recalib — the drifting camera is never corrected: homography
//     projections decay and model verdicts quietly rot;
//   * recalib    — the online recalibration loop re-estimates the view
//     perturbation on cadence, warns conservatively while miscalibrated
//     (DecisionSource::FailSafeMiscalibrated) and swaps corrected
//     image->grid homographies back in after the modeled solve latency.
// Reports availability, missed/false-warning rates, recalibration
// counters and the residual view drift at end of run per arm, and writes
// the sweep as JSON (default BENCH_drift.json).
//
// Parity guard: the zero-drift/no-recalib arm must be bit-identical to a
// plain run without any injector — the geometry machinery must be free
// when disabled. parity_ok == false fails the process (and the CI gate).
//
// Usage: bench_drift [--frames N] [--json PATH]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

using namespace safecross;
using namespace safecross::core;

namespace {

struct RunResult {
  std::string policy;
  double drift_rate = 0.0;
  std::size_t frames = 0;
  std::size_t decisions = 0;
  std::size_t opportunities = 0;
  std::size_t model_decisions = 0;
  std::size_t fail_safe = 0;
  std::size_t miscal_warns = 0;
  std::size_t warnings = 0;
  std::size_t missed_threats = 0;
  std::size_t false_warnings = 0;
  std::size_t episodes = 0;
  std::size_t recalibrations = 0;
  std::size_t estimates_rejected = 0;
  double residual_drift_px = 0.0;  // applied view vs true perturbation, end of run
  int uncaught_exceptions = 0;

  double availability() const {
    return opportunities == 0 ? 1.0
                              : static_cast<double>(decisions) / static_cast<double>(opportunities);
  }
  double model_availability() const {
    return opportunities == 0
               ? 1.0
               : static_cast<double>(model_decisions) / static_cast<double>(opportunities);
  }
  double missed_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(missed_threats) / static_cast<double>(decisions);
  }
  double false_warning_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(false_warnings) / static_cast<double>(decisions);
  }
};

runtime::FaultPlan plan_for_drift(double px_per_frame, std::size_t frames) {
  runtime::FaultPlan plan;
  plan.geometry.drift_px_per_frame = px_per_frame;
  // Drift through the first two thirds of the run, then hold: the tail
  // shows whether the recalib arm actually settles back to model verdicts.
  plan.geometry.drift_stop_frame = frames * 2 / 3;
  return plan;
}

RunResult run_arm(SafeCross& sc, bool recalib, double drift_rate, std::size_t frames,
                  std::uint64_t sim_seed) {
  RunResult r;
  r.policy = recalib ? "recalib" : "no-recalib";
  r.drift_rate = drift_rate;
  r.frames = frames;
  try {
    sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), sim_seed);
    const sim::CameraModel cam(sim.intersection().geometry());
    const runtime::FaultPlan plan = plan_for_drift(drift_rate, frames);
    // Same injector seed in both arms: the drift trajectory is replayed
    // bit-for-bit, so any scorecard difference is the loop's doing.
    runtime::FaultInjector injector(plan, /*seed=*/0xD21F7u);
    MonitorConfig cfg;
    cfg.recalib.enabled = recalib;
    cfg.recalib.check_every_frames = 60;
    RealtimeMonitor monitor(sc, sim, cam, cfg, /*seed=*/sim_seed + 1,
                            plan.enabled() ? &injector : nullptr);
    monitor.run(frames);
    r.decisions = monitor.decisions();
    r.opportunities = monitor.decision_opportunities();
    r.model_decisions = monitor.model_decisions();
    r.fail_safe = monitor.fail_safe_decisions();
    r.miscal_warns = monitor.fail_safe_by_source(runtime::DecisionSource::FailSafeMiscalibrated);
    r.warnings = monitor.warnings();
    r.missed_threats = monitor.missed_threats();
    r.false_warnings = monitor.false_warnings();
    const runtime::RecalibrationLoop* loop = monitor.recalibration();
    const vision::Homography applied =
        loop != nullptr ? loop->applied_view() : vision::Homography();
    r.residual_drift_px = runtime::view_drift_px(applied, injector.view_perturbation(),
                                                 cfg.recalib.frame_width,
                                                 cfg.recalib.frame_height);
    if (loop != nullptr) {
      r.episodes = loop->miscalibration_episodes();
      r.recalibrations = loop->recalibrations();
      r.estimates_rejected = loop->estimates_rejected();
    }
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s, drift %.3f): %s\n", r.policy.c_str(), drift_rate,
                e.what());
  }
  return r;
}

/// Plain run with no injector at all: the oracle for the parity guard.
RunResult run_plain(SafeCross& sc, std::size_t frames, std::uint64_t sim_seed) {
  RunResult r = {};
  r.policy = "plain";
  r.frames = frames;
  sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), sim_seed);
  const sim::CameraModel cam(sim.intersection().geometry());
  MonitorConfig cfg;
  RealtimeMonitor monitor(sc, sim, cam, cfg, /*seed=*/sim_seed + 1, nullptr);
  monitor.run(frames);
  r.decisions = monitor.decisions();
  r.opportunities = monitor.decision_opportunities();
  r.model_decisions = monitor.model_decisions();
  r.fail_safe = monitor.fail_safe_decisions();
  r.warnings = monitor.warnings();
  r.missed_threats = monitor.missed_threats();
  r.false_warnings = monitor.false_warnings();
  return r;
}

void print_result(const RunResult& r) {
  std::printf("  %6.3f  %-10s %8zu %7.3f %7.3f %8zu %8zu %6zu %6zu %8.2f %5d\n", r.drift_rate,
              r.policy.c_str(), r.decisions, r.availability(), r.model_availability(),
              r.miscal_warns, r.recalibrations, r.missed_threats, r.false_warnings,
              r.residual_drift_px, r.uncaught_exceptions);
}

void json_result(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"drift_px_per_frame\": %.4f, \"policy\": \"%s\", \"frames\": %zu, "
               "\"decisions\": %zu, \"opportunities\": %zu, \"model_decisions\": %zu, "
               "\"fail_safe_decisions\": %zu, \"miscalibrated_warns\": %zu, "
               "\"warnings\": %zu, \"missed_threats\": %zu, \"false_warnings\": %zu, "
               "\"episodes\": %zu, \"recalibrations\": %zu, \"estimates_rejected\": %zu, "
               "\"availability\": %.6f, \"model_availability\": %.6f, "
               "\"missed_threat_rate\": %.6f, \"false_warning_rate\": %.6f, "
               "\"residual_drift_px\": %.4f, \"uncaught_exceptions\": %d}%s\n",
               r.drift_rate, r.policy.c_str(), r.frames, r.decisions, r.opportunities,
               r.model_decisions, r.fail_safe, r.miscal_warns, r.warnings, r.missed_threats,
               r.false_warnings, r.episodes, r.recalibrations, r.estimates_rejected,
               r.availability(), r.model_availability(), r.missed_rate(),
               r.false_warning_rate(), r.residual_drift_px, r.uncaught_exceptions, last ? "" : ",");
}

bool scorecards_equal(const RunResult& a, const RunResult& b) {
  return a.decisions == b.decisions && a.opportunities == b.opportunities &&
         a.model_decisions == b.model_decisions && a.fail_safe == b.fail_safe &&
         a.warnings == b.warnings && a.missed_threats == b.missed_threats &&
         a.false_warnings == b.false_warnings;
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 30 * 180;  // three simulated minutes per arm
  std::string json_path = "BENCH_drift.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Drift: training the daytime model");
  dataset::BuildRequest req;
  req.target_segments = bench::scaled(60);
  req.max_sim_hours = 4.0;
  req.seed = 2022;
  const auto day = dataset::build_dataset(req);
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 3;
  SafeCross sc(cfg);
  sc.train_basic(bench::ptrs(day.segments));
  std::printf("  trained on %zu daytime segments, %zu frames per arm\n", day.segments.size(),
              frames);

  bench::print_header("Parity guard: geometry disabled must be free");
  const std::uint64_t sim_seed = 4242;
  const RunResult plain = run_plain(sc, frames, sim_seed);
  const RunResult inert = run_arm(sc, /*recalib=*/false, 0.0, frames, sim_seed);
  const bool parity_ok = scorecards_equal(plain, inert) && inert.uncaught_exceptions == 0;
  std::printf("  zero-drift/no-recalib vs plain run: %s\n",
              parity_ok ? "bit-identical scorecards" : "DIVERGED (gate will fail)");

  bench::print_header("Drift sweep: uncorrected decay vs self-healing recalibration");
  std::printf("  %6s  %-10s %8s %7s %7s %8s %8s %6s %6s %8s %5s\n", "drift", "policy",
              "decisions", "avail", "mavail", "miscal-w", "recalibs", "missed", "false-w",
              "resid-px", "exc");
  const double rates[] = {0.0, 0.03, 0.08};
  std::vector<RunResult> results;
  results.push_back(plain);
  int total_exceptions = 0;
  double worst_recalib_mavail = 1.0;
  double worst_norecalib_resid = 0.0;
  for (const double rate : rates) {
    const RunResult norecalib =
        rate == 0.0 ? inert : run_arm(sc, /*recalib=*/false, rate, frames, sim_seed);
    const RunResult recalib = run_arm(sc, /*recalib=*/true, rate, frames, sim_seed);
    print_result(norecalib);
    print_result(recalib);
    results.push_back(norecalib);
    results.push_back(recalib);
    total_exceptions += norecalib.uncaught_exceptions + recalib.uncaught_exceptions;
    if (rate > 0.0) {
      worst_recalib_mavail = std::min(worst_recalib_mavail, recalib.model_availability());
      worst_norecalib_resid = std::max(worst_norecalib_resid, norecalib.residual_drift_px);
    }
  }

  std::printf("\n  verdict: %d uncaught exceptions; recalib model-availability floor %.3f\n"
              "  across drifting arms (uncorrected residual reaches %.1f px).\n",
              total_exceptions, worst_recalib_mavail, worst_norecalib_resid);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"drift\",\n  \"frames_per_run\": %zu,\n", frames);
  std::fprintf(f, "  \"parity_ok\": %s,\n", parity_ok ? "true" : "false");
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n", total_exceptions);
  std::fprintf(f, "  \"model_availability_worst_drift_recalib\": %.6f,\n", worst_recalib_mavail);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_result(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return (total_exceptions == 0 && parity_ok) ? 0 : 1;
}
