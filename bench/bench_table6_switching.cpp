// Table VI + Fig. 7 — model switching: Stop-and-Start ("End-start") vs
// PipeSwitch, for the paper's three workloads, on the discrete-event GPU
// model. Also prints the PipeSwitch transfer/compute overlap timeline
// (Fig. 7) and validates the mechanism with the REAL threaded pipelined
// executor (actual memcpy + wall-clock compute waits).

#include <cstdio>

#include "bench_common.h"
#include "switching/executor.h"
#include "switching/grouping.h"

using namespace safecross;
using namespace safecross::switching;

namespace {

void print_timeline(const SwitchResult& r, std::size_t max_rows = 12) {
  std::printf("    %-9s %10s %10s  %s\n", "engine", "start ms", "end ms", "label");
  std::size_t shown = 0;
  for (const auto& e : r.timeline) {
    if (shown++ >= max_rows) {
      std::printf("    ... (%zu more entries)\n", r.timeline.size() - max_rows);
      break;
    }
    const char* eng = e.engine == TimelineEntry::Engine::Transfer  ? "transfer"
                      : e.engine == TimelineEntry::Engine::Compute ? "compute"
                                                                   : "setup";
    std::printf("    %-9s %10.3f %10.3f  %s\n", eng, e.start_ms, e.end_ms, e.label.c_str());
  }
}

}  // namespace

int main() {
  bench::quiet_logs();
  bench::print_header("Table VI: comparison between model switching approaches");

  const GpuModelConfig gpu;
  const double paper_ss[3] = {5614.75, 4081.15, 3612.25};
  const double paper_ps[3] = {6.06, 5.30, 4.32};
  const ModelProfile profiles[3] = {slowfast_r50_profile(), resnet152_profile(),
                                    inception_v3_profile()};

  std::printf("  %-20s %14s %12s %14s %12s\n", "model", "End-start ms", "paper", "PipeSwitch ms",
              "paper");
  SwitchResult slowfast_ps;
  for (int i = 0; i < 3; ++i) {
    const SwitchResult ss = simulate_stop_and_start(profiles[i], gpu);
    const auto groups = optimal_grouping(profiles[i], gpu);
    const SwitchResult ps = simulate_pipeswitch(profiles[i], groups, gpu);
    if (i == 0) slowfast_ps = ps;
    std::printf("  %-20s %14.2f %12.2f %14.2f %12.2f\n", profiles[i].name.c_str(),
                ss.switching_delay_ms(), paper_ss[i], ps.switching_delay_ms(), paper_ps[i]);
  }
  std::printf("\n  shape check: Stop-and-Start is seconds (context init + library load +\n"
              "  cold kernels); PipeSwitch is < 10 ms for every model.\n");

  bench::print_header("Fig. 7: PipeSwitch pipelined transmission/execution timeline (SlowFast)");
  print_timeline(slowfast_ps);

  bench::print_header("Mechanism check: real threaded pipelined executor");
  ExecutorConfig exec_cfg;
  exec_cfg.bandwidth_gbps = 4.0;
  PipelinedExecutor exec(exec_cfg);
  // A synthetic ~144 MB / ~42 ms-compute model: transfer and compute
  // nearly balanced, so pipelining can hide almost half the wall time.
  ModelProfile demo;
  demo.name = "demo";
  for (int i = 0; i < 12; ++i) {
    // Built with += rather than operator+: every string operator+ overload
    // trips GCC 12's -Wrestrict false positive at -O3 (PR105651).
    std::string name = "l";
    name += std::to_string(i);
    demo.layers.push_back({std::move(name), 12'000'000, 3.5, 0});
  }
  const ExecutorResult seq = exec.run_sequential(demo);
  const ExecutorResult pip = exec.run_pipelined(demo, optimal_grouping(demo, GpuModelConfig{}));
  std::printf("  sequential: wall %.1f ms (transfer %.1f + compute %.1f)\n", seq.wall_ms,
              seq.transfer_ms, seq.compute_ms);
  std::printf("  pipelined:  wall %.1f ms (transfer %.1f busy, compute %.1f busy)\n", pip.wall_ms,
              pip.transfer_ms, pip.compute_ms);
  std::printf("  overlap saved %.0f%% of the sequential wall time (real threads, real memcpy).\n",
              100.0 * (1.0 - pip.wall_ms / seq.wall_ms));
  return 0;
}
