#!/usr/bin/env python3
"""CI perf-regression gate over the committed benchmark baselines.

Compares freshly produced bench JSON against bench/baselines/ and fails
(exit 1) when a gated metric regresses by more than the threshold
(default 25%):

  * BENCH_micro_nn.json (google-benchmark format): every benchmark whose
    name matches Gemm|Conv, gated on median real_time. Medians are taken
    across repetition entries (or the reported _median aggregate), which
    is what keeps the gate usable on noisy shared runners.
  * BENCH_multistream.json (custom format): gated on
    speedup_8stream_vs_solo_sequential — the batched-vs-solo throughput
    ratio, which is machine-independent by construction — plus a hard
    fail on parity_ok == false or uncaught exceptions.
  * BENCH_drift.json (custom format): gated on
    model_availability_worst_drift_recalib — the self-healing loop's
    model-verdict availability floor across drifting arms (deterministic
    counters, machine-independent) — plus a hard fail on
    parity_ok == false (geometry machinery must be free when disabled)
    or uncaught exceptions.
  * BENCH_fleet.json (custom format): hard fail on parity_ok == false (a
    killed-and-failed-over fleet must merge bit-identical decision
    sequences) or uncaught exceptions; failover detect/recover wall
    times are gated against a generous ceiling — max(500 ms, 10x the
    baseline) — because they are wall-clock and machine-dependent, but a
    10x blowup means the heartbeat watch loop or recovery path broke.
  * BENCH_partition.json (custom format): hard fail on parity_ok ==
    false (every faulted-fabric arm must merge bit-identical decision
    sequences), audit_ok == false (no decision journaled under a stale
    ownership epoch), uncaught exceptions, or ANY suspicion-detector
    false death (the phi-accrual detector must ride out a healed
    partition — absolute zero, not baseline-relative). Both detectors'
    detection walls get the same generous max(500 ms, 10x baseline)
    ceiling as the fleet gate.
  * BENCH_switch.json (custom format): hard fail on parity_ok == false
    (both batched switch arms must stay bit-identical, lineage included,
    to the switch-free oracle) or uncaught exceptions. Gated on
    p99_ratio_pipelined_vs_stop_and_start: any ratio >= 1.0 fails
    outright (pipelined p99 must be strictly below stop-and-start — the
    ISSUE's headline claim), and the ceiling max(0.85, baseline x
    (1 + threshold)) keeps noise from eroding the margin while absolute
    p99 values stay ungated (they are wall-clock and machine-dependent;
    the ratio is not).

Usage:
  bench/compare_benches.py [--baseline-dir bench/baselines] [--fresh-dir .]
                           [--threshold 0.25]

Refreshing baselines (after an intentional perf change):
  bench/run_benches.sh --smoke && \
      cp BENCH_micro_nn.json BENCH_multistream.json BENCH_drift.json \
         BENCH_fleet.json BENCH_partition.json BENCH_switch.json bench/baselines/
Commit the result in the same PR as the change that shifted the numbers,
and say why in the PR description.

A missing fresh benchmark that the baseline knows about fails the gate
(a silently dropped bench must not read as a pass); a fresh benchmark
the baseline lacks is reported but does not fail (it gets gated once the
baseline is refreshed).
"""

import argparse
import json
import re
import statistics
import sys
from pathlib import Path

GATED_NAME = re.compile(r"Gemm|Conv")

# Unit of comparison: milliseconds.
_TIME_SCALE = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_micro_medians(path):
    """google-benchmark JSON -> {benchmark name: median real_time in ms}."""
    with open(path) as f:
        data = json.load(f)
    runs = {}       # name -> [real_time ms] over repetition entries
    aggregates = {} # name -> reported median, preferred when present
    for b in data.get("benchmarks", []):
        scale = _TIME_SCALE[b.get("time_unit", "ns")]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                aggregates[b["run_name"]] = b["real_time"] * scale
        else:
            runs.setdefault(b["name"], []).append(b["real_time"] * scale)
    medians = {name: statistics.median(times) for name, times in runs.items()}
    medians.update(aggregates)
    return medians


def gate_micro(baseline_path, fresh_path, threshold):
    baseline = {n: v for n, v in load_micro_medians(baseline_path).items()
                if GATED_NAME.search(n)}
    fresh_all = load_micro_medians(fresh_path)
    failures = []
    print(f"-- micro_nn gate ({len(baseline)} benchmarks, "
          f"fail above {(1 + threshold):.2f}x baseline median)")
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh_all:
            failures.append(f"{name}: present in baseline but missing from fresh results")
            print(f"   MISSING  {name}")
            continue
        new = fresh_all[name]
        ratio = new / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > 1 + threshold else "ok"
        print(f"   {verdict:8s} {name}: {base:.3f} ms -> {new:.3f} ms ({ratio:.2f}x)")
        if verdict == "FAIL":
            failures.append(f"{name}: {base:.3f} ms -> {new:.3f} ms "
                            f"({ratio:.2f}x > {1 + threshold:.2f}x)")
    new_only = sorted(n for n in fresh_all if GATED_NAME.search(n) and n not in baseline)
    for name in new_only:
        print(f"   new      {name}: {fresh_all[name]:.3f} ms (not in baseline, not gated)")
    return failures


def gate_multistream(baseline_path, fresh_path, threshold):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = []
    print("-- multistream gate")
    if not fresh.get("parity_ok", False):
        failures.append("multistream: batched verdicts diverged from the sequential oracle")
    if fresh.get("uncaught_exceptions_total", 0) != 0:
        failures.append("multistream: uncaught exceptions during the sweep")
    key = "speedup_8stream_vs_solo_sequential"
    base, new = baseline.get(key), fresh.get(key)
    if base is None or new is None:
        failures.append(f"multistream: {key} missing "
                        f"(baseline: {base}, fresh: {new})")
    else:
        floor = base * (1 - threshold)
        verdict = "FAIL" if new < floor else "ok"
        print(f"   {verdict:8s} {key}: {base:.2f}x -> {new:.2f}x (floor {floor:.2f}x)")
        if verdict == "FAIL":
            failures.append(f"{key}: {base:.2f}x -> {new:.2f}x (floor {floor:.2f}x)")
    return failures


def gate_drift(baseline_path, fresh_path, threshold):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = []
    print("-- drift gate")
    if not fresh.get("parity_ok", False):
        failures.append("drift: zero-drift/no-recalib arm diverged from the plain run")
    if fresh.get("uncaught_exceptions_total", 0) != 0:
        failures.append("drift: uncaught exceptions during the sweep")
    key = "model_availability_worst_drift_recalib"
    base, new = baseline.get(key), fresh.get(key)
    if base is None or new is None:
        failures.append(f"drift: {key} missing (baseline: {base}, fresh: {new})")
    else:
        floor = base * (1 - threshold)
        verdict = "FAIL" if new < floor else "ok"
        print(f"   {verdict:8s} {key}: {base:.3f} -> {new:.3f} (floor {floor:.3f})")
        if verdict == "FAIL":
            failures.append(f"{key}: {base:.3f} -> {new:.3f} (floor {floor:.3f})")
    return failures


def gate_fleet(baseline_path, fresh_path, threshold):
    del threshold  # the fleet gate uses its own absolute-floor ceiling
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = []
    print("-- fleet gate")
    if not fresh.get("parity_ok", False):
        failures.append("fleet: a killed-and-failed-over run diverged from the "
                        "uninterrupted fleet (merged sequences not bit-identical)")
    if fresh.get("uncaught_exceptions_total", 0) != 0:
        failures.append("fleet: uncaught exceptions during the sweep")
    # Wall-clock ceilings, deliberately loose: an absolute 500 ms floor so
    # slow-but-sane runners pass, and 10x baseline so a broken watch loop
    # (detection) or recovery path cannot hide behind that floor.
    for key in ("failover_detect_ms_max", "failover_recover_ms_max"):
        base, new = baseline.get(key), fresh.get(key)
        if base is None or new is None:
            failures.append(f"fleet: {key} missing (baseline: {base}, fresh: {new})")
            continue
        ceiling = max(500.0, 10.0 * base)
        verdict = "FAIL" if new > ceiling else "ok"
        print(f"   {verdict:8s} {key}: {base:.1f} ms -> {new:.1f} ms "
              f"(ceiling {ceiling:.0f} ms)")
        if verdict == "FAIL":
            failures.append(f"{key}: {base:.1f} ms -> {new:.1f} ms "
                            f"(ceiling {ceiling:.0f} ms)")
    return failures


def gate_partition(baseline_path, fresh_path, threshold):
    del threshold  # the partition gate uses its own absolute-floor ceilings
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = []
    print("-- partition gate")
    if not fresh.get("parity_ok", False):
        failures.append("partition: a faulted fleet diverged from the perfect-network "
                        "run (merged sequences not bit-identical)")
    if not fresh.get("audit_ok", False):
        failures.append("partition: the epoch audit found a decision journaled under "
                        "a stale ownership epoch")
    if fresh.get("uncaught_exceptions_total", 0) != 0:
        failures.append("partition: uncaught exceptions during the sweep")
    # The headline claim: the suspicion detector rides out a healed
    # partition without ever false-declaring a shard dead. Absolute zero,
    # not baseline-relative — one false death is a regression.
    sfd = fresh.get("suspicion_false_deaths_total")
    if sfd is None:
        failures.append("partition: suspicion_false_deaths_total missing")
    elif sfd != 0:
        failures.append(f"partition: suspicion detector false-declared {sfd} "
                        "partitioned shard(s) dead")
    else:
        print(f"   {'ok':8s} suspicion_false_deaths_total: {sfd}")
    # Detection-wall ceilings, deliberately loose (same shape as the
    # fleet gate): an absolute 500 ms floor for slow-but-sane runners,
    # 10x baseline so a broken detector cannot hide behind it.
    for key in ("hard_detect_ms_max", "suspicion_detect_ms_max"):
        base, new = baseline.get(key), fresh.get(key)
        if base is None or new is None:
            failures.append(f"partition: {key} missing (baseline: {base}, fresh: {new})")
            continue
        ceiling = max(500.0, 10.0 * base)
        verdict = "FAIL" if new > ceiling else "ok"
        print(f"   {verdict:8s} {key}: {base:.1f} ms -> {new:.1f} ms "
              f"(ceiling {ceiling:.0f} ms)")
        if verdict == "FAIL":
            failures.append(f"{key}: {base:.1f} ms -> {new:.1f} ms "
                            f"(ceiling {ceiling:.0f} ms)")
    return failures


def gate_switch(baseline_path, fresh_path, threshold):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = []
    print("-- switch gate")
    if not fresh.get("parity_ok", False):
        failures.append("switch: a batched switch arm diverged from the switch-free "
                        "oracle (verdicts or model lineage not bit-identical)")
    if fresh.get("uncaught_exceptions_total", 0) != 0:
        failures.append("switch: uncaught exceptions during the sweep")
    key = "p99_ratio_pipelined_vs_stop_and_start"
    base, new = baseline.get(key), fresh.get(key)
    if base is None or new is None or new < 0:
        failures.append(f"switch: {key} missing or invalid "
                        f"(baseline: {base}, fresh: {new})")
        return failures
    # Two ceilings: >= 1.0 always fails (the headline claim is that the
    # pipelined arm's p99 is STRICTLY below stop-and-start), and the
    # noise ceiling keeps the margin from silently eroding. Absolute p99
    # values stay ungated — wall-clock, machine-dependent — the ratio of
    # the two arms on the same machine is not.
    ceiling = min(max(0.85, base * (1 + threshold)), 0.9999)
    verdict = "FAIL" if new > ceiling else "ok"
    print(f"   {verdict:8s} {key}: {base:.2f}x -> {new:.2f}x (ceiling {ceiling:.2f}x)")
    if verdict == "FAIL":
        failures.append(f"{key}: {base:.2f}x -> {new:.2f}x (ceiling {ceiling:.2f}x)"
                        + (" — pipelined p99 is no longer strictly below stop-and-start"
                           if new >= 1.0 else ""))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline-dir", type=Path, default=Path("bench/baselines"))
    ap.add_argument("--fresh-dir", type=Path, default=Path("."))
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional regression that fails the gate (default 0.25)")
    args = ap.parse_args()

    failures = []
    checked = 0
    for name, gate in (("BENCH_micro_nn.json", gate_micro),
                       ("BENCH_multistream.json", gate_multistream),
                       ("BENCH_drift.json", gate_drift),
                       ("BENCH_fleet.json", gate_fleet),
                       ("BENCH_partition.json", gate_partition),
                       ("BENCH_switch.json", gate_switch)):
        baseline, fresh = args.baseline_dir / name, args.fresh_dir / name
        if not baseline.exists():
            print(f"-- {name}: no committed baseline, skipping")
            continue
        if not fresh.exists():
            failures.append(f"{name}: baseline committed but no fresh results at {fresh}")
            continue
        failures.extend(gate(baseline, fresh, args.threshold))
        checked += 1

    if checked == 0 and not failures:
        print("error: no baselines found — nothing was gated", file=sys.stderr)
        return 2
    if failures:
        print(f"\nPERF GATE FAILED ({len(failures)} issue(s)):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("\nIf the regression is intentional, refresh bench/baselines/ "
              "(see the header of this script).", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
