// §V-D — throughput comparison.
//
// The paper's experiment: from ~10 hours of footage across all three
// weathers, collect the segments WITH blind areas (32 of class 0 "car in
// the blind zone, must wait" and 31 of class 1 "zone empty, may turn"),
// classify them with SafeCross, and account throughput: every correctly
// judged-safe scene is a turn that no longer waits for the view to clear
// -> +32/63 ~= +50% left-turn throughput.

#include "bench_common.h"

#include "core/safecross.h"
#include "core/throughput.h"
#include "fewshot/maml.h"

using namespace safecross;

int main() {
  bench::quiet_logs();
  bench::print_header("Sec. V-D: throughput comparison in blind-zone scenes");

  // Train the framework: daytime basic + FSL weather models.
  core::SafeCrossConfig cfg;
  cfg.basic_train.epochs = 8;
  cfg.fsl_train.epochs = 8;
  core::SafeCross sc(cfg);

  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 81);
  sc.train_basic(bench::ptrs(day.segments));
  const auto snow = bench::build(dataset::Weather::Snow,
                                 bench::default_segments(dataset::Weather::Snow), 82);
  sc.adapt_weather(dataset::Weather::Snow, bench::ptrs(snow.segments));
  const auto rain = bench::build(dataset::Weather::Rain, 34, 83);
  sc.adapt_weather(dataset::Weather::Rain, bench::ptrs(rain.segments));

  // Fresh-seed pools to harvest blind-area test segments from (the
  // paper's "10 hours video data in the daytime, rain, and snow" —
  // weighted 6:1:3 like the footage).
  std::vector<dataset::VideoSegment> pool;
  const std::pair<dataset::Weather, std::size_t> mix[] = {
      {dataset::Weather::Daytime, bench::scaled(330)},
      {dataset::Weather::Rain, bench::scaled(55)},
      {dataset::Weather::Snow, bench::scaled(165)},
  };
  for (const auto& [w, count] : mix) {
    auto ds = bench::build(w, count, 281 + static_cast<int>(w));
    for (auto& s : ds.segments) pool.push_back(std::move(s));
  }
  auto pool_ptrs = bench::ptrs(pool);
  const auto blind = core::select_blind_test_set(pool_ptrs, /*class0=*/32, /*class1=*/31);

  const core::ThroughputReport r = core::throughput_experiment(sc, blind);

  // Per-weather breakdown of the verdicts.
  for (const auto w :
       {dataset::Weather::Daytime, dataset::Weather::Rain, dataset::Weather::Snow}) {
    std::size_t n = 0, ok = 0;
    for (const auto* seg : blind) {
      if (seg->weather != w) continue;
      ++n;
      sc.on_scene_change(seg->weather);
      if (sc.classify(seg->frames).predicted_class == seg->binary_label()) ++ok;
    }
    if (n > 0) {
      std::printf("  [%s] %zu blind segments, accuracy %.3f\n", vision::weather_name(w), n,
                  static_cast<double>(ok) / n);
    }
  }

  std::printf("  blind-zone test segments: %zu (paper: 63)\n", r.blind_segments);
  std::printf("    class 0 (car hidden, must wait): %zu (paper: 32)\n", r.class0);
  std::printf("    class 1 (zone empty, may turn):  %zu (paper: 31)\n", r.class1);
  std::printf("  classification accuracy: %.4f (paper: 1.0000)\n", r.accuracy());
  std::printf("  judged safe to turn now: %zu\n", r.judged_safe);
  std::printf("  missed threats (judged safe, car hidden): %zu (safety criterion: 0)\n",
              r.missed_threats);
  std::printf("  left-turn throughput gain: +%.0f%% (paper: +50%% — 32/63)\n",
              100.0 * r.throughput_gain());
  std::printf("\n  shape check: roughly half of blind-zone scenes are actually safe; SafeCross\n"
              "  releases them without waiting, while keeping missed threats at/near zero.\n");
  return 0;
}
