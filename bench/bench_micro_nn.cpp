// Microbenchmarks (google-benchmark) of the nn substrate: the layer
// costs behind the training benches, and whole-model inference latency
// (what the MS module's "steady inference" cost abstracts).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "models/c3d.h"
#include "models/slowfast.h"
#include "models/tsn.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"

namespace {

using namespace safecross;
using nn::Tensor;

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

void BM_Conv2DForward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  const Tensor x = random_tensor({4, 8, 24, 36}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2DForward)->Unit(benchmark::kMillisecond);

void BM_Conv2DBackward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  const Tensor x = random_tensor({4, 8, 24, 36}, 2);
  const Tensor y = conv.forward(x, true);
  const Tensor g = random_tensor(y.shape(), 3);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv2DBackward)->Unit(benchmark::kMillisecond);

void BM_Conv3DForward(benchmark::State& state) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({4, 2, 32, 12, 18}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv3DForward)->Unit(benchmark::kMillisecond);

void BM_Conv3DBackward(benchmark::State& state) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({4, 2, 32, 12, 18}, 5);
  const Tensor y = conv.forward(x, true);
  const Tensor g = random_tensor(y.shape(), 6);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv3DBackward)->Unit(benchmark::kMillisecond);

// Whole-model single-clip inference (the paper's real-time requirement:
// one decision per incoming 32-frame window).
template <typename Model, typename Config>
void model_inference(benchmark::State& state, Config cfg) {
  Model model(cfg);
  const Tensor clip = random_tensor({1, 1, 32, 24, 36}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(clip, false));
  }
}

void BM_SlowFastInference(benchmark::State& state) {
  model_inference<models::SlowFast>(state, models::SlowFastConfig{});
}
BENCHMARK(BM_SlowFastInference)->Unit(benchmark::kMillisecond);

void BM_C3DInference(benchmark::State& state) {
  model_inference<models::C3D>(state, models::C3DConfig{});
}
BENCHMARK(BM_C3DInference)->Unit(benchmark::kMillisecond);

void BM_TSNInference(benchmark::State& state) {
  model_inference<models::TSN>(state, models::TSNConfig{});
}
BENCHMARK(BM_TSNInference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
