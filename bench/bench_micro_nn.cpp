// Microbenchmarks (google-benchmark) of the nn substrate: the layer
// costs behind the training benches, and whole-model inference latency
// (what the MS module's "steady inference" cost abstracts).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "models/c3d.h"
#include "models/slowfast.h"
#include "models/tsn.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/gemm.h"

namespace {

using namespace safecross;
using nn::Tensor;

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1, 1));
  return t;
}

// --- Backend head-to-head on SlowCross's deployment geometry: one
// 32-frame clip of 56x56 occupancy grids (the SafeCross VC input). The
// CI smoke step runs these so a kernel regression fails loudly.

void BM_Conv2DForwardSlowFastShape(benchmark::State& state, nn::ConvBackend backend) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.backend = backend;
  nn::Conv2D conv(cfg);
  const Tensor x = random_tensor({4, 8, 56, 56}, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
void BM_Conv2DForwardGemm(benchmark::State& state) {
  BM_Conv2DForwardSlowFastShape(state, nn::ConvBackend::kIm2col);
}
BENCHMARK(BM_Conv2DForwardGemm)->Unit(benchmark::kMillisecond);
void BM_Conv2DForwardDirect(benchmark::State& state) {
  BM_Conv2DForwardSlowFastShape(state, nn::ConvBackend::kDirect);
}
BENCHMARK(BM_Conv2DForwardDirect)->Unit(benchmark::kMillisecond);

void BM_Conv3DForwardSlowFastShape(benchmark::State& state, nn::ConvBackend backend) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  cfg.backend = backend;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({1, 4, 32, 56, 56}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
void BM_Conv3DForwardGemm(benchmark::State& state) {
  BM_Conv3DForwardSlowFastShape(state, nn::ConvBackend::kIm2col);
}
BENCHMARK(BM_Conv3DForwardGemm)->Unit(benchmark::kMillisecond);
void BM_Conv3DForwardDirect(benchmark::State& state) {
  BM_Conv3DForwardSlowFastShape(state, nn::ConvBackend::kDirect);
}
BENCHMARK(BM_Conv3DForwardDirect)->Unit(benchmark::kMillisecond);

void BM_Conv3DBackwardSlowFastShape(benchmark::State& state, nn::ConvBackend backend) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  cfg.backend = backend;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({1, 4, 32, 56, 56}, 13);
  const Tensor y = conv.forward(x, true);
  const Tensor g = random_tensor(y.shape(), 14);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
void BM_Conv3DBackwardGemm(benchmark::State& state) {
  BM_Conv3DBackwardSlowFastShape(state, nn::ConvBackend::kIm2col);
}
BENCHMARK(BM_Conv3DBackwardGemm)->Unit(benchmark::kMillisecond);
void BM_Conv3DBackwardDirect(benchmark::State& state) {
  BM_Conv3DBackwardSlowFastShape(state, nn::ConvBackend::kDirect);
}
BENCHMARK(BM_Conv3DBackwardDirect)->Unit(benchmark::kMillisecond);

// The raw GEMM core at the three shapes the conv backward emits (NN
// forward, NT weight-grad, TN data-grad), sized like conv3d above.
void BM_SGemm(benchmark::State& state, nn::Trans ta, nn::Trans tb, int m, int n, int k) {
  const Tensor a = random_tensor({ta == nn::Trans::kNo ? m : k, ta == nn::Trans::kNo ? k : m}, 15);
  const Tensor b = random_tensor({tb == nn::Trans::kNo ? k : n, tb == nn::Trans::kNo ? n : k}, 16);
  Tensor c({m, n});
  for (auto _ : state) {
    nn::sgemm(ta, tb, m, n, k, 1.0f, a.data(), a.dim(1), b.data(), b.dim(1), 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
}
void BM_SGemmNN(benchmark::State& state) {
  BM_SGemm(state, nn::Trans::kNo, nn::Trans::kNo, 8, 32 * 56 * 56, 108);
}
BENCHMARK(BM_SGemmNN)->Unit(benchmark::kMillisecond);
void BM_SGemmNT(benchmark::State& state) {
  BM_SGemm(state, nn::Trans::kNo, nn::Trans::kTrans, 8, 108, 32 * 56 * 56);
}
BENCHMARK(BM_SGemmNT)->Unit(benchmark::kMillisecond);
void BM_SGemmTN(benchmark::State& state) {
  BM_SGemm(state, nn::Trans::kTrans, nn::Trans::kNo, 108, 32 * 56 * 56, 8);
}
BENCHMARK(BM_SGemmTN)->Unit(benchmark::kMillisecond);

// Square compute-bound GEMM, per kernel: the cleanest view of the packed
// microkernel's advantage over the scalar tile loops (and of what fp16
// packing costs/saves). 512^3 = 268 MFLOP.
void BM_SGemmSquare(benchmark::State& state, nn::GemmKernel kernel) {
  const int n = 512;
  const Tensor a = random_tensor({n, n}, 17);
  const Tensor b = random_tensor({n, n}, 18);
  Tensor c({n, n});
  for (auto _ : state) {
    nn::sgemm(nn::Trans::kNo, nn::Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
              c.data(), n, kernel);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] =
      benchmark::Counter(2.0 * n * n * n * state.iterations() * 1e-9, benchmark::Counter::kIsRate);
}
void BM_SGemmSquareMicro(benchmark::State& state) {
  BM_SGemmSquare(state, nn::GemmKernel::kMicro);
}
BENCHMARK(BM_SGemmSquareMicro)->Unit(benchmark::kMillisecond);
void BM_SGemmSquareScalar(benchmark::State& state) {
  BM_SGemmSquare(state, nn::GemmKernel::kScalar);
}
BENCHMARK(BM_SGemmSquareScalar)->Unit(benchmark::kMillisecond);
void BM_SGemmSquareFp16(benchmark::State& state) {
  BM_SGemmSquare(state, nn::GemmKernel::kFp16);
}
BENCHMARK(BM_SGemmSquareFp16)->Unit(benchmark::kMillisecond);

void BM_Conv2DForward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  const Tensor x = random_tensor({4, 8, 24, 36}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2DForward)->Unit(benchmark::kMillisecond);

void BM_Conv2DBackward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  const Tensor x = random_tensor({4, 8, 24, 36}, 2);
  const Tensor y = conv.forward(x, true);
  const Tensor g = random_tensor(y.shape(), 3);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv2DBackward)->Unit(benchmark::kMillisecond);

void BM_Conv3DForward(benchmark::State& state) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({4, 2, 32, 12, 18}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv3DForward)->Unit(benchmark::kMillisecond);

void BM_Conv3DBackward(benchmark::State& state) {
  nn::Conv3DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  nn::Conv3D conv(cfg);
  const Tensor x = random_tensor({4, 2, 32, 12, 18}, 5);
  const Tensor y = conv.forward(x, true);
  const Tensor g = random_tensor(y.shape(), 6);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv3DBackward)->Unit(benchmark::kMillisecond);

// Whole-model single-clip inference (the paper's real-time requirement:
// one decision per incoming 32-frame window).
template <typename Model, typename Config>
void model_inference(benchmark::State& state, Config cfg) {
  Model model(cfg);
  const Tensor clip = random_tensor({1, 1, 32, 24, 36}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(clip, false));
  }
}

void BM_SlowFastInference(benchmark::State& state) {
  model_inference<models::SlowFast>(state, models::SlowFastConfig{});
}
BENCHMARK(BM_SlowFastInference)->Unit(benchmark::kMillisecond);

void BM_C3DInference(benchmark::State& state) {
  model_inference<models::C3D>(state, models::C3DConfig{});
}
BENCHMARK(BM_C3DInference)->Unit(benchmark::kMillisecond);

void BM_TSNInference(benchmark::State& state) {
  model_inference<models::TSN>(state, models::TSNConfig{});
}
BENCHMARK(BM_TSNInference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
