// Pipeline robustness sweep — the staged monitor vs the synchronous one
// under injected *compute* faults (stage crashes, decide overload), the
// sibling of bench_robustness_faults' *data* faults.
//
// Arms:
//   * sync      — the single-threaded monitor (reference scorecard);
//   * pipelined — capture/collect/decide stage threads under supervision,
//     swept over collect-stage crash rates × decide-stage overload. Low
//     crash rates are absorbed by restart-with-backoff; high rates
//     exhaust the retry budget, latch FailSafe, and the degraded fallback
//     keeps conservative warnings flowing. Overload exercises the
//     bounded-queue load shedding instead of unbounded queueing.
// Reports availability, missed/false rates, shed/restart counts and
// decision latency percentiles; writes the sweep as JSON
// (default BENCH_pipeline.json).
//
// Usage: bench_pipeline_robustness [--frames N] [--json PATH]

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monitor.h"

using namespace safecross;
using namespace safecross::core;

namespace {

struct RunResult {
  std::string mode;
  double crash_prob = 0.0;
  double overload_ms = 0.0;
  std::size_t frames = 0;
  std::size_t decisions = 0;
  std::size_t opportunities = 0;
  std::size_t model_decisions = 0;
  std::size_t fail_safe = 0;
  std::size_t missed_threats = 0;
  std::size_t false_warnings = 0;
  std::size_t frames_shed = 0;
  std::size_t decisions_shed = 0;
  std::size_t stage_crashes = 0;
  std::size_t restarts = 0;
  std::size_t gave_up = 0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  int uncaught_exceptions = 0;

  double availability() const {
    return opportunities == 0 ? 1.0
                              : static_cast<double>(decisions) / static_cast<double>(opportunities);
  }
  double missed_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(missed_threats) / static_cast<double>(decisions);
  }
  double false_warning_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(false_warnings) / static_cast<double>(decisions);
  }
};

RunResult run_arm(SafeCross& sc, bool pipelined, double crash_prob, double overload_ms,
                  int frames, std::uint64_t sim_seed) {
  RunResult r;
  r.mode = pipelined ? "pipelined" : "sync";
  r.crash_prob = crash_prob;
  r.overload_ms = overload_ms;
  r.frames = static_cast<std::size_t>(frames);
  try {
    sim::TrafficSimulator sim(sim::weather_params(dataset::Weather::Daytime), sim_seed);
    const sim::CameraModel cam(sim.intersection().geometry());
    MonitorConfig cfg;
    cfg.pipelined = pipelined;
    // A budget that rides out rare crashes but is exhaustible by a
    // sustained crash rate — both halves of the supervision story.
    cfg.pipeline.backoff.initial_ms = 0.5;
    cfg.pipeline.backoff.max_ms = 5.0;
    cfg.pipeline.backoff.max_restarts = 20;
    cfg.pipeline.faults[static_cast<int>(runtime::StageId::Collect)].crash_prob = crash_prob;
    cfg.pipeline.faults[static_cast<int>(runtime::StageId::Decide)].delay_ms = overload_ms;
    RealtimeMonitor monitor(sc, sim, cam, cfg, /*seed=*/sim_seed + 1);
    monitor.run(static_cast<std::size_t>(frames));
    r.decisions = monitor.decisions();
    r.opportunities = monitor.decision_opportunities();
    r.model_decisions = monitor.model_decisions();
    r.fail_safe = monitor.fail_safe_decisions();
    r.missed_threats = monitor.missed_threats();
    r.false_warnings = monitor.false_warnings();
    r.frames_shed = monitor.frames_shed();
    r.decisions_shed = monitor.decisions_shed();
    r.stage_crashes = monitor.stage_crashes_injected();
    r.restarts = monitor.stage_restarts();
    r.gave_up = monitor.stages_gave_up();
    r.latency_p50 = monitor.decision_latency_p50();
    r.latency_p99 = monitor.decision_latency_p99();
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s, crash %.3f, overload %.0f): %s\n", r.mode.c_str(),
                crash_prob, overload_ms, e.what());
  }
  return r;
}

void print_result(const RunResult& r) {
  std::printf("  %-9s %6.3f %6.0f %8zu %7.3f %8.4f %8.4f %6zu %6zu %5zu %4zu %7.2f %7.2f %4d\n",
              r.mode.c_str(), r.crash_prob, r.overload_ms, r.decisions, r.availability(),
              r.missed_rate(), r.false_warning_rate(), r.frames_shed, r.decisions_shed, r.restarts,
              r.gave_up, r.latency_p50, r.latency_p99, r.uncaught_exceptions);
}

void json_result(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"mode\": \"%s\", \"crash_prob\": %.4f, \"overload_ms\": %.1f, "
               "\"frames\": %zu, \"decisions\": %zu, \"opportunities\": %zu, "
               "\"model_decisions\": %zu, \"fail_safe_decisions\": %zu, "
               "\"missed_threats\": %zu, \"false_warnings\": %zu, "
               "\"availability\": %.6f, \"missed_threat_rate\": %.6f, "
               "\"false_warning_rate\": %.6f, \"frames_shed\": %zu, \"decisions_shed\": %zu, "
               "\"stage_crashes\": %zu, \"stage_restarts\": %zu, \"stages_gave_up\": %zu, "
               "\"latency_p50_ms\": %.4f, \"latency_p99_ms\": %.4f, "
               "\"uncaught_exceptions\": %d}%s\n",
               r.mode.c_str(), r.crash_prob, r.overload_ms, r.frames, r.decisions, r.opportunities,
               r.model_decisions, r.fail_safe, r.missed_threats, r.false_warnings,
               r.availability(), r.missed_rate(), r.false_warning_rate(), r.frames_shed,
               r.decisions_shed, r.stage_crashes, r.restarts, r.gave_up, r.latency_p50,
               r.latency_p99, r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  int frames = 30 * 180;  // three simulated minutes per arm
  std::string json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Pipeline robustness: training the daytime model");
  dataset::BuildRequest req;
  req.target_segments = bench::scaled(60);
  req.max_sim_hours = 4.0;
  req.seed = 2022;
  const auto day = dataset::build_dataset(req);
  SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  cfg.basic_train.epochs = 3;
  SafeCross sc(cfg);
  sc.train_basic(bench::ptrs(day.segments));
  std::printf("  trained on %zu daytime segments, %d frames per monitor arm\n",
              day.segments.size(), frames);

  bench::print_header("Stage-crash x overload sweep: sync reference vs supervised pipeline");
  std::printf("  %-9s %6s %6s %8s %7s %8s %8s %6s %6s %5s %4s %7s %7s %4s\n", "mode", "crash",
              "ovl", "decis", "avail", "missed", "false-w", "fshed", "dshed", "rst", "gvup", "p50",
              "p99", "exc");
  std::vector<RunResult> results;
  const std::uint64_t sim_seed = 4242;

  // Reference arm: the synchronous monitor on the same stream.
  results.push_back(run_arm(sc, /*pipelined=*/false, 0.0, 0.0, frames, sim_seed));
  print_result(results.back());

  const double crash_rates[] = {0.0, 0.002, 0.01};
  const double overloads[] = {0.0, 10.0};
  for (const double crash : crash_rates) {
    for (const double overload : overloads) {
      results.push_back(run_arm(sc, /*pipelined=*/true, crash, overload, frames, sim_seed));
      print_result(results.back());
    }
  }

  const RunResult& sync_ref = results[0];
  const RunResult& pipe_clean = results[1];  // pipelined, no faults
  int total_exceptions = 0;
  for (const auto& r : results) total_exceptions += r.uncaught_exceptions;
  const bool clean_match = pipe_clean.decisions == sync_ref.decisions &&
                           pipe_clean.missed_threats == sync_ref.missed_threats &&
                           pipe_clean.false_warnings == sync_ref.false_warnings;
  std::printf("\n  verdict: %d uncaught exceptions across all arms; fault-free pipelined\n"
              "  scorecard %s the sync reference (decisions/missed/false).\n",
              total_exceptions, clean_match ? "matches" : "DIVERGES FROM");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline_robustness\",\n  \"frames_per_run\": %d,\n", frames);
  std::fprintf(f, "  \"clean_pipelined_matches_sync\": %s,\n", clean_match ? "true" : "false");
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n  \"runs\": [\n", total_exceptions);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_result(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return (total_exceptions == 0 && clean_match) ? 0 : 1;
}
