// Table V — the few-shot-learning ablation.
//
// Four arms: {snow, rain} x {with FSL (transfer from the daytime basic
// model), without FSL (trained from scratch on the small pool)}.
// Expected shape: FSL wins both, with the margin largest on rain (34
// segments — too few to train from scratch; the paper's scratch rain
// model collapses to 0.5455 Top-1, near chance).

#include "bench_common.h"

#include "fewshot/maml.h"
#include "models/slowfast.h"

using namespace safecross;

namespace {

struct Arm {
  std::string name;
  double top1, mean_class, paper_top1, paper_mean;
};

}  // namespace

int main() {
  bench::quiet_logs();
  bench::print_header("Table V: accuracy of few-shot learning");

  // Daytime basic model (pretraining source).
  const auto day = bench::build(dataset::Weather::Daytime,
                                bench::default_segments(dataset::Weather::Daytime), 61);
  models::SlowFast basic{models::SlowFastConfig{}};
  fewshot::TrainConfig basic_cfg;
  basic_cfg.epochs = 8;
  basic_cfg.seed = 71;
  fewshot::train_classifier(basic, bench::ptrs(day.segments), basic_cfg);

  std::vector<Arm> arms;
  const struct {
    dataset::Weather weather;
    std::size_t pool;
    double paper_fsl_top1, paper_fsl_mean, paper_scratch_top1, paper_scratch_mean;
  } specs[] = {
      {dataset::Weather::Snow, bench::default_segments(dataset::Weather::Snow), 0.9416, 0.9510,
       0.8889, 0.8648},
      {dataset::Weather::Rain, 34, 0.8518, 0.8636, 0.5455, 0.5833},
  };

  for (const auto& spec : specs) {
    const auto pool = bench::build(spec.weather, spec.pool, 62 + static_cast<int>(spec.weather));
    const auto holdout = bench::build(spec.weather, 80, 162 + static_cast<int>(spec.weather));
    const auto train = bench::ptrs(pool.segments);
    const auto test = bench::ptrs(holdout.segments);
    const std::string wname = vision::weather_name(spec.weather);

    // With FSL: fine-tune from the daytime weights.
    fewshot::TrainConfig fsl_cfg;
    fsl_cfg.epochs = 8;
    fsl_cfg.lr = 0.008f;
    fsl_cfg.seed = 72;
    auto adapted = fewshot::fewshot_transfer(basic, train, fsl_cfg);
    const auto fsl_eval = fewshot::evaluate(*adapted, test);
    arms.push_back({wname + " with few shot learning", fsl_eval.top1(), fsl_eval.mean_class(),
                    spec.paper_fsl_top1, spec.paper_fsl_mean});

    // Without FSL: same schedule, random init.
    models::SlowFast scratch{models::SlowFastConfig{}};
    fewshot::TrainConfig scratch_cfg;
    scratch_cfg.epochs = 8;
    scratch_cfg.seed = 73;
    fewshot::train_classifier(scratch, train, scratch_cfg);
    const auto scratch_eval = fewshot::evaluate(scratch, test);
    arms.push_back({wname + " without few shot learning", scratch_eval.top1(),
                    scratch_eval.mean_class(), spec.paper_scratch_top1, spec.paper_scratch_mean});
  }

  std::printf("  %-34s %9s %9s %11s %11s\n", "experiment", "Top1", "paper", "MeanCls", "paper");
  for (const auto& a : arms) {
    std::printf("  %-34s %9.4f %9.4f %11.4f %11.4f\n", a.name.c_str(), a.top1, a.paper_top1,
                a.mean_class, a.paper_mean);
  }
  std::printf("\n  shape check: FSL > scratch for both weathers; the rain-from-scratch arm\n"
              "  should sit near chance (34 training segments).\n");
  return 0;
}
