// Switch-storm serving bench — tail latency of zero-downtime weather
// switching vs the stop-and-start ablation (DESIGN.md §14).
//
// Six cameras over three weathers run the same storm (staggered weather
// flips every 150 frames, delay 0 so every verdict stays model-gated)
// three ways:
//   * oracle     — StreamServer::run_sequential(): the switch-free
//     Legacy reference. Not a deployment mode; it defines the correct
//     verdicts, lineage (model_weather, epoch) included.
//   * stopstart  — batched run() under SwitchMode::StopAndStart: a
//     single-resident cache, so every flip stalls the deciding thread
//     for a real sequential weight load (transfer then compute, no
//     overlap) and every window queued behind it eats the stall.
//   * pipelined  — batched run() under SwitchMode::Pipelined: dual
//     residency, the old model keeps serving while the incoming weights
//     stream layer-group by layer-group through the switching executor
//     on a loader thread.
// Both batched arms must match the oracle bit-for-bit — any divergence
// is a hard failure (nonzero exit), because verdict parity is what makes
// the latency numbers comparable at all.
//
// Headline metric: p99 of capture→verdict latency per arm (median over
// reps). The CI gate (compare_benches.py) requires pipelined p99
// strictly below stop-and-start.
//
// Usage: bench_switch_storm [--frames N] [--reps R] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serving/stream_server.h"

using namespace safecross;
using namespace safecross::serving;

namespace {

constexpr dataset::Weather kStormWeathers[] = {
    dataset::Weather::Daytime, dataset::Weather::Rain, dataset::Weather::Snow};
constexpr std::size_t kStreams = 6;

core::SafeCrossConfig tiny_config() {
  core::SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

/// The storm: per-stream staggered flips every 150 frames cycling the
/// three weathers, always to a different weather, always delay 0.
StreamServerConfig storm_config(std::size_t frames) {
  StreamServerConfig cfg;
  cfg.frames = frames;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;  // parity runs must lose nothing
  cfg.queue_capacity = 8;
  // Loads sized so a stop-and-start stall is unmistakably a stall:
  // ~85 ms of throttled transfer plus ~75 ms of compute per load, big
  // enough to dominate the queueing tail the episode bursts already put
  // on the single deciding thread. Near-balanced transfer/compute is the
  // pipelined executor's best case — wall approaches
  // max(transfer, compute) + fill instead of the sum.
  cfg.model_cache.capacity_models = 2;  // forced to 1 under StopAndStart
  cfg.model_cache.bytes_scale = 1.0 / 8.0;
  cfg.model_cache.executor.bandwidth_gbps = 0.2;
  cfg.model_cache.executor.compute_scale = 0.05;
  for (std::size_t i = 0; i < kStreams; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = kStormWeathers[i % 3];
    s.sim_seed = 9000 + 10 * i;
    s.collector_seed = 9001 + 10 * i;
    dataset::Weather current = s.weather;
    for (std::size_t k = 0; 200 + 25 * i + 150 * k < frames; ++k) {
      dataset::Weather next = kStormWeathers[(static_cast<std::size_t>(current) + 1 + k % 2) % 3];
      if (next == current) next = kStormWeathers[(static_cast<std::size_t>(next) + 1) % 3];
      s.model_schedule.push_back({200 + 25 * i + 150 * k, next, 0.0});
      current = next;
    }
    cfg.streams.push_back(std::move(s));
  }
  return cfg;
}

struct RunResult {
  std::string mode;
  std::size_t decisions = 0;
  std::size_t switches_committed = 0;
  std::size_t cache_loads = 0;
  std::size_t shed = 0;
  double p99_ms = 0.0;   // median over reps
  double wall_ms = 0.0;  // median over reps
  int uncaught_exceptions = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// One arm, `reps` fresh servers; keeps the final rep's server for the
/// parity audit (determinism makes every rep's verdicts identical).
RunResult measure(core::SafeCross& sc, const StreamServerConfig& cfg, const std::string& mode,
                  SwitchMode sw, std::size_t reps, std::unique_ptr<StreamServer>& keep) {
  RunResult r;
  r.mode = mode;
  StreamServerConfig arm = cfg;
  arm.switch_mode = sw;
  std::vector<double> walls, p99s;
  try {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      keep = std::make_unique<StreamServer>(sc, arm);
      const auto t0 = std::chrono::steady_clock::now();
      if (mode == "oracle") {
        keep->run_sequential();
      } else {
        keep->run();
      }
      const auto t1 = std::chrono::steady_clock::now();
      walls.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      p99s.push_back(percentile(keep->latency_log(), 0.99));
    }
    r.wall_ms = median(walls);
    r.p99_ms = median(p99s);
    r.decisions = keep->total_decisions();
    r.switches_committed = keep->switches_committed();
    r.shed = keep->windows_shed_total();
    if (keep->model_cache() != nullptr) r.cache_loads = keep->model_cache()->stats().loads;
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s): %s\n", mode.c_str(), e.what());
  }
  return r;
}

/// Bitwise parity of every stream against the oracle, lineage included.
bool matches_oracle(const StreamServer& got, const StreamServer& oracle) {
  if (got.stream_count() != oracle.stream_count()) return false;
  for (std::size_t i = 0; i < got.stream_count(); ++i) {
    const auto& gt = got.stream(i).trace();
    const auto& wt = oracle.stream(i).trace();
    if (gt.size() != wt.size()) return false;
    for (std::size_t s = 0; s < gt.size(); ++s) {
      if (gt[s].frame != wt[s].frame || gt[s].predicted_class != wt[s].predicted_class ||
          gt[s].prob_danger != wt[s].prob_danger || gt[s].warn != wt[s].warn ||
          gt[s].source != wt[s].source || gt[s].model_weather != wt[s].model_weather ||
          gt[s].epoch != wt[s].epoch) {
        return false;
      }
    }
  }
  return true;
}

void print_result(const RunResult& r) {
  std::printf("  %-10s %7zu %6zu %6zu %5zu %9.2f %9.1f %4d\n", r.mode.c_str(), r.decisions,
              r.switches_committed, r.cache_loads, r.shed, r.p99_ms, r.wall_ms,
              r.uncaught_exceptions);
}

void json_result(std::FILE* f, const RunResult& r, bool last) {
  std::fprintf(f,
               "    {\"mode\": \"%s\", \"decisions\": %zu, \"switches_committed\": %zu, "
               "\"cache_loads\": %zu, \"windows_shed\": %zu, \"p99_ms\": %.3f, "
               "\"wall_ms\": %.2f, \"uncaught_exceptions\": %d}%s\n",
               r.mode.c_str(), r.decisions, r.switches_committed, r.cache_loads, r.shed,
               r.p99_ms, r.wall_ms, r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 3600;  // two simulated minutes per stream
  std::size_t reps = 3;       // median-of-N p99 per arm
  std::string json_path = "BENCH_switch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--reps R] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Switch storm: pipelined serving-path switching vs stop-and-start");
  // Untrained but deterministically initialised per-weather models: the
  // bench measures switch-stall tail latency and parity, not accuracy.
  auto sc = std::make_unique<core::SafeCross>(tiny_config());
  for (dataset::Weather w : kStormWeathers) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }
  const StreamServerConfig cfg = storm_config(frames);
  std::size_t flips = 0;
  for (const StreamConfig& s : cfg.streams) flips += s.model_schedule.size();
  std::printf("  %zu streams x %zu frames, %zu scheduled flips, median of %zu reps\n",
              kStreams, frames, flips, reps);
  std::printf("  %-10s %7s %6s %6s %5s %9s %9s %4s\n", "mode", "decis", "swch", "loads",
              "shed", "p99-ms", "wall-ms", "exc");

  std::unique_ptr<StreamServer> oracle, stop, pipe;
  std::vector<RunResult> results;
  results.push_back(measure(*sc, cfg, "oracle", SwitchMode::Legacy, reps, oracle));
  print_result(results.back());
  results.push_back(measure(*sc, cfg, "stopstart", SwitchMode::StopAndStart, reps, stop));
  print_result(results.back());
  const RunResult stop_r = results.back();
  results.push_back(measure(*sc, cfg, "pipelined", SwitchMode::Pipelined, reps, pipe));
  print_result(results.back());
  const RunResult pipe_r = results.back();

  bool parity_ok = oracle != nullptr && stop != nullptr && pipe != nullptr;
  if (parity_ok) {
    for (const auto* arm : {&stop, &pipe}) {
      if (!matches_oracle(**arm, *oracle)) {
        parity_ok = false;
        std::printf("  !! PARITY FAILURE (%s): verdicts diverge from the switch-free\n"
                    "     oracle — the latency numbers are meaningless.\n",
                    arm == &stop ? "stopstart" : "pipelined");
      }
    }
  }
  int total_exceptions = 0;
  for (const auto& r : results) total_exceptions += r.uncaught_exceptions;

  const double ratio =
      stop_r.p99_ms > 0.0 && pipe_r.p99_ms > 0.0 ? pipe_r.p99_ms / stop_r.p99_ms : -1.0;
  std::printf("\n  verdict: parity %s; p99 %.2f ms pipelined vs %.2f ms stop-and-start "
              "(%.2fx)\n",
              parity_ok ? "holds bit-for-bit" : "FAILED", pipe_r.p99_ms, stop_r.p99_ms, ratio);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"switch_storm\",\n  \"frames_per_stream\": %zu,\n"
               "  \"reps\": %zu,\n  \"streams\": %zu,\n  \"scheduled_flips\": %zu,\n",
               frames, reps, kStreams, flips);
  std::fprintf(f, "  \"parity_ok\": %s,\n", parity_ok ? "true" : "false");
  std::fprintf(f, "  \"p99_ms_stop_and_start\": %.3f,\n", stop_r.p99_ms);
  std::fprintf(f, "  \"p99_ms_pipelined\": %.3f,\n", pipe_r.p99_ms);
  std::fprintf(f, "  \"p99_ratio_pipelined_vs_stop_and_start\": %.4f,\n", ratio);
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n  \"runs\": [\n", total_exceptions);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_result(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return (parity_ok && total_exceptions == 0) ? 0 : 1;
}
