// Durability overhead vs recovery time — the sweep behind the snapshot
// cadence and fsync policy defaults.
//
// One fixed two-stream workload is run three ways per configuration
// point (snapshot interval x journal fsync policy):
//   * baseline  — no durability: the decisions/sec ceiling.
//   * durable   — journal + snapshots on, uninterrupted: the steady-state
//     overhead an operator pays for crash consistency.
//   * recovery  — the same durable run killed half-way through its
//     journal appends (CrashInjector, torn tail included), then a fresh
//     server recover()s the damaged directory and finishes the run. The
//     recover() call and the resumed run are timed separately: the first
//     is the disk-side cost (snapshot load + journal replay), the second
//     is the deterministic re-derivation of whatever the snapshot
//     cadence let slip past the last checkpoint.
// Every recovered run's decision trace must be bit-identical to the
// baseline — any divergence is a hard failure (nonzero exit), because a
// recovery that changes verdicts has no business being fast.
//
// Reports per-point wall times, overhead %, journal bytes and snapshot
// generations; writes the sweep as JSON (default BENCH_recovery.json).
//
// Usage: bench_recovery [--frames N] [--reps R] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/slowfast.h"
#include "runtime/crash_point.h"
#include "runtime/journal.h"
#include "serving/stream_server.h"

using namespace safecross;
using namespace safecross::serving;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

core::SafeCrossConfig tiny_config() {
  core::SafeCrossConfig cfg;
  cfg.model.slow_channels = 4;
  cfg.model.fast_channels = 2;
  return cfg;
}

StreamServerConfig workload(std::size_t frames) {
  StreamServerConfig cfg;
  cfg.frames = frames;
  cfg.record_traces = true;
  cfg.shed_on_overload = false;  // durable runs must lose nothing
  for (std::size_t i = 0; i < 2; ++i) {
    StreamConfig s;
    s.name = "cam" + std::to_string(i);
    s.weather = i == 0 ? dataset::Weather::Daytime : dataset::Weather::Rain;
    s.sim_seed = 87000 + 10 * i;
    s.collector_seed = 87001 + 10 * i;
    s.fault_seed = 87002 + 10 * i;
    cfg.streams.push_back(std::move(s));
  }
  return cfg;
}

struct PointResult {
  std::size_t snapshot_every = 0;
  runtime::FsyncPolicy fsync = runtime::FsyncPolicy::None;
  std::size_t decisions = 0;
  double baseline_wall_ms = 0.0;
  double durable_wall_ms = 0.0;
  std::size_t journal_bytes = 0;
  std::size_t snapshot_generations = 0;
  double recover_ms = 0.0;      // snapshot load + journal replay
  double resume_wall_ms = 0.0;  // killed run's tail, re-derived + deduped
  std::size_t replayed_pending = 0;
  bool recovered_from_snapshot = false;
  bool parity_ok = false;
  int uncaught_exceptions = 0;

  double overhead_pct() const {
    if (baseline_wall_ms <= 0.0) return 0.0;
    return 100.0 * (durable_wall_ms - baseline_wall_ms) / baseline_wall_ms;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / "bench_recovery_scratch" / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

bool traces_agree(const StreamServer& got, const StreamServer& want) {
  if (got.stream_count() != want.stream_count()) return false;
  for (std::size_t i = 0; i < got.stream_count(); ++i) {
    const auto& gt = got.stream(i).trace();
    const auto& wt = want.stream(i).trace();
    if (gt.size() != wt.size()) return false;
    for (std::size_t s = 0; s < gt.size(); ++s) {
      if (gt[s].frame != wt[s].frame || gt[s].predicted_class != wt[s].predicted_class ||
          gt[s].prob_danger != wt[s].prob_danger || gt[s].warn != wt[s].warn ||
          gt[s].source != wt[s].source) {
        return false;
      }
    }
  }
  return true;
}

std::size_t count_snapshots(const fs::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") ++n;
  }
  return n;
}

PointResult measure_point(core::SafeCross& sc, const StreamServerConfig& base,
                          const StreamServer& baseline, double baseline_wall_ms,
                          std::size_t snapshot_every, runtime::FsyncPolicy fsync,
                          std::size_t reps) {
  PointResult r;
  r.snapshot_every = snapshot_every;
  r.fsync = fsync;
  r.decisions = baseline.total_decisions();
  r.baseline_wall_ms = baseline_wall_ms;
  std::string tag = "s";
  tag += std::to_string(snapshot_every);
  tag += '_';
  tag += runtime::fsync_policy_name(fsync);
  try {
    // Steady-state arm: uninterrupted durable runs, median wall time.
    std::vector<double> walls;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ScratchDir scratch(tag + "_steady");
      StreamServerConfig cfg = base;
      cfg.durability.dir = scratch.path;
      cfg.durability.snapshot_every_decisions = snapshot_every;
      cfg.durability.journal.fsync = fsync;
      StreamServer server(sc, cfg);
      const auto t0 = Clock::now();
      server.run_sequential();
      walls.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      if (rep + 1 == reps) {
        r.journal_bytes =
            static_cast<std::size_t>(fs::file_size(scratch.path / "journal.wal"));
        r.snapshot_generations = count_snapshots(scratch.path);
      }
    }
    r.durable_wall_ms = median(walls);

    // Recovery arm: kill half-way through the journal appends, then time
    // recover() and the resumed run on a fresh server.
    ScratchDir scratch(tag + "_recover");
    StreamServerConfig cfg = base;
    cfg.durability.dir = scratch.path;
    cfg.durability.snapshot_every_decisions = snapshot_every;
    cfg.durability.journal.fsync = fsync;
    runtime::CrashInjector injector;
    injector.arm(runtime::CrashPoint::MidJournalAppend,
                 std::max<std::size_t>(1, r.decisions / 2));
    cfg.durability.crash = &injector;
    bool killed = false;
    try {
      StreamServer victim(sc, cfg);
      victim.run_sequential();
    } catch (const runtime::CrashInjected&) {
      killed = true;
    }
    cfg.durability.crash = nullptr;
    StreamServer survivor(sc, cfg);
    const auto t0 = Clock::now();
    const RecoveryReport report = survivor.recover();
    const auto t1 = Clock::now();
    survivor.run_sequential();
    const auto t2 = Clock::now();
    r.recover_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.resume_wall_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    r.replayed_pending = static_cast<std::size_t>(report.journal_pending);
    r.recovered_from_snapshot = report.recovered_from_snapshot;
    r.parity_ok = killed && traces_agree(survivor, baseline);
  } catch (const std::exception& e) {
    ++r.uncaught_exceptions;
    std::printf("  !! uncaught exception (%s): %s\n", tag.c_str(), e.what());
  }
  return r;
}

void print_point(const PointResult& r) {
  std::printf("  %8zu %-7s %6zu %9.1f %9.1f %7.1f%% %8zu %5zu %8.2f %9.1f %5zu %6s %4d\n",
              r.snapshot_every, runtime::fsync_policy_name(r.fsync), r.decisions,
              r.baseline_wall_ms, r.durable_wall_ms, r.overhead_pct(), r.journal_bytes,
              r.snapshot_generations, r.recover_ms, r.resume_wall_ms, r.replayed_pending,
              r.parity_ok ? "ok" : "FAIL", r.uncaught_exceptions);
}

void json_point(std::FILE* f, const PointResult& r, bool last) {
  std::fprintf(f,
               "    {\"snapshot_every_decisions\": %zu, \"fsync\": \"%s\", "
               "\"decisions\": %zu, \"baseline_wall_ms\": %.2f, \"durable_wall_ms\": %.2f, "
               "\"overhead_pct\": %.2f, \"journal_bytes\": %zu, "
               "\"snapshot_generations\": %zu, \"recover_ms\": %.3f, "
               "\"resume_wall_ms\": %.2f, \"replayed_pending\": %zu, "
               "\"recovered_from_snapshot\": %s, \"parity_ok\": %s, "
               "\"uncaught_exceptions\": %d}%s\n",
               r.snapshot_every, runtime::fsync_policy_name(r.fsync), r.decisions,
               r.baseline_wall_ms, r.durable_wall_ms, r.overhead_pct(), r.journal_bytes,
               r.snapshot_generations, r.recover_ms, r.resume_wall_ms, r.replayed_pending,
               r.recovered_from_snapshot ? "true" : "false", r.parity_ok ? "true" : "false",
               r.uncaught_exceptions, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::size_t frames = 30 * 120;  // two simulated minutes per stream
  std::size_t reps = 3;           // median-of-N wall time per durable arm
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (reps == 0) reps = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--frames N] [--reps R] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Durability: steady-state overhead vs recovery time");
  // Untrained but deterministically initialised models: the bench measures
  // journaling and checkpoint costs, not verdict quality.
  auto sc = std::make_unique<core::SafeCross>(tiny_config());
  for (dataset::Weather w : {dataset::Weather::Daytime, dataset::Weather::Rain}) {
    models::SlowFastConfig mc = tiny_config().model;
    mc.init_seed = 100u + static_cast<std::uint64_t>(w);
    sc->set_model(w, std::make_unique<models::SlowFast>(mc));
  }

  const StreamServerConfig base = workload(frames);
  std::vector<double> baseline_walls;
  std::unique_ptr<StreamServer> baseline;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    baseline = std::make_unique<StreamServer>(*sc, base);
    const auto t0 = Clock::now();
    baseline->run_sequential();
    baseline_walls.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  const double baseline_wall_ms = median(baseline_walls);

  std::printf("  %zu frames per stream, 2 streams, %zu decisions, median of %zu reps\n",
              frames, baseline->total_decisions(), reps);
  std::printf("  %8s %-7s %6s %9s %9s %8s %8s %5s %8s %9s %5s %6s %4s\n", "snap", "fsync",
              "decis", "base-ms", "dur-ms", "overhd", "wal-B", "gens", "recov-ms",
              "resume-ms", "pend", "parity", "exc");

  std::vector<PointResult> results;
  bool all_parity = true;
  int total_exceptions = 0;
  for (const std::size_t every : {std::size_t{0}, std::size_t{16}, std::size_t{64}}) {
    for (const runtime::FsyncPolicy fsync :
         {runtime::FsyncPolicy::None, runtime::FsyncPolicy::EveryN,
          runtime::FsyncPolicy::Every}) {
      results.push_back(measure_point(*sc, base, *baseline, baseline_wall_ms, every, fsync,
                                      reps));
      print_point(results.back());
      all_parity = all_parity && results.back().parity_ok;
      total_exceptions += results.back().uncaught_exceptions;
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"frames_per_stream\": %zu,\n  \"reps\": %zu,\n",
               frames, reps);
  std::fprintf(f, "  \"parity_ok\": %s,\n", all_parity ? "true" : "false");
  std::fprintf(f, "  \"uncaught_exceptions_total\": %d,\n  \"points\": [\n", total_exceptions);
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_point(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());

  std::error_code ec;
  fs::remove_all(fs::current_path() / "bench_recovery_scratch", ec);
  if (!all_parity) {
    std::printf("  !! PARITY FAILURE: a killed-and-recovered run diverged from the\n"
                "     uninterrupted baseline — the timings above are meaningless.\n");
    return 1;
  }
  return total_exceptions == 0 ? 0 : 1;
}
